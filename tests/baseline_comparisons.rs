//! The baseline formats and DRX must store identical logical content, and
//! the structural cost claims of the paper must hold between them.

use drx::baselines::{Hdf5LikeFile, NetcdfLikeFile, RowMajorFile};
use drx::serial::DrxFile;
use drx::{Layout, Pfs, Region};

fn tag(idx: &[usize]) -> f64 {
    idx.iter().fold(1.0f64, |a, &i| a * 1.7 + i as f64)
}

#[test]
fn all_formats_agree_on_stored_content() {
    let n = 12usize;
    let region = Region::new(vec![0, 0], vec![n, n]).unwrap();
    let data: Vec<f64> = region.iter().map(|i| tag(&i)).collect();

    let pfs = Pfs::memory(2, 256).unwrap();
    let mut drx: DrxFile<f64> = DrxFile::create(&pfs, "d", &[3, 4], &[n, n]).unwrap();
    let mut rm: RowMajorFile<f64> = RowMajorFile::create(&pfs, "r", &[n, n]).unwrap();
    let mut h5: Hdf5LikeFile<f64> = Hdf5LikeFile::create(&pfs, "h", &[3, 4], &[n, n], 512).unwrap();
    let mut nc: NetcdfLikeFile<f64> = NetcdfLikeFile::create(&pfs, "n", &[n, n]).unwrap();

    drx.write_region(&region, Layout::C, &data).unwrap();
    rm.write_region(&region, Layout::C, &data).unwrap();
    h5.write_region(&region, Layout::C, &data).unwrap();
    nc.write_region(&region, Layout::C, &data).unwrap();

    for (lo, hi) in [(vec![0, 0], vec![n, n]), (vec![2, 3], vec![9, 11]), (vec![5, 0], vec![6, n])]
    {
        let r = Region::new(lo, hi).unwrap();
        for layout in [Layout::C, Layout::Fortran] {
            let want = drx.read_region(&r, layout).unwrap();
            assert_eq!(rm.read_region(&r, layout).unwrap(), want, "row-major {r:?}");
            assert_eq!(h5.read_region(&r, layout).unwrap(), want, "hdf5like {r:?}");
            assert_eq!(nc.read_region(&r, layout).unwrap(), want, "netcdflike {r:?}");
        }
    }
}

#[test]
fn extension_preserves_content_in_every_extendible_format() {
    let n = 8usize;
    let region = Region::new(vec![0, 0], vec![n, n]).unwrap();
    let data: Vec<f64> = region.iter().map(|i| tag(&i)).collect();
    let pfs = Pfs::memory(2, 256).unwrap();

    let mut drx: DrxFile<f64> = DrxFile::create(&pfs, "d", &[2, 2], &[n, n]).unwrap();
    let mut rm: RowMajorFile<f64> = RowMajorFile::create(&pfs, "r", &[n, n]).unwrap();
    let mut h5: Hdf5LikeFile<f64> = Hdf5LikeFile::create(&pfs, "h", &[2, 2], &[n, n], 512).unwrap();
    let mut nc: NetcdfLikeFile<f64> = NetcdfLikeFile::create(&pfs, "n", &[n, n]).unwrap();
    drx.write_region(&region, Layout::C, &data).unwrap();
    rm.write_region(&region, Layout::C, &data).unwrap();
    h5.write_region(&region, Layout::C, &data).unwrap();
    nc.write_region(&region, Layout::C, &data).unwrap();

    // Extend dimension 1 by 4 everywhere (reorganizing where necessary).
    drx.extend(1, 4).unwrap();
    rm.extend(1, 4).unwrap();
    h5.extend(1, 4).unwrap();
    nc.extend_fixed(1, 4).unwrap();

    for i in 0..n {
        for j in 0..n {
            let want = tag(&[i, j]);
            assert_eq!(drx.get(&[i, j]).unwrap(), want);
            assert_eq!(rm.get(&[i, j]).unwrap(), want);
            assert_eq!(h5.get(&[i, j]).unwrap(), want);
            assert_eq!(nc.get(&[i, j]).unwrap(), want);
        }
        for j in n..n + 4 {
            assert_eq!(drx.get(&[i, j]).unwrap(), 0.0);
            assert_eq!(rm.get(&[i, j]).unwrap(), 0.0);
            assert_eq!(h5.get(&[i, j]).unwrap(), 0.0);
            assert_eq!(nc.get(&[i, j]).unwrap(), 0.0);
        }
    }
}

#[test]
fn extension_io_cost_ordering_matches_the_paper() {
    // DRX and HDF5-like: no data movement. Row-major and netCDF-like: the
    // whole payload moves. Measured through PFS counters, not trust.
    let n = 32usize;
    let region = Region::new(vec![0, 0], vec![n, n]).unwrap();
    let data: Vec<f64> = region.iter().map(|i| tag(&i)).collect();
    let payload = (n * n * 8) as u64;

    let cost_of = |which: &str| -> u64 {
        let pfs = Pfs::memory(2, 4096).unwrap();
        match which {
            "drx" => {
                let mut f: DrxFile<f64> = DrxFile::create(&pfs, "x", &[8, 8], &[n, n]).unwrap();
                f.write_region(&region, Layout::C, &data).unwrap();
                pfs.reset_stats();
                f.extend(1, 8).unwrap();
            }
            "h5" => {
                let mut f: Hdf5LikeFile<f64> =
                    Hdf5LikeFile::create(&pfs, "x", &[8, 8], &[n, n], 512).unwrap();
                f.write_region(&region, Layout::C, &data).unwrap();
                pfs.reset_stats();
                f.extend(1, 8).unwrap();
            }
            "rm" => {
                let mut f: RowMajorFile<f64> = RowMajorFile::create(&pfs, "x", &[n, n]).unwrap();
                f.write_region(&region, Layout::C, &data).unwrap();
                pfs.reset_stats();
                f.extend(1, 8).unwrap();
            }
            "nc" => {
                let mut f: NetcdfLikeFile<f64> =
                    NetcdfLikeFile::create(&pfs, "x", &[n, n]).unwrap();
                f.write_region(&region, Layout::C, &data).unwrap();
                pfs.reset_stats();
                f.extend_fixed(1, 8).unwrap();
            }
            _ => unreachable!(),
        }
        pfs.stats().total_bytes()
    };

    let drx = cost_of("drx");
    let h5 = cost_of("h5");
    let rm = cost_of("rm");
    let nc = cost_of("nc");
    assert!(drx < payload / 4, "DRX extension I/O ({drx}) must be metadata-scale");
    assert!(h5 < 256, "HDF5-like extension rewrites only its superblock, got {h5}");
    assert!(rm >= payload, "row-major must rewrite at least the payload, got {rm}");
    assert!(nc >= payload, "netCDF-like must rewrite at least the payload, got {nc}");
}

#[test]
fn btree_overhead_exists_only_for_the_indexed_format() {
    // DRX needs no index storage at all; the HDF5-like store pays pages.
    let pfs = Pfs::memory(2, 4096).unwrap();
    let n = 16usize;
    let region = Region::new(vec![0, 0], vec![n, n]).unwrap();
    let data: Vec<f64> = region.iter().map(|i| tag(&i)).collect();
    let mut h5: Hdf5LikeFile<f64> = Hdf5LikeFile::create(&pfs, "h", &[2, 2], &[n, n], 256).unwrap();
    h5.write_region(&region, Layout::C, &data).unwrap();
    assert!(h5.index_bytes() > 0);
    h5.reset_index_stats();
    h5.get(&[15, 15]).unwrap();
    assert!(h5.index_stats().page_reads >= 1, "every access pays the index");

    // DRX metadata is a few hundred bytes regardless of chunk count.
    let mut drx: DrxFile<f64> = DrxFile::create(&pfs, "d", &[2, 2], &[n, n]).unwrap();
    drx.write_region(&region, Layout::C, &data).unwrap();
    let xmd = pfs.open("d.xmd").unwrap();
    assert!(xmd.len() < 512, "DRX metadata stays tiny, got {}", xmd.len());
    assert!(xmd.len() < h5.index_bytes());
}
