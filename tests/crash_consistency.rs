//! Crash consistency of the `.xmd` + `.xta` pair over the crash-model
//! backing: whatever instant the power fails — including mid-way through a
//! torn write — reopening from the durable image yields a *consistent*
//! array: the metadata decodes, every element inside its bounds is
//! addressable, and everything synced before the crash reads back exactly.

use drx::fault::{CrashRegistry, Event, FaultKind, Injector, Op, Script};
use drx::parallel::MpError;
use drx::serial::DrxFile;
use drx::{Backing, Pfs, PfsConfig, PfsError};
use std::sync::Arc;

const SERVERS: usize = 2;
const STRIPE: u64 = 256;

fn crash_pfs(reg: &Arc<CrashRegistry>, inj: Option<Arc<Injector>>) -> Pfs {
    Pfs::new(PfsConfig {
        n_servers: SERVERS,
        stripe_size: STRIPE,
        backing: Backing::Crash(Arc::clone(reg)),
        injector: inj,
        ..PfsConfig::default()
    })
    .expect("pfs construction")
}

fn expected(i: usize, j: usize) -> f64 {
    (i * 10 + j) as f64
}

/// Checkpoint workload: create `a`, write every element, make both files
/// durable. Returns the injector op count at the durable point.
fn checkpoint(pfs: &Pfs, inj: &Injector) -> Result<u64, MpError> {
    let mut f: DrxFile<f64> = DrxFile::create(pfs, "a", &[2, 2], &[4, 4])?;
    f.fill_with(|idx| expected(idx[0], idx[1]))?;
    f.sync_meta()?;
    f.payload_file().sync()?;
    Ok(inj.ops())
}

/// Reopen the pair from whatever survived the crash. `recover` rebuilds
/// the logical lengths from the durable server-local streams; the payload
/// is then re-sized to what the (richer) decoded metadata records.
fn reopen(reg: &Arc<CrashRegistry>) -> Result<DrxFile<f64>, MpError> {
    let pfs = crash_pfs(reg, None);
    pfs.recover("a.xmd").map_err(MpError::Pfs)?;
    pfs.recover("a.xta").map_err(MpError::Pfs)?;
    let f: DrxFile<f64> = DrxFile::open(&pfs, "a")?;
    f.payload_file().set_len(f.meta().payload_bytes()).map_err(MpError::Pfs)?;
    Ok(f)
}

fn assert_checkpoint_intact(f: &DrxFile<f64>) {
    for i in 0..4 {
        for j in 0..4 {
            assert_eq!(
                f.get(&[i, j]).expect("checkpointed element addressable"),
                expected(i, j),
                "durable data corrupted at ({i},{j})"
            );
        }
    }
}

/// The tentpole scenario: a torn write *after* the checkpoint, then power
/// loss. The reopened pair must agree — whatever bounds the durable `.xmd`
/// records, every element inside them is addressable, and the checkpoint
/// reads back exactly.
#[test]
fn torn_write_then_crash_reopens_consistent() {
    // Measure the durable point on a fault-free run (throwaway registry).
    let inert = Arc::new(Injector::inert());
    let mark = checkpoint(&crash_pfs(&CrashRegistry::new(), Some(Arc::clone(&inert))), &inert)
        .expect("fault-free checkpoint");

    // Real run: arm a torn write at the first write after the checkpoint.
    let reg = CrashRegistry::new();
    let script = Script {
        seed: 0,
        events: vec![Event {
            at_op: mark,
            domain: None,
            op: Some(Op::Write),
            kind: FaultKind::TornWrite,
        }],
    };
    let inj = Arc::new(Injector::new(script));
    let pfs = crash_pfs(&reg, Some(Arc::clone(&inj)));
    checkpoint(&pfs, &inj).expect("checkpoint is before the armed fault");
    // Post-checkpoint mutation: the extend's metadata rewrite (or the
    // payload write into the new region) is torn mid-flight.
    let post = (|| -> Result<(), MpError> {
        let mut f: DrxFile<f64> = DrxFile::open(&pfs, "a")?;
        f.extend(1, 2)?;
        f.set(&[3, 5], 99.0)?;
        f.sync_meta()?;
        f.payload_file().sync()?;
        Ok(())
    })();
    match post {
        Err(MpError::Pfs(PfsError::Torn { .. })) => {}
        other => panic!("expected the armed torn write to surface, got {other:?}"),
    }
    assert_eq!(inj.fired().len(), 1);

    reg.crash_all();

    let f = reopen(&reg).expect("reopen after torn write + crash");
    let bounds = f.bounds().to_vec();
    assert!(
        bounds == [4, 4] || bounds == [4, 6],
        "recovered bounds must be a committed state, got {bounds:?}"
    );
    assert_checkpoint_intact(&f);
    // Every element the recovered metadata claims must be addressable —
    // unwritten extended chunks read as holes (0.0), never as errors.
    for i in 0..bounds[0] {
        for j in 0..bounds[1] {
            f.get(&[i, j]).expect("element inside recovered bounds must be addressable");
        }
    }
}

/// Plain crash semantics end-to-end: synced state survives, unsynced
/// mutations vanish — never a half-applied mix *within one synced write*.
#[test]
fn unsynced_writes_lost_synced_state_survives() {
    let reg = CrashRegistry::new();
    let inert = Arc::new(Injector::inert());
    let pfs = crash_pfs(&reg, Some(Arc::clone(&inert)));
    checkpoint(&pfs, &inert).expect("checkpoint");
    let mut f: DrxFile<f64> = DrxFile::open(&pfs, "a").expect("open");
    f.set(&[0, 0], 4242.0).expect("unsynced overwrite");
    reg.crash_all();

    let f = reopen(&reg).expect("reopen");
    assert_eq!(f.bounds(), &[4, 4]);
    assert_checkpoint_intact(&f); // [0,0] is back to its checkpointed value
}

/// The extend-commit durability barrier at work: `extend` fsyncs the
/// `.xmd` *before* any payload lands in the new region, so a crash after
/// extend + payload sync leaves the extended bounds addressable — payload
/// bytes can never outlive the metadata that addresses them.
#[test]
fn extend_commit_survives_crash_with_addressable_region() {
    let reg = CrashRegistry::new();
    let inert = Arc::new(Injector::inert());
    let pfs = crash_pfs(&reg, Some(Arc::clone(&inert)));
    checkpoint(&pfs, &inert).expect("checkpoint");
    let mut f: DrxFile<f64> = DrxFile::open(&pfs, "a").expect("open");
    // extend() itself is the commit point for the metadata (it fsyncs);
    // only the payload needs an explicit sync here.
    f.extend(1, 2).expect("extend");
    f.set(&[3, 5], 99.0).expect("write into extended region");
    f.payload_file().sync().expect("payload sync");
    reg.crash_all();

    let f = reopen(&reg).expect("reopen");
    assert_eq!(f.bounds(), &[4, 6], "committed extend must survive the crash");
    assert_checkpoint_intact(&f);
    assert_eq!(f.get(&[3, 5]).expect("extended element"), 99.0);
}
