//! Concurrency tests for the drx-server array service.
//!
//! The main test drives ten concurrent clients (six in-process, four over
//! TCP) through a mixed read/write/extend workload against one array, then
//! proves the result is *linearizable* the hard way: the operations each
//! thread performed are replayed serially through a plain `DrxFile` and the
//! two files must come out byte-identical — payload and metadata.
//!
//! Replay correctness rests on two facts the workload is built around:
//!
//! * Physical chunk layout depends only on the *extension history*. Extends
//!   are serialized by the server, and each returns the resulting bounds —
//!   which grow strictly monotonically — so sorting the recorded extends by
//!   returned bound reconstructs the exact server-side commit order.
//! * Each thread writes only its own band of rows, so writes from different
//!   threads touch disjoint elements (even when bands share boundary
//!   chunks, which they do here by construction: band height 3 vs chunk
//!   height 2 forces read-modify-write on shared chunks). Any
//!   thread-order-preserving replay of the writes yields the same cells.
//!
//! A second test pins down the I/O coalescing claim: concurrent
//! multi-chunk reads through the server must cost fewer PFS requests than
//! the same access pattern issued naively chunk-by-chunk.

use drx::serial::DrxFile;
use drx::server::{serve, Client, Server, ServerConfig, TcpClient};
use drx::{Layout, Pfs, Region};
use std::sync::{Arc, Mutex};
use std::thread;

const THREADS: usize = 10;
const BAND: usize = 3; // rows per thread; deliberately not the chunk height
const ROWS: usize = THREADS * BAND;
const COLS: usize = 8;
const CHUNK: [usize; 2] = [2, 4];
const VERSIONS: usize = 5;

/// One recorded client operation, in absolute coordinates.
#[derive(Clone)]
enum Op {
    Write {
        lo: [usize; 2],
        hi: [usize; 2],
        data: Vec<f64>,
    },
    /// Extend of `dim` whose server-acknowledged result was `bound`.
    ExtendTo {
        dim: usize,
        bound: usize,
    },
}

fn tag(thread: usize, version: usize) -> f64 {
    (thread * 100 + version) as f64
}

/// The per-thread workload, generic over the two client transports.
/// Returns the thread's operation log.
fn run_thread<T: drx::server::Transport>(mut client: drx::server::Conn<T>, t: usize) -> Vec<Op> {
    let (h, info) = client.open("a").expect("open");
    assert_eq!(info.bounds[0] as usize, ROWS);
    let mut log = Vec::new();
    let r0 = (t * BAND) as u64;
    let r1 = r0 + BAND as u64;
    for v in 1..=VERSIONS {
        // Write the whole band at the current column bound. The region is
        // locked as one unit, so concurrent readers of any slice of the
        // band see all of this write or none of it.
        let cols = client.stat(h).expect("stat").bounds[1];
        let volume = (BAND as u64 * cols) as usize;
        let data = vec![tag(t, v); volume];
        client.write_region_from::<f64>(h, &[r0, 0], &[r1, cols], &data).expect("write");
        log.push(Op::Write { lo: [r0 as usize, 0], hi: [r1 as usize, cols as usize], data });

        // Each thread grows the column dimension once, mid-workload.
        if v == 3 {
            let bounds = client.extend(h, 1, 2).expect("extend");
            log.push(Op::ExtendTo { dim: 1, bound: bounds[1] as usize });
        }

        // Read our own band over the initial columns: must be exactly the
        // tag we just wrote (nobody else writes these rows).
        let mine = client.read_region_as::<f64>(h, &[r0, 0], &[r1, COLS as u64]).expect("read own");
        assert!(
            mine.iter().all(|&x| x == tag(t, v)),
            "thread {t} v{v}: own band corrupted: {mine:?}"
        );

        // Read another thread's band over the initial columns: whatever
        // version it is at, the slice must be *uniform* — a torn write
        // would show two tags at once.
        let o = (t + 1 + v) % THREADS;
        let olo = (o * BAND) as u64;
        let other = client
            .read_region_as::<f64>(h, &[olo, 0], &[olo + BAND as u64, COLS as u64])
            .expect("read other");
        let first = other[0];
        assert!(
            other.iter().all(|&x| x == first),
            "thread {t} v{v}: torn read of band {o}: {other:?}"
        );
        assert!(
            first == 0.0 || (first as usize) / 100 == o,
            "thread {t} v{v}: band {o} holds foreign tag {first}"
        );
    }
    client.close(h).expect("close");
    log
}

#[test]
fn concurrent_mixed_workload_matches_serial_oracle() {
    let pfs = Pfs::memory(4, 4096).unwrap();
    DrxFile::<f64>::create(&pfs, "a", &CHUNK, &[ROWS, COLS]).unwrap();

    let server = Server::new(pfs.clone(), ServerConfig { cache_chunks: 32 });
    let tcp = serve(&server, "127.0.0.1:0", 4).unwrap();
    let addr = tcp.addr();

    let logs: Arc<Mutex<Vec<Vec<Op>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let server = server.clone();
        let logs = Arc::clone(&logs);
        handles.push(thread::spawn(move || {
            // Mix transports: the same workload over TCP and in-process.
            let log = if t % 3 == 0 {
                run_thread(TcpClient::connect(addr).expect("connect"), t)
            } else {
                run_thread(Client::connect(&server), t)
            };
            logs.lock().unwrap().push(log);
        }));
    }
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    tcp.shutdown().unwrap();
    server.flush_all().unwrap();

    // --- Serial oracle replay -------------------------------------------
    let oracle_pfs = Pfs::memory(4, 4096).unwrap();
    let mut oracle = DrxFile::<f64>::create(&oracle_pfs, "a", &CHUNK, &[ROWS, COLS]).unwrap();

    let logs = logs.lock().unwrap();
    // Extends, in reconstructed commit order (monotone resulting bound).
    let mut extends: Vec<(usize, usize)> = logs
        .iter()
        .flatten()
        .filter_map(|op| match op {
            Op::ExtendTo { dim, bound } => Some((*dim, *bound)),
            _ => None,
        })
        .collect();
    assert_eq!(extends.len(), THREADS, "every thread extended exactly once");
    extends.sort_by_key(|&(_, bound)| bound);
    for (dim, bound) in extends {
        let cur = oracle.bounds()[dim];
        assert!(bound > cur, "extend results must be strictly monotone");
        oracle.extend(dim, bound - cur).unwrap();
    }
    // Writes, thread-by-thread (threads write disjoint rows).
    for log in logs.iter() {
        for op in log {
            if let Op::Write { lo, hi, data } = op {
                let region = Region::new(lo.to_vec(), hi.to_vec()).unwrap();
                oracle.write_region(&region, Layout::C, data).unwrap();
            }
        }
    }
    oracle.sync_meta().unwrap();

    // --- Byte-identical comparison --------------------------------------
    let live = DrxFile::<f64>::open(&pfs, "a").unwrap();
    assert_eq!(live.bounds(), oracle.bounds());
    assert_eq!(
        live.meta().encode(),
        oracle.meta().encode(),
        "metadata (axial vectors included) must match the serial replay"
    );
    let live_xta = pfs.open("a.xta").unwrap();
    let oracle_xta = oracle_pfs.open("a.xta").unwrap();
    assert_eq!(live_xta.len(), oracle_xta.len());
    assert_eq!(
        live_xta.read_vec(0, live_xta.len() as usize).unwrap(),
        oracle_xta.read_vec(0, oracle_xta.len() as usize).unwrap(),
        "payload bytes diverge from the serial replay"
    );
    // And logically: every band holds its final tag over the full extent.
    let full = live.read_full(Layout::C).unwrap();
    let cols = live.bounds()[1];
    for t in 0..THREADS {
        for r in t * BAND..(t + 1) * BAND {
            for c in 0..cols {
                let got = full[r * cols + c];
                assert!(
                    got == tag(t, VERSIONS) || (got == 0.0 && c >= COLS),
                    "cell [{r},{c}] = {got}"
                );
            }
        }
    }
}

#[test]
fn coalescing_beats_naive_per_chunk_io() {
    const N_CHUNKS: usize = 16;
    let make = |name: &str| {
        let pfs = Pfs::memory(2, 4096).unwrap();
        let mut f = DrxFile::<f64>::create(&pfs, name, &[8, 4], &[8, 4 * N_CHUNKS]).unwrap();
        f.fill_with(|i| (i[0] * 100 + i[1]) as f64).unwrap();
        (pfs, f)
    };

    // Naive baseline: eight full-array scans issued chunk-by-chunk — one
    // PFS request per chunk, the access pattern of a client that does not
    // coalesce. (The serial library itself now reads regions with one
    // vectored request, so the per-chunk pattern is spelled out here.)
    let (naive_pfs, naive_file) = make("a");
    let full = Region::new(vec![0, 0], vec![8, 4 * N_CHUNKS]).unwrap();
    let expected = naive_file.read_region(&full, Layout::C).unwrap();
    naive_pfs.reset_stats();
    for _ in 0..8 {
        for addr in 0..N_CHUNKS as u64 {
            naive_file.read_chunk_raw(addr).unwrap();
        }
    }
    let naive = naive_pfs.stats().total_requests();
    assert!(naive >= (8 * N_CHUNKS) as u64, "baseline should pay per chunk: {naive}");

    // Served: eight concurrent sessions reading the same full array. Runs
    // of adjacent chunks coalesce into single PFS reads and the shared
    // cache serves repeats, so the request count collapses.
    let (pfs, _file) = make("a");
    let server = Server::new(pfs.clone(), ServerConfig { cache_chunks: 2 * N_CHUNKS });
    pfs.reset_stats();
    let mut workers = Vec::new();
    for _ in 0..8 {
        let server = server.clone();
        let expected = expected.clone();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(&server);
            let (h, _) = client.open("a").unwrap();
            let got =
                client.read_region_as::<f64>(h, &[0, 0], &[8, (4 * N_CHUNKS) as u64]).unwrap();
            assert_eq!(got, expected);
            client.close(h).unwrap();
        }));
    }
    for w in workers {
        w.join().expect("reader thread panicked");
    }
    let coalesced = pfs.stats().total_requests();
    assert!(
        coalesced < naive,
        "coalesced I/O ({coalesced} requests) must beat naive per-chunk I/O ({naive})"
    );
    // The eight sessions' 128 chunk reads were served by at most 16 faults.
    let mut client = Client::connect(&server);
    let (h, _) = client.open("a").unwrap();
    let stat = client.stat(h).unwrap();
    assert_eq!(stat.global_cache.misses, N_CHUNKS as u64);
    assert!(stat.global_cache.hits >= (8 * N_CHUNKS) as u64);
    assert!(stat.coalesced_batches >= 1);
}

#[test]
fn extend_is_serialized_and_readers_survive_growth() {
    let pfs = Pfs::memory(2, 1024).unwrap();
    DrxFile::<i64>::create(&pfs, "g", &[4, 4], &[8, 8]).unwrap();
    let server = Server::new(pfs.clone(), ServerConfig::default());

    // One thread extends dim 0 twenty times while seven readers hammer the
    // initial region; every read must stay valid (addresses never move).
    let mut handles = Vec::new();
    for _ in 0..7 {
        let server = server.clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(&server);
            let (h, _) = client.open("g").unwrap();
            for _ in 0..50 {
                let data = client.read_region_as::<i64>(h, &[0, 0], &[8, 8]).unwrap();
                assert_eq!(data.len(), 64);
                assert!(data.iter().all(|&x| x == 0));
            }
        }));
    }
    let grower = {
        let server = server.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&server);
            let (h, _) = client.open("g").unwrap();
            let mut last = 8;
            for _ in 0..20 {
                let bounds = client.extend(h, 0, 1).unwrap();
                assert_eq!(bounds[0], last + 1, "extends must serialize");
                last = bounds[0];
            }
        })
    };
    for h in handles {
        h.join().expect("reader panicked");
    }
    grower.join().expect("grower panicked");

    let mut client = Client::connect(&server);
    let (h, info) = client.open("g").unwrap();
    assert_eq!(info.bounds, vec![28, 8]);
    client.close(h).unwrap();
    server.flush_all().unwrap();
    let reopened = DrxFile::<i64>::open(&pfs, "g").unwrap();
    assert_eq!(reopened.bounds(), &[28, 8]);
}
