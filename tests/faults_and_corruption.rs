//! Failure injection and corruption handling across the full stack: PFS
//! server faults must surface as typed errors (not panics or silent
//! corruption), and damaged metadata must be rejected at open.

use drx::parallel::{to_msg, DistSpec, DrxmpHandle};
use drx::serial::DrxFile;
use drx::{run_spmd, Layout, Pfs, Region};

fn seeded(pfs: &Pfs) {
    let mut f: DrxFile<i64> = DrxFile::create(pfs, "arr", &[2, 2], &[8, 8]).unwrap();
    f.fill_with(|i| (i[0] * 8 + i[1]) as i64).unwrap();
}

#[test]
fn injected_server_fault_surfaces_through_serial_reads() {
    let pfs = Pfs::memory(2, 64).unwrap();
    seeded(&pfs);
    let f: DrxFile<i64> = DrxFile::open(&pfs, "arr").unwrap();
    // Arm a fault on server 0: the next request fails once.
    pfs.inject_fault(0, 0).unwrap();
    let region = Region::new(vec![0, 0], vec![8, 8]).unwrap();
    let err = f.read_region(&region, Layout::C).unwrap_err();
    assert!(err.to_string().contains("injected fault"), "got: {err}");
    // After the one-shot fault, the same read succeeds and is correct.
    let data = f.read_region(&region, Layout::C).unwrap();
    assert_eq!(data[63], 63);
}

#[test]
fn injected_fault_poisons_a_parallel_collective_cleanly() {
    let pfs = Pfs::memory(2, 64).unwrap();
    seeded(&pfs);
    pfs.inject_fault(1, 2).unwrap();
    let fs = pfs.clone();
    let result = run_spmd(2, move |comm| {
        let mut h: DrxmpHandle<i64> =
            DrxmpHandle::open(comm, &fs, "arr", DistSpec::block(vec![2, 1])).map_err(to_msg)?;
        // Some rank's aggregated read will hit the fault; both ranks must
        // come back with an error (either the fault or the poison), never a
        // deadlock or a panic.
        match h.read_my_zone(Layout::C) {
            Ok(_) => Ok(true),
            Err(e) => {
                let s = e.to_string();
                assert!(
                    s.contains("injected fault") || s.contains("poisoned"),
                    "unexpected error: {s}"
                );
                Err(to_msg(e))
            }
        }
    });
    // The run as a whole reports the failure.
    assert!(result.is_err(), "fault must propagate out of run_spmd");
}

#[test]
fn corrupt_metadata_is_rejected_on_open() {
    let pfs = Pfs::memory(2, 64).unwrap();
    seeded(&pfs);
    // Flip a byte in the middle of the .xmd body: CRC must catch it.
    let xmd = pfs.open("arr.xmd").unwrap();
    let mut bytes = xmd.read_vec(0, xmd.len() as usize).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5A;
    xmd.write_at(0, &bytes).unwrap();
    let err = match DrxFile::<i64>::open(&pfs, "arr") {
        Err(e) => e,
        Ok(_) => panic!("open must fail on corrupt metadata"),
    };
    assert!(err.to_string().contains("corrupt metadata"), "got: {err}");
    // Parallel open fails on every rank too (replica decode).
    let fs = pfs.clone();
    let res = run_spmd(2, move |comm| {
        match DrxmpHandle::<i64>::open(comm, &fs, "arr", DistSpec::block(vec![2, 1])) {
            Err(e) => {
                assert!(e.to_string().contains("corrupt"), "got: {e}");
                Ok(())
            }
            Ok(_) => panic!("open must fail on corrupt metadata"),
        }
    });
    assert!(res.is_ok());
}

#[test]
fn truncated_metadata_is_rejected() {
    let pfs = Pfs::memory(2, 64).unwrap();
    seeded(&pfs);
    let xmd = pfs.open("arr.xmd").unwrap();
    xmd.set_len(xmd.len() / 2).unwrap();
    assert!(DrxFile::<i64>::open(&pfs, "arr").is_err());
}

#[test]
fn wrong_dtype_is_rejected_everywhere() {
    let pfs = Pfs::memory(2, 64).unwrap();
    seeded(&pfs); // i64 array
    assert!(DrxFile::<f32>::open(&pfs, "arr").is_err());
    let fs = pfs.clone();
    run_spmd(2, move |comm| {
        assert!(DrxmpHandle::<f64>::open(comm, &fs, "arr", DistSpec::block(vec![2, 1])).is_err());
        Ok(())
    })
    .unwrap();
}

#[test]
fn rank_panic_inside_parallel_io_does_not_deadlock() {
    let pfs = Pfs::memory(2, 64).unwrap();
    seeded(&pfs);
    let fs = pfs.clone();
    let err = run_spmd(2, move |comm| -> drx_msg::Result<()> {
        let mut h: DrxmpHandle<i64> =
            DrxmpHandle::open(comm, &fs, "arr", DistSpec::block(vec![2, 1])).map_err(to_msg)?;
        if comm.rank() == 1 {
            panic!("simulated application bug");
        }
        // Rank 0 blocks in a collective; the poison must wake it with an
        // error instead of hanging the test forever.
        match h.read_my_zone(Layout::C) {
            Err(e) => {
                assert!(e.to_string().contains("poisoned"));
                Err(to_msg(e))
            }
            Ok(_) => Ok(()),
        }
    })
    .unwrap_err();
    assert!(err.to_string().contains("panicked"));
}

#[test]
fn missing_files_error_cleanly() {
    let pfs = Pfs::memory(2, 64).unwrap();
    assert!(DrxFile::<i64>::open(&pfs, "nope").is_err());
    // In the parallel open, rank 0 fails before the metadata broadcast; the
    // abort discipline (returning Err poisons the world) must release the
    // other rank from the pending collective instead of deadlocking —
    // exactly what an MPI program would need MPI_Abort for.
    let fs = pfs.clone();
    let res = run_spmd(2, move |comm| -> drx_msg::Result<()> {
        match DrxmpHandle::<i64>::open(comm, &fs, "nope", DistSpec::block(vec![2, 1])) {
            Err(e) => Err(to_msg(e)), // propagate so the runtime aborts the world
            Ok(_) => panic!("open of a missing file must fail"),
        }
    });
    assert!(res.is_err());
}
