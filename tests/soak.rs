//! Larger-scale soak tests — a 3-D parallel workflow with repeated
//! extensions along every dimension, many ranks and both distributions.
//! Sizes are chosen to stay debug-build friendly; run with
//! `cargo test --release --test soak -- --ignored` for the big variant.

use drx::parallel::{to_msg, DistSpec, DrxmpHandle};
use drx::serial::DrxFile;
use drx::{run_spmd, Layout, Pfs, Region};

fn tag(idx: &[usize]) -> i64 {
    idx.iter().fold(13i64, |a, &i| a.wrapping_mul(1009).wrapping_add(i as i64))
}

/// The common workflow: serial init, parallel extension+write rounds from
/// varying rank counts, serial full verification at the end.
fn workflow(side0: usize, rounds: usize, ranks: usize) {
    let pfs = Pfs::memory(4, 32 * 1024).unwrap();
    {
        let mut f: DrxFile<i64> =
            DrxFile::create(&pfs, "soak", &[4, 4, 2], &[side0, side0, 4]).unwrap();
        f.fill_with(tag).unwrap();
    }
    let mut bounds = vec![side0, side0, 4];
    for round in 0..rounds {
        let dim = round % 3;
        let by = [4, 8, 2][dim];
        let fs = pfs.clone();
        let bounds_in = bounds.clone();
        run_spmd(ranks, move |comm| {
            let dist = DistSpec::auto(comm.size(), 3);
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "soak", dist).map_err(to_msg)?;
            assert_eq!(h.bounds(), &bounds_in[..], "replica bounds before extension");
            h.extend(dim, by).map_err(to_msg)?;
            // Rank 0 fills the newly exposed band collectively; everyone
            // else participates.
            let mut lo = vec![0usize; 3];
            lo[dim] = bounds_in[dim];
            let region = Region::new(lo, h.bounds().to_vec()).unwrap();
            if comm.rank() == 0 {
                let data: Vec<i64> = region.iter().map(|i| tag(&i)).collect();
                h.write_region_all(Some((&region, &data)), Layout::C).map_err(to_msg)?;
            } else {
                h.write_region_all(None, Layout::C).map_err(to_msg)?;
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        bounds[dim] += by;
    }
    // Serial verification of every element.
    let f: DrxFile<i64> = DrxFile::open(&pfs, "soak").unwrap();
    assert_eq!(f.bounds(), &bounds[..]);
    let all = f.read_full(Layout::C).unwrap();
    for (pos, idx) in f.meta().element_region().iter().enumerate() {
        assert_eq!(all[pos], tag(&idx), "at {idx:?}");
    }
    // The growth history must have accumulated several axial records.
    assert!(f.meta().grid().record_count() >= rounds.min(4));
}

#[test]
fn three_d_growth_workflow_small() {
    workflow(8, 4, 4);
}

#[test]
fn three_d_growth_workflow_odd_ranks() {
    workflow(8, 3, 3);
}

#[test]
#[ignore = "heavy: run with --release --ignored"]
fn three_d_growth_workflow_large() {
    workflow(32, 9, 8);
}

#[test]
#[ignore = "heavy: run with --release --ignored"]
fn wide_rank_sweep() {
    for ranks in [1, 2, 3, 5, 8, 12, 16] {
        workflow(16, 3, ranks);
    }
}
