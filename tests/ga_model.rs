//! Model-based test of the Global-Array layer: a random script of
//! get/put/accumulate operations executed through `GaView` must match a
//! sequential in-memory model exactly, regardless of which rank performs
//! each operation.

use drx::parallel::{to_msg, DistSpec, DrxmpHandle, GaView};
use drx::serial::DrxFile;
use drx::{run_spmd, Layout, Pfs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put { idx: [usize; 2], value: i64 },
    Acc { idx: [usize; 2], value: i64 },
}

fn op_strategy(side: usize) -> impl Strategy<Value = Op> {
    (0..side, 0..side, -100i64..100, prop::bool::ANY).prop_map(|(i, j, v, put)| {
        if put {
            Op::Put { idx: [i, j], value: v }
        } else {
            Op::Acc { idx: [i, j], value: v }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ga_script_matches_sequential_model(
        ops in prop::collection::vec(op_strategy(12), 1..40),
    ) {
        const SIDE: usize = 12;
        // Sequential model.
        let mut model = vec![0i64; SIDE * SIDE];
        for op in &ops {
            match *op {
                Op::Put { idx, value } => model[idx[0] * SIDE + idx[1]] = value,
                Op::Acc { idx, value } => model[idx[0] * SIDE + idx[1]] += value,
            }
        }
        // Parallel execution: operations are partitioned round-robin over
        // ranks, with a fence between every step so the global order is
        // preserved (each step runs exactly one operation on one rank).
        let pfs = Pfs::memory(2, 256).unwrap();
        {
            let _f: DrxFile<i64> = DrxFile::create(&pfs, "m", &[3, 3], &[SIDE, SIDE]).unwrap();
        }
        let fs = pfs.clone();
        let ops_clone = ops.clone();
        run_spmd(4, move |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "m", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
            let ga = GaView::load(&mut h).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            for (step, op) in ops_clone.iter().enumerate() {
                if step % comm.size() == comm.rank() {
                    match *op {
                        Op::Put { idx, value } => ga.put(&[idx[0], idx[1]], value).map_err(to_msg)?,
                        Op::Acc { idx, value } => {
                            ga.accumulate(&[idx[0], idx[1]], value).map_err(to_msg)?
                        }
                    }
                }
                ga.fence().map_err(to_msg)?;
            }
            ga.sync_to_file(&mut h).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        // Compare the persisted array against the model.
        let f: DrxFile<i64> = DrxFile::open(&pfs, "m").unwrap();
        let got = f.read_full(Layout::C).unwrap();
        prop_assert_eq!(got, model);
    }
}
