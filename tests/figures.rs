//! Integration assertions for the paper's figures, exercised through the
//! public facade API (the bench crate has its own copies; these prove the
//! published `drx` surface reproduces the paper's numbers).

use drx::{ExtendibleShape, Region};

/// Figure 1: the 5×4 chunk grid layout and its growth history.
#[test]
fn figure1_chunk_grid() {
    let mut s = ExtendibleShape::new(&[1, 1]).unwrap();
    for (dim, by) in [(1, 1), (0, 1), (0, 1), (1, 1), (0, 1), (1, 1), (0, 1)] {
        s.extend(dim, by).unwrap();
    }
    let expected =
        [[0u64, 1, 6, 12], [2, 3, 7, 13], [4, 5, 8, 14], [9, 10, 11, 15], [16, 17, 18, 19]];
    for (i, row) in expected.iter().enumerate() {
        for (j, &addr) in row.iter().enumerate() {
            assert_eq!(s.address(&[i, j]).unwrap(), addr, "chunk ({i},{j})");
            assert_eq!(s.index_of(addr).unwrap(), vec![i, j], "inverse of {addr}");
        }
    }
}

/// Figure 1 as element-level metadata: A[10][12] in 2×3 chunks puts
/// element ⟨9,7⟩ in chunk [4,2] at address 18 (paper §II-A).
#[test]
fn figure1_element_addressing() {
    let meta = drx::ArrayMeta::new(drx::DType::Float64, &[2, 3], &[10, 12]).unwrap();
    let (addr, within) = meta.locate_element(&[9, 7]).unwrap();
    assert_eq!(addr, 18);
    assert_eq!(within, 4);
    assert_eq!(meta.grid().bounds(), &[5, 4]);
    assert_eq!(meta.total_chunks(), 20);
}

/// Figure 2: the four allocation schemes on the 8×8 square.
#[test]
fn figure2_schemes() {
    use drx::alloc::{
        is_bijective_on_square, AllocScheme2, AxialScheme, Morton2, RowMajor, SymmetricShell2,
    };
    let rm = RowMajor::new(vec![8, 8]).unwrap();
    assert_eq!(rm.address2(3, 5).unwrap(), 29);
    let z = Morton2::new();
    assert_eq!(z.address2(7, 7).unwrap(), 63);
    assert_eq!(z.address2(2, 0).unwrap(), 8);
    let sh = SymmetricShell2::new();
    assert_eq!(sh.address2(7, 0).unwrap(), 56);
    assert_eq!(sh.address2(0, 7).unwrap(), 49);
    let ax = AxialScheme::figure2d().unwrap();
    assert_eq!(ax.address2(0, 0).unwrap(), 0);
    for s in [&rm as &dyn AllocScheme2, &z, &sh, &ax] {
        assert!(is_bijective_on_square(s, 8).unwrap(), "{} not bijective", s.name());
    }
}

/// Figure 3: the complete 3-D example with all axial-vector records and the
/// worked addresses 7, 34, 56.
#[test]
fn figure3_axial_vectors_and_addresses() {
    let mut s = ExtendibleShape::new(&[4, 3, 1]).unwrap();
    for (dim, by) in [(2, 1), (2, 1), (1, 1), (0, 2), (2, 1)] {
        s.extend(dim, by).unwrap();
    }
    assert_eq!(s.bounds(), &[6, 4, 4]);
    assert_eq!(s.total_chunks(), 96);
    // Γ0 = {(4, 48, [12,3,1])}, Γ1 = {(3, 36, [3,12,1])},
    // Γ2 = {(0,0,[3,1,1]), (1,12,[3,1,12]), (3,72,[4,1,24])}.
    let g0 = s.axial(0).records();
    assert_eq!(
        (g0[0].start_index, g0[0].start_addr, g0[0].coeffs.clone()),
        (4, 48, vec![12, 3, 1])
    );
    let g1 = s.axial(1).records();
    assert_eq!(
        (g1[0].start_index, g1[0].start_addr, g1[0].coeffs.clone()),
        (3, 36, vec![3, 12, 1])
    );
    let g2 = s.axial(2).records();
    assert_eq!((g2[0].start_index, g2[0].start_addr, g2[0].coeffs.clone()), (0, 0, vec![3, 1, 1]));
    assert_eq!(
        (g2[1].start_index, g2[1].start_addr, g2[1].coeffs.clone()),
        (1, 12, vec![3, 1, 12])
    );
    assert_eq!(
        (g2[2].start_index, g2[2].start_addr, g2[2].coeffs.clone()),
        (3, 72, vec![4, 1, 24])
    );
    // Worked addresses.
    assert_eq!(s.address(&[2, 1, 0]).unwrap(), 7);
    assert_eq!(s.address(&[3, 1, 2]).unwrap(), 34);
    assert_eq!(s.address(&[4, 2, 2]).unwrap(), 56);
    // Bijectivity over all 96 chunks.
    let mut seen = vec![false; 96];
    for idx in Region::of_shape(s.bounds()).unwrap().iter() {
        let a = s.address(&idx).unwrap() as usize;
        assert!(!seen[a]);
        seen[a] = true;
    }
    assert!(seen.into_iter().all(|b| b));
}
