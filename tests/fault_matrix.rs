//! The fault matrix: every fault class crossed with every array operation
//! phase ({write, read, extend, flush}), asserting the stack's failure
//! contract — each cell either succeeds (transients absorbed by the retry
//! policy, data verified exact) or fails with the *typed* error its fault
//! class promises. Never a panic, never a hang, never a silently short or
//! corrupt result.
//!
//! The companion seeded sweep runs a whole workload under a generated
//! schedule; `DRX_FAULT_SEED` overrides the seed so CI can run fixed seeds
//! plus a randomized one, echoing it for replay (`scripts/ci.sh`).

use drx::fault::{Event, FaultKind, Injector, Script};
use drx::parallel::MpError;
use drx::serial::DrxFile;
use drx::{Layout, Pfs, PfsConfig, PfsError};
use std::sync::Arc;

const SERVERS: usize = 2;
const STRIPE: u64 = 256;
const CHUNK: [usize; 2] = [2, 2];
const BOUNDS: [usize; 2] = [4, 4];

fn build_pfs(inj: &Arc<Injector>) -> Pfs {
    Pfs::new(PfsConfig {
        n_servers: SERVERS,
        stripe_size: STRIPE,
        injector: Some(Arc::clone(inj)),
        ..PfsConfig::default()
    })
    .expect("pfs construction")
}

fn expected(i: usize, j: usize) -> f64 {
    (i * 10 + j) as f64
}

/// Injector op counts at the start of each workload phase, measured on a
/// fault-free run. The workload is deterministic, so these marks are too.
#[derive(Debug, Clone, Copy)]
struct PhaseMarks {
    write: u64,
    read: u64,
    extend: u64,
    flush: u64,
}

impl PhaseMarks {
    fn get(&self, phase: &str) -> u64 {
        match phase {
            "write" => self.write,
            "read" => self.read,
            "extend" => self.extend,
            _ => self.flush,
        }
    }
}

/// The canonical workload: create, write every element, read them all back
/// (verified exact), extend a non-primary dimension and write into the new
/// region, then flush metadata and payload. Aborts at the first error.
fn workload(pfs: &Pfs, inj: &Injector) -> Result<PhaseMarks, MpError> {
    let mut f: DrxFile<f64> = DrxFile::create(pfs, "m", &CHUNK, &BOUNDS)?;
    let write = inj.ops();
    f.fill_with(|idx| expected(idx[0], idx[1]))?;
    let read = inj.ops();
    let data = f.read_full(Layout::C)?;
    for i in 0..BOUNDS[0] {
        for j in 0..BOUNDS[1] {
            assert_eq!(
                data[i * BOUNDS[1] + j],
                expected(i, j),
                "silent corruption at ({i},{j}) — a read returned wrong data instead of failing"
            );
        }
    }
    let extend = inj.ops();
    f.extend(1, 2)?;
    f.set(&[3, 5], 99.0)?;
    assert_eq!(f.get(&[3, 5])?, 99.0, "silent corruption in the extended region");
    let flush = inj.ops();
    f.sync_meta()?;
    f.payload_file().sync()?;
    Ok(PhaseMarks { write, read, extend, flush })
}

/// Every fault class × every operation phase. Each cell runs the full
/// workload on a fresh file system with one fault armed at the measured
/// start of the target phase, then checks the cell's contract.
#[test]
fn matrix_every_fault_class_times_every_phase() {
    // Fault-free run to measure the phase boundaries.
    let inert = Arc::new(Injector::inert());
    let marks = workload(&build_pfs(&inert), &inert).expect("fault-free workload");

    let kinds: [(&str, FaultKind); 5] = [
        ("short-read", FaultKind::ShortRead),
        ("interrupt", FaultKind::Interrupted),
        ("torn-write", FaultKind::TornWrite),
        ("delay", FaultKind::Delay { micros: 200 }),
        ("down", FaultKind::Down),
    ];
    for (kind_name, kind) in kinds {
        for phase in ["write", "read", "extend", "flush"] {
            let at = marks.get(phase);
            let mut events = vec![Event { at_op: at, domain: None, op: None, kind }];
            if kind == FaultKind::Down {
                // Down needs a concrete domain; bring it back a few ops
                // later so cells whose phase misses server 0 still finish.
                events[0].domain = Some(0);
                events.push(Event {
                    at_op: at + 6,
                    domain: Some(0),
                    op: None,
                    kind: FaultKind::Up,
                });
            }
            let inj = Arc::new(Injector::new(Script { seed: 0, events }));
            let cell = format!("{kind_name} × {phase}");
            let result = workload(&build_pfs(&inj), &inj);
            match (kind, result) {
                // Transient and benign classes must be fully absorbed.
                (FaultKind::ShortRead | FaultKind::Interrupted | FaultKind::Delay { .. }, r) => {
                    assert!(r.is_ok(), "[{cell}] transient fault leaked: {:?}", r.err());
                }
                // A torn write is permanent: typed `Torn`, or clean success
                // when the armed event was consumed by a non-write op.
                (FaultKind::TornWrite, Err(e)) => {
                    assert!(
                        matches!(e, MpError::Pfs(PfsError::Torn { .. })),
                        "[{cell}] wrong error type: {e:?}"
                    );
                }
                // A down server is typed `Unavailable`, or clean success if
                // the down window only covered the other server's ops.
                (FaultKind::Down, Err(e)) => {
                    assert!(
                        matches!(e, MpError::Pfs(PfsError::Unavailable { server: 0 })),
                        "[{cell}] wrong error type: {e:?}"
                    );
                }
                (_, Ok(_)) => {}
                (k, r) => panic!("[{cell}] unexpected outcome for {k:?}: {r:?}"),
            }
        }
    }
}

/// A whole workload under a seed-generated schedule: every outcome is
/// either success or a typed error, and the run replays identically —
/// same outcomes, same fired-event log — from the seed alone.
#[test]
fn seeded_sweep_is_typed_and_replayable() {
    let seed: u64 =
        std::env::var("DRX_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x0DDF_A017);
    let run = || {
        let inj = Arc::new(Injector::new(Script::from_seed(seed, 8, SERVERS)));
        let pfs = build_pfs(&inj);
        let outcome = match workload(&pfs, &inj) {
            Ok(_) => "ok".to_string(),
            Err(MpError::Pfs(e)) => match e {
                PfsError::Unavailable { server } => format!("unavailable:{server}"),
                PfsError::Torn { server, written } => format!("torn:{server}:{written}"),
                PfsError::ShortIo { .. } => "short-io".to_string(),
                PfsError::Io(e) => format!("io:{}", e.kind()),
                other => panic!("seed {seed}: unexpected pfs error {other:?}"),
            },
            Err(other) => panic!("seed {seed}: non-storage error {other:?}"),
        };
        (outcome, inj.fired())
    };
    let (outcome_a, fired_a) = run();
    let (outcome_b, fired_b) = run();
    assert_eq!(outcome_a, outcome_b, "seed {seed} is not replayable");
    assert_eq!(fired_a, fired_b, "seed {seed} fired different events across runs");
    eprintln!("fault sweep seed {seed}: outcome {outcome_a}, {} event(s) fired", fired_a.len());
}
