//! End-to-end test of the `drxtool` CLI: every invocation is a separate
//! process, so this exercises true on-disk persistence of the array file
//! pair (including metadata survival across extensions).

use std::path::PathBuf;
use std::process::{Command, Output};

fn tool(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_drxtool"))
        .arg(args[0])
        .arg(dir)
        .args(&args[1..])
        .output()
        .expect("spawn drxtool")
}

fn ok_stdout(dir: &PathBuf, args: &[&str]) -> String {
    let out = tool(dir, args);
    assert!(
        out.status.success(),
        "drxtool {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("drxtool-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_lifecycle_across_processes() {
    let dir = tmpdir("life");
    ok_stdout(
        &dir,
        &[
            "create",
            "a",
            "--dtype",
            "f64",
            "--chunk",
            "2x3",
            "--bounds",
            "10x12",
            "--servers",
            "2",
            "--stripe",
            "256",
        ],
    );
    ok_stdout(&dir, &["set", "a", "--index", "9x7", "--value", "3.5"]);
    assert_eq!(ok_stdout(&dir, &["get", "a", "--index", "9x7"]).trim(), "3.5");
    // Extend a non-primary dimension in a separate process; data survives.
    ok_stdout(&dir, &["extend", "a", "--dim", "1", "--by", "6"]);
    assert_eq!(ok_stdout(&dir, &["get", "a", "--index", "9x7"]).trim(), "3.5");
    assert_eq!(ok_stdout(&dir, &["get", "a", "--index", "9x17"]).trim(), "0");
    let info = ok_stdout(&dir, &["info", "a"]);
    assert!(info.contains("bounds     : 10×18"), "{info}");
    assert!(info.contains("chunk grid : 5×6"), "{info}");
    let axial = ok_stdout(&dir, &["axial", "a"]);
    assert!(axial.contains("D1: N*=4"), "{axial}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn i64_arrays_and_multiple_names() {
    let dir = tmpdir("i64");
    ok_stdout(&dir, &["create", "x", "--dtype", "i64", "--chunk", "4", "--bounds", "16"]);
    ok_stdout(&dir, &["create", "y", "--dtype", "f64", "--chunk", "4", "--bounds", "8"]);
    ok_stdout(&dir, &["set", "x", "--index", "15", "--value", "42"]);
    assert_eq!(ok_stdout(&dir, &["get", "x", "--index", "15"]).trim(), "42");
    assert_eq!(ok_stdout(&dir, &["get", "y", "--index", "3"]).trim(), "0");
    let info = ok_stdout(&dir, &["info", "x"]);
    assert!(info.contains("int64"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dump_renders_grids_and_regions() {
    let dir = tmpdir("dump");
    ok_stdout(&dir, &["create", "m", "--dtype", "i64", "--chunk", "2x2", "--bounds", "4x4"]);
    ok_stdout(&dir, &["set", "m", "--index", "1x2", "--value", "7"]);
    let full = ok_stdout(&dir, &["dump", "m"]);
    assert!(full.contains("[   1] 0 0 7 0"), "{full}");
    assert_eq!(full.lines().count(), 4);
    let sub = ok_stdout(&dir, &["dump", "m", "--lo", "1x1", "--hi", "2x4"]);
    assert_eq!(sub.trim(), "[   1] 0 7 0");
    // 1-D arrays dump as index = value lines.
    ok_stdout(&dir, &["create", "v", "--dtype", "f64", "--chunk", "2", "--bounds", "4"]);
    ok_stdout(&dir, &["set", "v", "--index", "3", "--value", "1.5"]);
    let v = ok_stdout(&dir, &["dump", "v"]);
    assert!(v.contains("[3] = 1.5"), "{v}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_and_client_over_tcp() {
    let dir = tmpdir("serve");
    ok_stdout(&dir, &["create", "grid", "--dtype", "f64", "--chunk", "2x2", "--bounds", "6x6"]);
    ok_stdout(&dir, &["set", "grid", "--index", "3x4", "--value", "7.25"]);
    // Port 0 is not supported by the CLI (the client needs a known port),
    // so derive one from the pid to keep parallel test runs apart.
    let port = 20000 + (std::process::id() % 20000);
    let addr = format!("127.0.0.1:{port}");
    let mut server = Command::new(env!("CARGO_BIN_EXE_drxtool"))
        .args(["serve"])
        .arg(&dir)
        .args(["--addr", &addr, "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn drxtool serve");
    // Wait for the listener to come up.
    let mut connected = false;
    for _ in 0..100 {
        if std::net::TcpStream::connect(&addr).is_ok() {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(connected, "server never started listening on {addr}");

    let client = |args: &[&str]| -> Output {
        Command::new(env!("CARGO_BIN_EXE_drxtool"))
            .args(["client", &addr])
            .args(args)
            .output()
            .expect("spawn drxtool client")
    };
    let get = client(&["get", "grid", "--index", "3x4"]);
    assert!(get.status.success(), "{}", String::from_utf8_lossy(&get.stderr));
    assert_eq!(String::from_utf8_lossy(&get.stdout).trim(), "7.25");

    let set = client(&["set", "grid", "--index", "0x1", "--value", "2.5"]);
    assert!(set.status.success(), "{}", String::from_utf8_lossy(&set.stderr));
    let get2 = client(&["get", "grid", "--index", "0x1"]);
    assert_eq!(String::from_utf8_lossy(&get2.stdout).trim(), "2.5");

    let info = client(&["info", "grid"]);
    let text = String::from_utf8_lossy(&info.stdout).to_string();
    assert!(info.status.success());
    assert!(text.contains("bounds     : 6×6"), "{text}");
    assert!(text.contains("float64"), "{text}");

    // Opening a name the server does not have is an error, not a hang.
    let missing = client(&["get", "nope", "--index", "0x0"]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("drxtool:"));

    server.kill().expect("kill server");
    server.wait().expect("reap server");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_rejects_bad_arguments() {
    let dir = tmpdir("serve-bad");
    // Serving a directory that does not exist.
    let out = tool(&dir, &["serve", "--addr", "127.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("drxtool:"));
    // Serving without --addr.
    ok_stdout(&dir, &["create", "a", "--dtype", "f64", "--chunk", "2", "--bounds", "4"]);
    let out = tool(&dir, &["serve"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--addr"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Serving on an unresolvable address.
    let out = tool(&dir, &["serve", "--addr", "host.invalid:1"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot serve"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn client_rejects_bad_address_and_usage() {
    // Connecting to a port nothing listens on fails cleanly.
    let out = Command::new(env!("CARGO_BIN_EXE_drxtool"))
        .args(["client", "127.0.0.1:1", "info", "a"])
        .output()
        .expect("spawn drxtool client");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot connect"));
    // Unparseable address.
    let out = Command::new(env!("CARGO_BIN_EXE_drxtool"))
        .args(["client", "not-an-address", "info", "a"])
        .output()
        .expect("spawn drxtool client");
    assert!(!out.status.success());
    // Missing subcommand arguments exit with usage (status 2).
    let out = Command::new(env!("CARGO_BIN_EXE_drxtool"))
        .args(["client", "127.0.0.1:1"])
        .output()
        .expect("spawn drxtool client");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = tmpdir("err");
    // Operating on a missing directory/array.
    let out = tool(&dir, &["info", "missing"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("drxtool:"));
    // Out-of-bounds get after create.
    ok_stdout(&dir, &["create", "a", "--dtype", "f64", "--chunk", "2", "--bounds", "4"]);
    let out = tool(&dir, &["get", "a", "--index", "9"]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).unwrap();
}
