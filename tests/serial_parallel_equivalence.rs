//! Cross-crate equivalence: the in-memory reference array, the serial DRX
//! file, and the parallel DRX-MP paths must all agree — under arbitrary
//! growth histories and for every distribution and rank count.

use drx::parallel::{to_msg, DistSpec, DrxmpHandle};
use drx::serial::DrxFile;
use drx::{run_spmd, ExtendibleArray, Layout, Pfs, Region};
use proptest::prelude::*;

fn tag(idx: &[usize]) -> i64 {
    idx.iter().fold(5i64, |a, &i| a.wrapping_mul(131).wrapping_add(i as i64))
}

// Serial file vs in-memory reference under a random growth + write script.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serial_file_matches_memory_reference(
        chunk in prop::collection::vec(1usize..4, 2),
        initial in prop::collection::vec(1usize..6, 2),
        exts in prop::collection::vec((0usize..2, 1usize..5), 0..5),
    ) {
        let pfs = Pfs::memory(2, 128).unwrap();
        let mut file: DrxFile<i64> = DrxFile::create(&pfs, "p", &chunk, &initial).unwrap();
        let mut mem: ExtendibleArray<i64> = ExtendibleArray::new(&chunk, &initial).unwrap();
        // Seed, then interleave extensions with writes.
        file.fill_with(tag).unwrap();
        mem.fill_with(tag).unwrap();
        for &(dim, by) in &exts {
            file.extend(dim, by).unwrap();
            mem.extend(dim, by).unwrap();
            // Write the newly exposed band.
            let mut lo = vec![0; 2];
            lo[dim] = mem.bounds()[dim] - by;
            let region = Region::new(lo, mem.bounds().to_vec()).unwrap();
            let data: Vec<i64> = region.iter().map(|i| tag(&i) + 1).collect();
            file.write_region(&region, Layout::C, &data).unwrap();
            mem.write_region(&region, Layout::C, &data).unwrap();
        }
        prop_assume!(mem.len() <= 4096);
        let full = mem.meta().element_region();
        for layout in [Layout::C, Layout::Fortran] {
            prop_assert_eq!(
                file.read_region(&full, layout).unwrap(),
                mem.read_region(&full, layout).unwrap()
            );
        }
        // Reopen and re-check a corner element.
        drop(file);
        let file: DrxFile<i64> = DrxFile::open(&pfs, "p").unwrap();
        let corner: Vec<usize> = file.bounds().iter().map(|&b| b - 1).collect();
        prop_assert_eq!(file.get(&corner).unwrap(), mem.get(&corner).unwrap());
    }
}

/// Parallel zone reads equal the serial full read, for BLOCK and
/// BLOCK_CYCLIC and several rank counts.
#[test]
fn parallel_zone_reads_match_serial() {
    let pfs = Pfs::memory(4, 1024).unwrap();
    {
        let mut f: DrxFile<i64> = DrxFile::create(&pfs, "arr", &[3, 2], &[13, 10]).unwrap();
        f.fill_with(tag).unwrap();
        f.extend(1, 5).unwrap();
        f.extend(0, 2).unwrap();
        let region = f.meta().element_region();
        let data: Vec<i64> = region.iter().map(|i| tag(&i) * 2).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
    }
    let serial: DrxFile<i64> = DrxFile::open(&pfs, "arr").unwrap();
    let reference = serial.read_full(Layout::C).unwrap();
    let bounds = serial.bounds().to_vec();

    for nprocs in [1usize, 2, 4, 6] {
        for dist in [
            DistSpec::auto(nprocs, 2),
            DistSpec::block_cyclic(DistSpec::auto(nprocs, 2).proc_grid().to_vec(), vec![1, 2]),
        ] {
            let fs = pfs.clone();
            let reference = reference.clone();
            let bounds = bounds.clone();
            run_spmd(nprocs, move |comm| {
                let mut h: DrxmpHandle<i64> =
                    DrxmpHandle::open(comm, &fs, "arr", dist.clone()).map_err(to_msg)?;
                // Every rank independently reads the full array; must match
                // the serial reference.
                let full = Region::new(vec![0, 0], bounds.clone()).unwrap();
                let mine = h.read_region(&full, Layout::C).map_err(to_msg)?;
                assert_eq!(mine, reference, "rank {} full read", comm.rank());
                // Collective per-zone reads (BLOCK only exposes regions).
                if let Some(zone) = h.my_zone() {
                    let data = h.read_region_all(Some(&zone), Layout::C).map_err(to_msg)?;
                    for (pos, idx) in zone.iter().enumerate() {
                        let off = idx[0] * bounds[1] + idx[1];
                        assert_eq!(data[pos], reference[off], "zone read at {idx:?}");
                    }
                } else {
                    h.read_region_all(None, Layout::C).map_err(to_msg)?;
                }
                h.close().map_err(to_msg)?;
                Ok(())
            })
            .unwrap();
        }
    }
}

/// Parallel zone writes compose to the same file a serial writer produces.
#[test]
fn parallel_writes_match_serial_writer() {
    let write_parallel = |nprocs: usize| -> Vec<i64> {
        let pfs = Pfs::memory(4, 512).unwrap();
        let fs = pfs.clone();
        run_spmd(nprocs, move |comm| {
            let mut h: DrxmpHandle<i64> = DrxmpHandle::create(
                comm,
                &fs,
                "w",
                &[2, 3],
                &[9, 11],
                DistSpec::auto(comm.size(), 2),
            )
            .map_err(to_msg)?;
            let data = h.my_zone().map(|z| z.iter().map(|i| tag(&i)).collect::<Vec<i64>>());
            h.write_my_zone(Layout::C, data.as_deref()).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        let f: DrxFile<i64> = DrxFile::open(&pfs, "w").unwrap();
        f.read_full(Layout::C).unwrap()
    };

    let serial = {
        let pfs = Pfs::memory(4, 512).unwrap();
        let mut f: DrxFile<i64> = DrxFile::create(&pfs, "w", &[2, 3], &[9, 11]).unwrap();
        f.fill_with(tag).unwrap();
        f.read_full(Layout::C).unwrap()
    };
    for nprocs in [1, 2, 4] {
        assert_eq!(write_parallel(nprocs), serial, "nprocs = {nprocs}");
    }
}

/// Independent and collective reads agree on arbitrary overlapping regions.
#[test]
fn independent_equals_collective_on_overlapping_regions() {
    let pfs = Pfs::memory(4, 256).unwrap();
    {
        let mut f: DrxFile<f64> = DrxFile::create(&pfs, "o", &[4, 4], &[16, 16]).unwrap();
        f.fill_with(|i| (i[0] * 16 + i[1]) as f64).unwrap();
    }
    let fs = pfs.clone();
    run_spmd(3, move |comm| {
        let mut h: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &fs, "o", DistSpec::block(vec![3, 1])).map_err(to_msg)?;
        // All ranks request overlapping diagonal-ish regions.
        let r = comm.rank();
        let region = Region::new(vec![r * 2, r * 3], vec![r * 2 + 9, r * 3 + 7]).unwrap();
        let ind = h.read_region(&region, Layout::Fortran).map_err(to_msg)?;
        let coll = h.read_region_all(Some(&region), Layout::Fortran).map_err(to_msg)?;
        assert_eq!(ind, coll, "rank {r}");
        h.close().map_err(to_msg)?;
        Ok(())
    })
    .unwrap();
}
