//! Offline stand-in for the `criterion` crate (see `support/` — the build
//! has no crates.io access). Implements the API surface the `drx-bench`
//! benches use — `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! `BatchSize`, `black_box` — over a simple median-of-samples wall-clock
//! harness. No statistical analysis, plots, or baselines; output is one
//! line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim treats them
/// all as "one setup per measured batch".
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last measurement.
    elapsed: Duration,
}

impl Bencher {
    fn measure(samples: usize, mut once: impl FnMut() -> Duration) -> Duration {
        // One warm-up call, then the median of `samples` timed calls.
        let _ = once();
        let mut times: Vec<Duration> = (0..samples.max(1)).map(|_| once()).collect();
        times.sort_unstable();
        times[times.len() / 2]
    }

    /// Time a routine.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.elapsed = Self::measure(self.samples, || {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Time a routine with a per-batch setup excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.elapsed = Self::measure(self.samples, || {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        self.elapsed = Self::measure(self.samples, || {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            start.elapsed()
        });
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, elapsed: Duration::ZERO };
    f(&mut b);
    println!("bench {name:<56} {:>12}/iter", human(b.elapsed));
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().to_string(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _c: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(human(Duration::from_nanos(500)), "500 ns");
        assert_eq!(human(Duration::from_micros(500)), "500.00 µs");
    }
}
