//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace replaces its few external dependencies with in-tree shims (see
//! `support/`). This one wraps `std::sync` primitives behind the
//! `parking_lot` API shape the codebase uses: infallible `lock()` /
//! `read()` / `write()` (poison is swallowed — a poisoned lock just means a
//! panicking thread, and tests want the underlying data), and
//! `Condvar::wait(&mut guard)` instead of std's guard-consuming wait.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with infallible `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable whose `wait` reborrows the guard in place
/// (parking_lot style) instead of consuming it (std style).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes and returns the guard; bridge to the in-place
        // signature with a move-out/move-in. Nothing here panics between the
        // read and the write, so the guard slot is never left dangling.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.0.wait(owned).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let owned = std::ptr::read(guard);
            let (reacquired, res) =
                self.0.wait_timeout(owned, timeout).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
            WaitTimeoutResult(res.timed_out())
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 3);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
