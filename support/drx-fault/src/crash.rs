//! Crash-consistency substrate: byte stores with an explicit
//! volatile/durable split.
//!
//! A [`CrashFile`] models one server-local stream the way a kernel page
//! cache does: writes land in the volatile image, `sync` flushes it to the
//! durable image, and `crash` throws the volatile image away — exactly
//! what power loss leaves behind. A [`CrashRegistry`] names a set of
//! `CrashFile`s so they outlive the file-system instance built over them:
//! "reboot" is dropping the old instance and opening a new one against the
//! same registry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Default)]
struct Images {
    volatile: Vec<u8>,
    durable: Vec<u8>,
}

/// One byte stream with separate volatile and durable images.
#[derive(Default)]
pub struct CrashFile {
    images: Mutex<Images>,
}

fn lock(m: &Mutex<Images>) -> MutexGuard<'_, Images> {
    // Both images are plain byte vectors, valid at every intermediate
    // step, so a poisoned lock (panic elsewhere) is safe to enter.
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl CrashFile {
    pub fn new() -> CrashFile {
        CrashFile::default()
    }

    /// Read from the volatile image; bytes past its length read as zero.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) {
        let img = lock(&self.images);
        let off = offset as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = img.volatile.get(off + i).copied().unwrap_or(0);
        }
    }

    /// Write into the volatile image, extending it as needed. Returns the
    /// number of bytes applied (always `data.len()`; the torn-write path
    /// uses [`CrashFile::write_prefix_at`]).
    pub fn write_at(&self, offset: u64, data: &[u8]) {
        self.write_prefix_at(offset, data, data.len());
    }

    /// Apply only the first `keep` bytes of `data` — a torn write.
    pub fn write_prefix_at(&self, offset: u64, data: &[u8], keep: usize) {
        let keep = keep.min(data.len());
        let mut img = lock(&self.images);
        let end = offset as usize + keep;
        if img.volatile.len() < end {
            img.volatile.resize(end, 0);
        }
        img.volatile[offset as usize..end].copy_from_slice(&data[..keep]);
    }

    /// Volatile length in bytes.
    pub fn len(&self) -> u64 {
        lock(&self.images).volatile.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncate or zero-extend the volatile image.
    pub fn set_len(&self, len: u64) {
        lock(&self.images).volatile.resize(len as usize, 0);
    }

    /// Make the volatile image durable (fsync).
    pub fn sync(&self) {
        let mut img = lock(&self.images);
        img.durable = img.volatile.clone();
    }

    /// Discard everything since the last `sync` (power loss).
    pub fn crash(&self) {
        let mut img = lock(&self.images);
        img.volatile = img.durable.clone();
    }

    /// Bytes of the durable image (what a reboot would find).
    pub fn durable_len(&self) -> u64 {
        lock(&self.images).durable.len() as u64
    }
}

/// A named set of [`CrashFile`]s shared across file-system instances.
#[derive(Default)]
pub struct CrashRegistry {
    files: Mutex<HashMap<String, Arc<CrashFile>>>,
}

impl CrashRegistry {
    pub fn new() -> Arc<CrashRegistry> {
        Arc::new(CrashRegistry::default())
    }

    fn files(&self) -> MutexGuard<'_, HashMap<String, Arc<CrashFile>>> {
        match self.files.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Open (creating if absent) the stream named `name`.
    pub fn open(&self, name: &str) -> Arc<CrashFile> {
        Arc::clone(self.files().entry(name.to_string()).or_default())
    }

    /// Drop the stream named `name`.
    pub fn remove(&self, name: &str) {
        self.files().remove(name);
    }

    /// Names currently registered, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files().keys().cloned().collect();
        v.sort();
        v
    }

    /// Power-loss across every stream at once.
    pub fn crash_all(&self) {
        for f in self.files().values() {
            f.crash();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_then_crash_preserves_only_synced_bytes() {
        let f = CrashFile::new();
        f.write_at(0, b"durable!");
        f.sync();
        f.write_at(8, b" volatile");
        assert_eq!(f.len(), 17);
        f.crash();
        assert_eq!(f.len(), 8);
        let mut buf = [0u8; 8];
        f.read_at(0, &mut buf);
        assert_eq!(&buf, b"durable!");
    }

    #[test]
    fn torn_write_applies_only_a_prefix() {
        let f = CrashFile::new();
        f.write_prefix_at(0, b"abcdef", 3);
        assert_eq!(f.len(), 3);
        let mut buf = [9u8; 6];
        f.read_at(0, &mut buf);
        assert_eq!(&buf, b"abc\0\0\0");
    }

    #[test]
    fn registry_shares_streams_across_instances() {
        let reg = CrashRegistry::new();
        reg.open("a").write_at(0, b"xyz");
        reg.open("a").sync();
        let again = reg.open("a");
        let mut buf = [0u8; 3];
        again.read_at(0, &mut buf);
        assert_eq!(&buf, b"xyz");
        assert_eq!(reg.names(), vec!["a".to_string()]);
        reg.open("b").write_at(0, b"v");
        reg.crash_all();
        assert_eq!(reg.open("a").len(), 3); // synced survives
        assert_eq!(reg.open("b").len(), 0); // unsynced lost
        reg.remove("a");
        assert_eq!(reg.open("a").len(), 0);
    }
}
