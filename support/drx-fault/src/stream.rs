//! Transport-level injection: a `Read + Write` wrapper that subjects a
//! byte stream to the injector's decisions. Short reads and `EINTR` are
//! *legal* stream behaviors that robust framing code must already handle —
//! this wrapper makes tests prove it.

use crate::inject::{Decision, Injector};
use crate::script::Op;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// A fault-injecting wrapper around any byte stream. All operations are
/// charged to fault domain `domain` of the shared injector.
pub struct FaultyStream<S> {
    inner: S,
    injector: Arc<Injector>,
    domain: usize,
}

impl<S> FaultyStream<S> {
    pub fn new(inner: S, injector: Arc<Injector>, domain: usize) -> FaultyStream<S> {
        FaultyStream { inner, injector, domain }
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.injector.decide(self.domain, Op::Read, buf.len()) {
            Decision::Pass => self.inner.read(buf),
            Decision::Interrupt => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            }
            Decision::Unavailable => {
                Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected: peer down"))
            }
            Decision::ShortRead { keep } => {
                // A short read is normal `Read` behavior: deliver fewer
                // bytes than asked and let the caller loop.
                let keep = keep.max(1).min(buf.len());
                self.inner.read(&mut buf[..keep])
            }
            Decision::TornWrite { .. } => self.inner.read(buf),
            Decision::Delay { micros } => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.read(buf)
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.injector.decide(self.domain, Op::Write, buf.len()) {
            Decision::Pass => self.inner.write(buf),
            Decision::Interrupt => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            }
            Decision::Unavailable => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected: peer down"))
            }
            Decision::TornWrite { keep } => {
                // Persist a prefix, then fail the connection: the bytes
                // that escaped are on the wire, the rest are gone.
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_all(&buf[..keep])?;
                }
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected: torn write"))
            }
            Decision::ShortRead { keep } => {
                // Partial write: fewer bytes accepted than offered.
                let keep = keep.max(1).min(buf.len());
                self.inner.write(&buf[..keep])
            }
            Decision::Delay { micros } => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.write(buf)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{Event, FaultKind, Script};

    #[test]
    fn short_reads_and_eintr_are_survivable_by_read_exact() {
        // Faults on every early op: read_exact must still assemble the
        // payload because short reads and EINTR are retried by contract.
        let events = vec![
            Event { at_op: 0, domain: None, op: Some(Op::Read), kind: FaultKind::ShortRead },
            Event { at_op: 1, domain: None, op: Some(Op::Read), kind: FaultKind::Interrupted },
            Event { at_op: 2, domain: None, op: Some(Op::Read), kind: FaultKind::ShortRead },
        ];
        let inj = Arc::new(Injector::new(Script { seed: 0, events }));
        let data: Vec<u8> = (0..64u8).collect();
        let mut s = FaultyStream::new(&data[..], inj, 0);
        let mut buf = [0u8; 64];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..], &data[..]);
    }

    #[test]
    fn torn_write_persists_a_prefix_then_fails() {
        let events =
            vec![Event { at_op: 0, domain: None, op: Some(Op::Write), kind: FaultKind::TornWrite }];
        let inj = Arc::new(Injector::new(Script { seed: 0, events }));
        let mut out = Vec::new();
        let mut s = FaultyStream::new(&mut out, inj, 0);
        let err = s.write_all(&[7u8; 10]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(out, vec![7u8; 5]); // half the frame escaped
    }
}
