//! # drx-fault — deterministic fault injection for the DRX stack
//!
//! The paper's value proposition — an array that grows without ever
//! rewriting committed data — is only demonstrable if the committed data
//! *survives* faults. This crate provides the machinery to prove it:
//!
//! * [`Script`]: a replayable schedule of fault events, either parsed from
//!   text (`drxtool --fault-script`) or generated deterministically from a
//!   seed. The same seed always yields the same schedule.
//! * [`Injector`]: a thread-safe state machine consulted before every
//!   storage or transport operation. It counts operations globally, fires
//!   scripted events at their operation counts, tracks which fault domains
//!   (stripe servers) are down, and logs every fired event so a run can be
//!   compared against its replay.
//! * [`CrashFile`] / [`CrashRegistry`]: a byte store with an explicit
//!   volatile/durable split. Writes land in the volatile image; `sync`
//!   makes them durable; `crash` discards everything since the last sync.
//!   This is what lets a test kill a write mid-flight and observe exactly
//!   what a real power loss would leave on disk.
//! * [`FaultyStream`]: a `Read + Write` wrapper injecting short reads,
//!   `EINTR` and delays into a byte stream, for exercising the wire
//!   protocol's framing layer.
//!
//! The crate is dependency-free and knows nothing about `drx-pfs` or
//! `drx-server`; those crates adapt [`Decision`]s into their own typed
//! errors (dependency direction: storage depends on the fault layer, never
//! the reverse).

mod crash;
mod inject;
mod script;
mod stream;

pub use crash::{CrashFile, CrashRegistry};
pub use inject::{Decision, Injector};
pub use script::{Event, FaultKind, Op, Script, SplitMix64};
pub use stream::FaultyStream;
