//! Fault schedules: the event vocabulary, the text format, and the
//! seed-driven generator. Every schedule is replayable — from its text, or
//! from the seed that generated it.

use std::fmt;

/// The operation classes the injector distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Read,
    Write,
    SetLen,
    Sync,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Write => "write",
            Op::SetLen => "setlen",
            Op::Sync => "sync",
        }
    }

    fn parse(s: &str) -> Result<Op, String> {
        Ok(match s {
            "read" => Op::Read,
            "write" => Op::Write,
            "setlen" => Op::SetLen,
            "sync" => Op::Sync,
            other => return Err(format!("unknown op '{other}'")),
        })
    }
}

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A read delivers only a prefix of the requested bytes.
    ShortRead,
    /// The operation fails with `EINTR` (transient; a retry succeeds).
    Interrupted,
    /// A write persists only a prefix, then fails — the on-storage image a
    /// crash mid-write leaves behind.
    TornWrite,
    /// The operation completes, but only after a delay.
    Delay { micros: u64 },
    /// The fault domain (stripe server) stops answering until `Up`.
    Down,
    /// The fault domain comes back.
    Up,
}

/// One scheduled event. `at_op` is the global operation count at which the
/// event *arms*; `Down`/`Up` apply immediately when armed, the other kinds
/// fire at the first subsequent operation matching `domain` and `op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub at_op: u64,
    /// Restrict to one fault domain (stripe server); `None` matches any.
    pub domain: Option<usize>,
    /// Restrict to one operation class; `None` matches any.
    pub op: Option<Op>,
    pub kind: FaultKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.at_op)?;
        if let Some(d) = self.domain {
            write!(f, " server={d}")?;
        }
        if let Some(op) = self.op {
            write!(f, " op={}", op.name())?;
        }
        match self.kind {
            FaultKind::ShortRead => write!(f, " short-read"),
            FaultKind::Interrupted => write!(f, " interrupt"),
            FaultKind::TornWrite => write!(f, " torn-write"),
            FaultKind::Delay { micros } => write!(f, " delay={micros}"),
            FaultKind::Down => write!(f, " down"),
            FaultKind::Up => write!(f, " up"),
        }
    }
}

/// A replayable fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    /// The seed the schedule was generated from (0 for hand-written
    /// scripts) — carried so logs can name the replay command.
    pub seed: u64,
    pub events: Vec<Event>,
}

impl Script {
    /// A schedule with no events (the injector still counts operations).
    pub fn empty() -> Script {
        Script::default()
    }

    /// Deterministically generate `n_events` events spread over the first
    /// ~`20 * n_events` operations of a run against `n_domains` fault
    /// domains. The same `(seed, n_events, n_domains)` always produces the
    /// same schedule, and every generated `Down` is paired with an `Up` a
    /// few operations later so runs always regain full service.
    pub fn from_seed(seed: u64, n_events: usize, n_domains: usize) -> Script {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::with_capacity(n_events);
        let mut at = 0u64;
        for _ in 0..n_events {
            at += 1 + rng.below(20);
            let domain = if n_domains > 0 && rng.below(2) == 0 {
                Some(rng.below(n_domains as u64) as usize)
            } else {
                None
            };
            match rng.below(5) {
                0 => events.push(Event {
                    at_op: at,
                    domain,
                    op: Some(Op::Read),
                    kind: FaultKind::ShortRead,
                }),
                1 => {
                    events.push(Event { at_op: at, domain, op: None, kind: FaultKind::Interrupted })
                }
                2 => events.push(Event {
                    at_op: at,
                    domain,
                    op: Some(Op::Write),
                    kind: FaultKind::TornWrite,
                }),
                3 => events.push(Event {
                    at_op: at,
                    domain,
                    op: None,
                    kind: FaultKind::Delay { micros: 50 + rng.below(200) },
                }),
                _ => {
                    let d = if n_domains > 0 { rng.below(n_domains as u64) as usize } else { 0 };
                    events.push(Event {
                        at_op: at,
                        domain: Some(d),
                        op: None,
                        kind: FaultKind::Down,
                    });
                    let up_at = at + 2 + rng.below(10);
                    events.push(Event {
                        at_op: up_at,
                        domain: Some(d),
                        op: None,
                        kind: FaultKind::Up,
                    });
                }
            }
        }
        events.sort_by_key(|e| e.at_op);
        Script { seed, events }
    }

    /// Parse the text format ([`Script::to_string`] round-trips through
    /// this). Blank lines and `#` comments are ignored.
    ///
    /// ```text
    /// @12 server=1 op=read short-read
    /// @30 op=write torn-write
    /// @45 server=0 down
    /// @60 server=0 up
    /// @70 interrupt
    /// @80 delay=250
    /// ```
    pub fn parse(text: &str) -> Result<Script, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut at_op = None;
            let mut domain = None;
            let mut op = None;
            let mut kind = None;
            for word in line.split_whitespace() {
                if let Some(n) = word.strip_prefix('@') {
                    at_op = Some(
                        n.parse::<u64>()
                            .map_err(|_| format!("line {}: bad op count '{word}'", lineno + 1))?,
                    );
                } else if let Some(n) = word.strip_prefix("server=") {
                    domain = Some(
                        n.parse::<usize>()
                            .map_err(|_| format!("line {}: bad server '{word}'", lineno + 1))?,
                    );
                } else if let Some(n) = word.strip_prefix("op=") {
                    op = Some(Op::parse(n).map_err(|e| format!("line {}: {e}", lineno + 1))?);
                } else if let Some(n) = word.strip_prefix("delay=") {
                    let micros = n
                        .parse::<u64>()
                        .map_err(|_| format!("line {}: bad delay '{word}'", lineno + 1))?;
                    kind = Some(FaultKind::Delay { micros });
                } else {
                    kind = Some(match word {
                        "short-read" => FaultKind::ShortRead,
                        "interrupt" => FaultKind::Interrupted,
                        "torn-write" => FaultKind::TornWrite,
                        "down" => FaultKind::Down,
                        "up" => FaultKind::Up,
                        other => {
                            return Err(format!("line {}: unknown fault '{other}'", lineno + 1))
                        }
                    });
                }
            }
            let at_op = at_op.ok_or_else(|| format!("line {}: missing @<op-count>", lineno + 1))?;
            let kind = kind.ok_or_else(|| format!("line {}: missing fault kind", lineno + 1))?;
            events.push(Event { at_op, domain, op, kind });
        }
        events.sort_by_key(|e| e.at_op);
        Ok(Script { seed: 0, events })
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# drx-fault script (seed {})", self.seed)?;
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// SplitMix64 — the standard tiny deterministic generator; good enough for
/// schedule generation and backoff jitter, and trivially reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_generation_is_deterministic() {
        let a = Script::from_seed(42, 8, 4);
        let b = Script::from_seed(42, 8, 4);
        assert_eq!(a, b);
        let c = Script::from_seed(43, 8, 4);
        assert_ne!(a, c);
        // Every Down has a later Up on the same domain.
        for e in a.events.iter().filter(|e| e.kind == FaultKind::Down) {
            assert!(a
                .events
                .iter()
                .any(|u| u.kind == FaultKind::Up && u.domain == e.domain && u.at_op > e.at_op));
        }
    }

    #[test]
    fn text_format_round_trips() {
        let script = Script::from_seed(7, 6, 2);
        let text = script.to_string();
        let back = Script::parse(&text).unwrap();
        assert_eq!(back.events, script.events);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Script::parse("@5 exploded").is_err());
        assert!(Script::parse("server=1 down").is_err());
        assert!(Script::parse("@5 server=x down").is_err());
        assert!(Script::parse("@5 op=frobnicate interrupt").is_err());
        assert!(Script::parse("@9 server=0").is_err());
        // Comments and blanks are fine.
        let s = Script::parse("# nothing\n\n@3 interrupt\n").unwrap();
        assert_eq!(s.events.len(), 1);
    }
}
