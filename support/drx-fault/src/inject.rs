//! The injector: a thread-safe state machine that turns a [`Script`] into
//! per-operation decisions, with a fired-event log for replay comparison.

use crate::script::{Event, FaultKind, Op, Script};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// What the wrapped operation should do. The storage adapter (in
/// `drx-pfs`) maps these onto its own typed errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Proceed normally.
    Pass,
    /// Fail with `EINTR` before touching storage (transient).
    Interrupt,
    /// The domain is unreachable; fail without touching storage.
    Unavailable,
    /// Deliver only the first `keep` bytes of the read, then fail
    /// (transient: the retry re-issues the full read).
    ShortRead { keep: usize },
    /// Persist only the first `keep` bytes of the write, then fail — the
    /// simulated crash point (not transient).
    TornWrite { keep: usize },
    /// Sleep `micros`, then proceed normally.
    Delay { micros: u64 },
}

struct State {
    /// Global operation counter (every `decide` call counts one).
    ops: u64,
    /// Script events not yet armed, sorted by `at_op` (indices into
    /// `events`).
    pending: Vec<usize>,
    /// Armed one-shot faults waiting for a matching operation.
    armed: Vec<usize>,
    /// Fault domains currently down.
    down: BTreeSet<usize>,
    /// Log of fired events as `(op_index, event)` for replay comparison.
    fired: Vec<(u64, Event)>,
}

/// Thread-safe fault decision point. One injector is shared by all fault
/// domains (stripe servers) of a file system, so `at_op` counts are global
/// across the run — matching how a fault script describes "the 40th
/// storage operation of this workload".
pub struct Injector {
    events: Vec<Event>,
    state: Mutex<State>,
}

impl Injector {
    pub fn new(script: Script) -> Injector {
        let events = script.events;
        let mut pending: Vec<usize> = (0..events.len()).collect();
        pending.sort_by_key(|&i| events[i].at_op);
        pending.reverse(); // pop() yields the earliest
        Injector {
            events,
            state: Mutex::new(State {
                ops: 0,
                pending,
                armed: Vec::new(),
                down: BTreeSet::new(),
                fired: Vec::new(),
            }),
        }
    }

    /// An injector that never faults (still counts operations).
    pub fn inert() -> Injector {
        Injector::new(Script::empty())
    }

    /// Operations decided so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether `domain` is currently down.
    pub fn is_down(&self, domain: usize) -> bool {
        self.lock().down.contains(&domain)
    }

    /// Force a domain down/up outside the script (test hook).
    pub fn set_down(&self, domain: usize, down: bool) {
        let mut st = self.lock();
        if down {
            st.down.insert(domain);
        } else {
            st.down.remove(&domain);
        }
    }

    /// The fired-event log: `(operation index, event)` pairs, in firing
    /// order. Two runs of the same workload under the same script produce
    /// identical logs — the replayability contract.
    pub fn fired(&self) -> Vec<(u64, Event)> {
        self.lock().fired.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned injector lock means a panic mid-decision; the state
        // is a counter + sets, all valid at every step, so continuing is
        // sound (and test asserts about fault behavior still run).
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Decide the fate of one operation of class `op` against `domain`,
    /// transferring `len` bytes. Counts the operation, arms/fires events,
    /// and applies down-domain state.
    pub fn decide(&self, domain: usize, op: Op, len: usize) -> Decision {
        let mut st = self.lock();
        let this_op = st.ops;
        st.ops += 1;

        // Arm every event whose op count has arrived; Down/Up apply
        // immediately (they are state transitions, not per-op faults).
        while let Some(&i) = st.pending.last() {
            if self.events[i].at_op > this_op {
                break;
            }
            st.pending.pop();
            let ev = self.events[i];
            match ev.kind {
                FaultKind::Down => {
                    if let Some(d) = ev.domain {
                        st.down.insert(d);
                        st.fired.push((this_op, ev));
                    }
                }
                FaultKind::Up => {
                    if let Some(d) = ev.domain {
                        st.down.remove(&d);
                        st.fired.push((this_op, ev));
                    }
                }
                _ => st.armed.push(i),
            }
        }

        // Down domains fail every operation until their Up event.
        if st.down.contains(&domain) {
            return Decision::Unavailable;
        }

        // Fire the first armed event matching this operation.
        let hit = st.armed.iter().position(|&i| {
            let e = &self.events[i];
            e.domain.is_none_or(|d| d == domain) && e.op.is_none_or(|o| o == op)
        });
        let Some(pos) = hit else { return Decision::Pass };
        let ev = self.events[st.armed.remove(pos)];
        st.fired.push((this_op, ev));
        match ev.kind {
            FaultKind::ShortRead => Decision::ShortRead { keep: len / 2 },
            FaultKind::Interrupted => Decision::Interrupt,
            FaultKind::TornWrite => Decision::TornWrite { keep: len / 2 },
            FaultKind::Delay { micros } => Decision::Delay { micros },
            // Down/Up never reach `armed`.
            FaultKind::Down | FaultKind::Up => Decision::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_op: u64, kind: FaultKind) -> Event {
        Event { at_op, domain: None, op: None, kind }
    }

    #[test]
    fn events_fire_at_their_op_counts() {
        let inj = Injector::new(Script { seed: 0, events: vec![ev(2, FaultKind::Interrupted)] });
        assert_eq!(inj.decide(0, Op::Read, 10), Decision::Pass);
        assert_eq!(inj.decide(0, Op::Read, 10), Decision::Pass);
        assert_eq!(inj.decide(0, Op::Read, 10), Decision::Interrupt);
        assert_eq!(inj.decide(0, Op::Read, 10), Decision::Pass);
        assert_eq!(inj.ops(), 4);
    }

    #[test]
    fn filters_defer_until_a_matching_op() {
        let mut e = ev(0, FaultKind::TornWrite);
        e.op = Some(Op::Write);
        let inj = Injector::new(Script { seed: 0, events: vec![e] });
        // Reads pass the armed write fault by.
        assert_eq!(inj.decide(0, Op::Read, 8), Decision::Pass);
        assert_eq!(inj.decide(0, Op::Write, 8), Decision::TornWrite { keep: 4 });
    }

    #[test]
    fn down_blankets_a_domain_until_up() {
        let mut down = ev(1, FaultKind::Down);
        down.domain = Some(1);
        let mut up = ev(3, FaultKind::Up);
        up.domain = Some(1);
        let inj = Injector::new(Script { seed: 0, events: vec![down, up] });
        assert_eq!(inj.decide(1, Op::Read, 4), Decision::Pass); // op 0
        assert_eq!(inj.decide(1, Op::Read, 4), Decision::Unavailable); // op 1: down
        assert_eq!(inj.decide(0, Op::Read, 4), Decision::Pass); // other domain fine
        assert!(inj.is_down(1));
        assert_eq!(inj.decide(1, Op::Read, 4), Decision::Pass); // op 3: up again
        assert!(!inj.is_down(1));
    }

    #[test]
    fn fired_log_is_replayable() {
        let script = Script::from_seed(99, 10, 3);
        let run = |script: Script| {
            let inj = Injector::new(script);
            for i in 0..400usize {
                let op = match i % 4 {
                    0 => Op::Read,
                    1 => Op::Write,
                    2 => Op::SetLen,
                    _ => Op::Sync,
                };
                let _: Decision = inj.decide(i % 3, op, 64);
            }
            inj.fired()
        };
        let a = run(script.clone());
        let b = run(script);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
