//! Value-generation strategies: the [`Strategy`] trait, its combinators,
//! and implementations for ranges, tuples, and boxed unions.

/// Deterministic SplitMix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a) so each test gets a stable stream.
    /// `PROPTEST_SEED` perturbs every stream at once for exploration.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h = h.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        TestRng { state: h }
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking; `generate` draws a fresh value from the RNG stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// Integer range strategies. Uniform-by-modulo: the bias is negligible for
// test-sized spans and irrelevant to property coverage.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128 as u64;
                let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
