//! Offline stand-in for the `proptest` crate (see `support/` — the build
//! environment has no crates.io access).
//!
//! Implements the API slice the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, `any::<T>()`,
//! `Just`, [`prop_oneof!`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! no shrinking (a failing case reports its values and seed instead), and
//! generation is deterministic per test name so CI failures reproduce.

pub mod strategy;

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome carrier for one generated case: assertion failures unwind to
    /// the runner as `Fail`, `prop_assume!` misses as `Reject`.
    #[derive(Debug)]
    pub enum CaseError {
        Fail(String),
        Reject,
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn generate_any(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate_any(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate_any(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn generate_any(rng: &mut TestRng) -> Self {
            // Finite, roughly symmetric values; NaN/inf generation is not
            // useful for these tests.
            (rng.next_f64() - 0.5) * 2e9
        }
    }

    impl Arbitrary for f32 {
        fn generate_any(rng: &mut TestRng) -> Self {
            f64::generate_any(rng) as f32
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate_any(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<u8>()`, `any::<bool>()`, …
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(strategy, len)` — a vector of generated
    /// elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod bool {
    use crate::strategy::{Strategy, TestRng};

    /// The `prop::bool::ANY` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each function runs `config.cases` times with
/// freshly generated inputs; generation is deterministic per test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::from_name(stringify!($name));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(32).max(1024),
                        "proptest {}: too many prop_assume! rejections",
                        stringify!($name),
                    );
                    let case_seed = rng.next_u64();
                    let mut case_rng = $crate::strategy::TestRng::from_seed(case_seed);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut case_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::CaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::CaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::CaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed (case {} of {}, seed {:#x}): {}",
                                stringify!($name), accepted + 1, config.cases, case_seed, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::CaseError::Reject);
        }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 0u64..5), f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_and_any(v in prop::collection::vec(any::<u8>(), 3..6), flag in prop::bool::ANY) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            let _ = flag;
        }

        #[test]
        fn maps_and_assume(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            let doubled = (0usize..50).prop_map(move |x| x * 2);
            let mut rng = crate::strategy::TestRng::from_seed(n as u64);
            prop_assert_eq!(Strategy::generate(&doubled, &mut rng) % 2, 0);
        }

        #[test]
        fn oneof_and_flat_map(
            choice in prop_oneof![1usize..2, 5usize..6],
            pair in (1usize..4).prop_flat_map(|k| prop::collection::vec(0usize..5, k)),
        ) {
            prop_assert!(choice == 1 || choice == 5);
            prop_assert!(!pair.is_empty() && pair.len() < 4);
        }

        #[test]
        fn inclusive_ranges(x in 3u8..=3) {
            prop_assert_eq!(x, 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::{Strategy, TestRng};
        let s = crate::collection::vec(0u64..1000, 4usize);
        let mut r1 = TestRng::from_name("fixed");
        let mut r2 = TestRng::from_name("fixed");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
