//! Offline stand-in for the `rand` crate (see `support/` — the build has no
//! crates.io access). Provides a deterministic SplitMix64-based generator
//! behind the subset of the rand 0.8 API this workspace uses: `RngCore`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, `Rng::gen_range` over
//! integer ranges, and `seq::SliceRandom::shuffle`.

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `[range.start, range.end)` (modulo method; the tiny
    /// bias is irrelevant for test workloads).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (Vigna 2015): full 64-bit period,
    /// passes BigCrush — more than enough for shuffles and test data.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
