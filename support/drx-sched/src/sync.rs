//! Drop-in `Mutex` / `Condvar` mirroring the `parking_lot` shim API.
//!
//! On a thread managed by an [`crate::exec`] explorer, acquisition and
//! condvar waits go through the virtual scheduling protocol; elsewhere
//! they are plain std synchronization (poison-transparent), so the whole
//! test binary can link this crate while only explorer-driven tests pay
//! for it.

use crate::exec::{self, ExecShared};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Identity for the virtual ownership table: the object address.
    fn id(&self) -> usize {
        self as *const Mutex<T> as usize
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let ctx = exec::current();
        if let Some((ex, tid)) = &ctx {
            ex.acquire_mutex(self.id(), *tid);
        }
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { mx: self, inner: Some(g), ctx }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Option<(Arc<ExecShared>, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().unwrap_or_else(|| unreachable_guard())
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().unwrap_or_else(|| unreachable_guard())
    }
}

/// The real guard is absent only transiently inside `Condvar::wait`,
/// where no user deref can occur; reaching this is a drx-sched bug.
fn unreachable_guard() -> ! {
    unreachable!("drx-sched guard dereferenced without its std guard")
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the virtual one so the next owner
        // can take the std mutex without contention.
        self.inner = None;
        if let Some((ex, tid)) = &self.ctx {
            ex.release_mutex(self.mx.id(), *tid);
        }
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn id(&self) -> usize {
        self as *const Condvar as usize
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match guard.ctx.clone() {
            Some((ex, tid)) => {
                let mid = guard.mx.id();
                // Drop the real guard first; the executor then atomically
                // registers the wait and releases the virtual mutex — no
                // other thread runs in between, so no wakeup is lost.
                guard.inner = None;
                ex.cond_wait(self.id(), mid, tid);
                guard.inner = Some(guard.mx.inner.lock().unwrap_or_else(|e| e.into_inner()));
            }
            None => {
                if let Some(g) = guard.inner.take() {
                    guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
                }
            }
        }
    }

    pub fn notify_all(&self) {
        if let Some((ex, _)) = exec::current() {
            ex.notify_virtual(self.id(), true);
        }
        self.inner.notify_all();
    }

    pub fn notify_one(&self) {
        if let Some((ex, _)) = exec::current() {
            ex.notify_virtual(self.id(), false);
        }
        self.inner.notify_one();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
