//! The cooperative executor and DFS schedule enumeration.
//!
//! One OS thread is spawned per logical thread, but the controller grants
//! `Running` to exactly one at a time; everyone else parks on a shared
//! condvar. A thread gives control back at each *yield point* (mutex
//! acquisition, condvar wait) or when it finishes. The controller records
//! `(chosen, alternatives)` at every decision; depth-first search replays
//! a decision prefix and bumps the deepest incrementable choice to visit
//! the next schedule. Identical prefixes replay identically because the
//! scheduler fully serializes execution.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to unwind parked threads when a run is torn down
/// (deadlock detected or depth cap hit). Never surfaced to the user.
const ABORT_SENTINEL: &str = "drx-sched abort";

/// One observable event in a run's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The controller granted the slice to this thread.
    Schedule(usize),
    /// A thread passed [`probe`] with this label.
    Probe(usize, &'static str),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Running,
    BlockedMutex(usize),
    BlockedCond(usize),
    Finished,
}

struct ExecInner {
    statuses: Vec<Status>,
    /// Virtual mutex ownership: mutex id (object address) → tid.
    owners: HashMap<usize, usize>,
    trace: Vec<Event>,
    panic_msg: Option<String>,
}

/// Shared state between the controller and the managed threads.
pub(crate) struct ExecShared {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
    abort: AtomicBool,
}

impl ExecShared {
    fn new(n: usize) -> ExecShared {
        ExecShared {
            inner: StdMutex::new(ExecInner {
                statuses: vec![Status::Ready; n],
                owners: HashMap::new(),
                trace: Vec::new(),
                panic_msg: None,
            }),
            cv: StdCondvar::new(),
            abort: AtomicBool::new(false),
        }
    }

    fn lock_inner(&self) -> StdMutexGuard<'_, ExecInner> {
        // Poisoning is expected during abort teardown; the state stays
        // coherent because every mutation is a complete transition.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn aborting(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Unwind this thread out of the run. Must not be called while the
    /// thread is already panicking (that would abort the process).
    fn bail(&self) -> ! {
        std::panic::panic_any(ABORT_SENTINEL)
    }

    /// Abort-aware exit from a parked state: plain return while already
    /// unwinding (so guard Drops stay panic-free), sentinel otherwise.
    fn bail_or_return(&self) -> bool {
        if std::thread::panicking() {
            return true; // caller degrades to direct std behavior
        }
        self.bail()
    }

    /// Park until granted `Running`. Returns false if the run aborted.
    fn wait_for_running(&self, tid: usize) -> bool {
        let mut g = self.lock_inner();
        loop {
            if self.aborting() {
                return false;
            }
            if g.statuses[tid] == Status::Running {
                return true;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Scheduling decision point: hand the slice back and park.
    pub(crate) fn yield_point(&self, tid: usize) {
        if self.aborting() {
            self.bail_or_return();
            return;
        }
        {
            let mut g = self.lock_inner();
            g.statuses[tid] = Status::Ready;
            self.cv.notify_all();
        }
        if !self.wait_for_running(tid) {
            self.bail_or_return();
        }
    }

    /// Virtually acquire mutex `id`, blocking (and re-yielding) while it
    /// is owned. The yield before the attempt is the decision point.
    pub(crate) fn acquire_mutex(&self, id: usize, tid: usize) {
        self.yield_point(tid);
        loop {
            if self.aborting() {
                self.bail_or_return();
                return;
            }
            {
                let mut g = self.lock_inner();
                if let Entry::Vacant(e) = g.owners.entry(id) {
                    e.insert(tid);
                    return;
                }
                g.statuses[tid] = Status::BlockedMutex(id);
                self.cv.notify_all();
            }
            if !self.wait_for_running(tid) {
                self.bail_or_return();
                return;
            }
        }
    }

    pub(crate) fn release_mutex(&self, id: usize, tid: usize) {
        let mut g = self.lock_inner();
        if g.owners.get(&id) == Some(&tid) {
            g.owners.remove(&id);
        }
        for s in g.statuses.iter_mut() {
            if *s == Status::BlockedMutex(id) {
                *s = Status::Ready;
            }
        }
        self.cv.notify_all();
    }

    /// Virtual `Condvar::wait`: register as blocked and release the mutex
    /// in one step under the executor lock (the current thread is the only
    /// one running, so no wakeup can be lost), park until notified, then
    /// re-acquire the mutex.
    pub(crate) fn cond_wait(&self, cv_id: usize, mutex_id: usize, tid: usize) {
        if self.aborting() {
            self.bail_or_return();
            return;
        }
        {
            let mut g = self.lock_inner();
            g.statuses[tid] = Status::BlockedCond(cv_id);
            if g.owners.get(&mutex_id) == Some(&tid) {
                g.owners.remove(&mutex_id);
            }
            for s in g.statuses.iter_mut() {
                if *s == Status::BlockedMutex(mutex_id) {
                    *s = Status::Ready;
                }
            }
            self.cv.notify_all();
        }
        if !self.wait_for_running(tid) {
            self.bail_or_return();
            return;
        }
        loop {
            if self.aborting() {
                self.bail_or_return();
                return;
            }
            {
                let mut g = self.lock_inner();
                if let Entry::Vacant(e) = g.owners.entry(mutex_id) {
                    e.insert(tid);
                    return;
                }
                g.statuses[tid] = Status::BlockedMutex(mutex_id);
                self.cv.notify_all();
            }
            if !self.wait_for_running(tid) {
                self.bail_or_return();
                return;
            }
        }
    }

    /// Wake every virtual waiter of condvar `cv_id` (non-yielding).
    pub(crate) fn notify_virtual(&self, cv_id: usize, all: bool) {
        let mut g = self.lock_inner();
        for s in g.statuses.iter_mut() {
            if *s == Status::BlockedCond(cv_id) {
                *s = Status::Ready;
                if !all {
                    break;
                }
            }
        }
        self.cv.notify_all();
    }

    fn push_probe(&self, tid: usize, label: &'static str) {
        self.lock_inner().trace.push(Event::Probe(tid, label));
    }
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<ExecShared>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Option<(Arc<ExecShared>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<ExecShared>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

/// Record a labeled event in the current run's trace. A no-op (and free
/// of any locking) on threads not managed by an explorer.
pub fn probe(label: &'static str) {
    if let Some((exec, tid)) = current() {
        if !exec.aborting() {
            exec.push_probe(tid, label);
        }
    }
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Stop after this many runs (sets `Stats::truncated`).
    pub max_runs: usize,
    /// Per-run scheduling-decision cap; deeper runs are aborted.
    pub max_depth: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options { max_runs: 50_000, max_depth: 128 }
    }
}

/// Aggregate results of an exploration.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    pub runs: usize,
    /// Runs where every thread finished.
    pub complete: usize,
    /// Runs that ended with all unfinished threads blocked.
    pub deadlocks: usize,
    /// True if `max_runs` or `max_depth` cut the search short.
    pub truncated: bool,
}

/// What one run observed.
#[derive(Debug)]
pub struct RunTrace {
    /// Schedule grants and probes, in execution order.
    pub events: Vec<Event>,
    pub deadlock: bool,
    /// First non-sentinel panic message from any thread, if one panicked.
    pub panic: Option<String>,
    /// The tid granted at each decision, for printing schedules.
    pub schedule: Vec<usize>,
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

struct RunOutcome {
    decisions: Vec<(usize, usize)>,
    trace: RunTrace,
    depth_exceeded: bool,
}

fn run_once(
    threads: Vec<Box<dyn FnOnce() + Send + 'static>>,
    prefix: &[usize],
    max_depth: usize,
) -> RunOutcome {
    let shared = Arc::new(ExecShared::new(threads.len()));
    let mut handles = Vec::new();
    for (tid, f) in threads.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            set_current(Some((Arc::clone(&sh), tid)));
            let granted = sh.wait_for_running(tid);
            let result = if granted { catch_unwind(AssertUnwindSafe(f)) } else { Ok(()) };
            {
                let mut g = sh.lock_inner();
                g.statuses[tid] = Status::Finished;
                if let Err(p) = result {
                    let msg = panic_message(p.as_ref());
                    if msg != ABORT_SENTINEL && g.panic_msg.is_none() {
                        g.panic_msg = Some(msg);
                    }
                }
                sh.cv.notify_all();
            }
            set_current(None);
        }));
    }

    let mut decisions: Vec<(usize, usize)> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut deadlock = false;
    let mut depth_exceeded = false;
    loop {
        let mut g = shared.lock_inner();
        while g.statuses.contains(&Status::Running) {
            g = shared.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.statuses.iter().all(|s| *s == Status::Finished) {
            break;
        }
        let runnable: Vec<usize> = g
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            deadlock = true;
        } else if decisions.len() >= max_depth {
            depth_exceeded = true;
        } else {
            let choice = prefix.get(decisions.len()).copied().unwrap_or(0).min(runnable.len() - 1);
            decisions.push((choice, runnable.len()));
            let tid = runnable[choice];
            g.statuses[tid] = Status::Running;
            g.trace.push(Event::Schedule(tid));
            schedule.push(tid);
            shared.cv.notify_all();
            drop(g);
            continue;
        }
        // Tear the run down: wake every parked thread into the sentinel.
        drop(g);
        shared.abort.store(true, Ordering::SeqCst);
        let _g = shared.lock_inner();
        shared.cv.notify_all();
        break;
    }
    for h in handles {
        let _ = h.join();
    }
    let inner = shared.lock_inner();
    RunOutcome {
        decisions,
        trace: RunTrace {
            events: inner.trace.clone(),
            deadlock,
            panic: inner.panic_msg.clone(),
            schedule,
        },
        depth_exceeded,
    }
}

/// Enumerate every schedule of the threads produced by `mk`, invoking
/// `on_run` with each run's trace. `mk` is called once per run and must
/// build fresh state; determinism requires the closures to branch only on
/// that state.
pub fn explore<F>(opts: Options, mk: F, mut on_run: impl FnMut(&RunTrace)) -> Stats
where
    F: Fn() -> Vec<Box<dyn FnOnce() + Send + 'static>>,
{
    let mut stats = Stats::default();
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        if stats.runs >= opts.max_runs {
            stats.truncated = true;
            break;
        }
        let outcome = run_once(mk(), &prefix, opts.max_depth);
        stats.runs += 1;
        if outcome.depth_exceeded {
            stats.truncated = true;
        } else if outcome.trace.deadlock {
            stats.deadlocks += 1;
        } else {
            stats.complete += 1;
        }
        on_run(&outcome.trace);
        let mut next = None;
        for i in (0..outcome.decisions.len()).rev() {
            let (chosen, alts) = outcome.decisions[i];
            if chosen + 1 < alts {
                let mut p: Vec<usize> = outcome.decisions[..i].iter().map(|d| d.0).collect();
                p.push(chosen + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
    stats
}
