//! drx-sched — a deterministic schedule explorer for the DRX locking
//! layer, in the spirit of `loom` but vendored and dependency-free.
//!
//! Test code hands [`explore`] a factory of thread closures. The explorer
//! runs them under a cooperative scheduler: exactly one thread executes at
//! a time, every [`sync::Mutex`] acquisition is a scheduling decision
//! point, and depth-first search over the decision tree enumerates every
//! bounded interleaving. Deadlocks (all unfinished threads blocked) are
//! detected and reported per run rather than hanging the test.
//!
//! [`sync::Mutex`] and [`sync::Condvar`] mirror the `parking_lot` shim
//! API. On threads not managed by an explorer they degrade to plain std
//! behavior, so a crate can link them unconditionally and only the
//! `--cfg drx_sched` test binaries pay for virtualization.
//!
//! The explorer relies on the workspace lock-order DAG (DESIGN.md §9):
//! locks *outside* the instrumented set must be leaves — never held
//! across an instrumented acquisition — or a parked thread could hold a
//! real lock and stall a running one.

pub mod exec;
pub mod sync;

pub use exec::{explore, probe, Event, Options, RunTrace, Stats};
