//! Explorer self-tests: exhaustive enumeration on a known-size case,
//! mutual exclusion under the virtual mutex, and detection of a seeded
//! AB-BA deadlock.

use drx_sched::sync::Mutex;
use drx_sched::{explore, probe, Event, Options};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Two lock-free threads, one probe each: exactly two schedules exist and
/// both must be visited.
#[test]
fn exhaustive_two_thread_orders() {
    let mut orders: BTreeSet<Vec<usize>> = BTreeSet::new();
    let stats = explore(
        Options::default(),
        || {
            vec![
                Box::new(|| probe("a")) as Box<dyn FnOnce() + Send>,
                Box::new(|| probe("b")) as Box<dyn FnOnce() + Send>,
            ]
        },
        |trace| {
            assert!(trace.panic.is_none(), "panic: {:?}", trace.panic);
            assert!(!trace.deadlock);
            let probes: Vec<usize> = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Probe(tid, _) => Some(*tid),
                    Event::Schedule(_) => None,
                })
                .collect();
            orders.insert(probes);
        },
    );
    assert_eq!(stats.runs, 2, "{stats:?}");
    assert_eq!(stats.complete, 2, "{stats:?}");
    assert_eq!(stats.deadlocks, 0, "{stats:?}");
    assert!(!stats.truncated);
    assert_eq!(orders.len(), 2, "both probe orders must be observed: {orders:?}");
}

/// Critical sections guarded by one mutex never interleave, across every
/// schedule.
#[test]
fn mutex_provides_mutual_exclusion() {
    let stats = explore(
        Options::default(),
        || {
            let m = Arc::new(Mutex::new(0u32));
            (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    Box::new(move || {
                        for _ in 0..2 {
                            let mut g = m.lock();
                            probe("enter");
                            *g += 1;
                            probe("exit");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect()
        },
        |trace| {
            assert!(trace.panic.is_none(), "panic: {:?}", trace.panic);
            assert!(!trace.deadlock, "schedule {:?} deadlocked", trace.schedule);
            let mut inside: Option<usize> = None;
            for e in &trace.events {
                match e {
                    Event::Probe(tid, "enter") => {
                        assert!(
                            inside.is_none(),
                            "thread {tid} entered while {inside:?} held the lock"
                        );
                        inside = Some(*tid);
                    }
                    Event::Probe(tid, "exit") => {
                        assert_eq!(inside, Some(*tid));
                        inside = None;
                    }
                    _ => {}
                }
            }
        },
    );
    assert!(stats.runs > 1, "{stats:?}");
    assert_eq!(stats.complete, stats.runs, "{stats:?}");
    assert!(!stats.truncated);
}

/// Classic AB-BA ordering violation: the explorer must find at least one
/// deadlocking schedule and at least one completing schedule.
#[test]
fn abba_deadlock_is_detected() {
    let stats = explore(
        Options::default(),
        || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            vec![
                Box::new(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                }) as Box<dyn FnOnce() + Send>,
                Box::new(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                }) as Box<dyn FnOnce() + Send>,
            ]
        },
        |_| {},
    );
    assert!(stats.deadlocks >= 1, "AB-BA must deadlock somewhere: {stats:?}");
    assert!(stats.complete >= 1, "AB-BA also has safe schedules: {stats:?}");
    assert_eq!(stats.complete + stats.deadlocks, stats.runs);
    assert!(!stats.truncated);
}

/// A condvar handoff: the waiter must always observe the flag set by the
/// notifier, in every schedule, with no lost wakeups.
#[test]
fn condvar_handoff_completes() {
    use drx_sched::sync::Condvar;
    struct Cell {
        m: Mutex<bool>,
        cv: Condvar,
    }
    let stats = explore(
        Options::default(),
        || {
            let c = Arc::new(Cell { m: Mutex::new(false), cv: Condvar::new() });
            let c2 = Arc::clone(&c);
            vec![
                Box::new(move || {
                    let mut g = c.m.lock();
                    while !*g {
                        c.cv.wait(&mut g);
                    }
                    probe("observed");
                }) as Box<dyn FnOnce() + Send>,
                Box::new(move || {
                    let mut g = c2.m.lock();
                    *g = true;
                    drop(g);
                    c2.cv.notify_all();
                }) as Box<dyn FnOnce() + Send>,
            ]
        },
        |trace| {
            assert!(trace.panic.is_none(), "panic: {:?}", trace.panic);
            assert!(!trace.deadlock, "lost wakeup in schedule {:?}", trace.schedule);
            assert!(
                trace.events.contains(&Event::Probe(0, "observed")),
                "waiter never observed the flag"
            );
        },
    );
    assert!(stats.runs >= 2, "{stats:?}");
    assert_eq!(stats.complete, stats.runs, "{stats:?}");
}
