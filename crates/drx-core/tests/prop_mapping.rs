//! Property tests for the extendible mapping function `F*` and its inverse.
//!
//! These check the paper's structural claims over *arbitrary* growth
//! histories, not just the worked examples:
//! 1. `F*` is a bijection from the chunk-index space onto `0..total`;
//! 2. `F*⁻¹(F*(I)) = I` for every valid index;
//! 3. extension never changes the address of an existing chunk;
//! 4. metadata encode/decode round-trips exactly.

use drx_core::{ArrayMeta, DType, ExtendibleShape, Region, RunCursor};
use proptest::prelude::*;

/// A random growth history: initial bounds plus a sequence of extensions,
/// sized so the final array stays small enough to enumerate.
fn history_strategy(max_rank: usize) -> impl Strategy<Value = (Vec<usize>, Vec<(usize, usize)>)> {
    (1..=max_rank).prop_flat_map(|k| {
        let initial = prop::collection::vec(1usize..4, k);
        let exts = prop::collection::vec((0..k, 1usize..4), 0..8);
        (initial, exts)
    })
}

fn build(initial: &[usize], exts: &[(usize, usize)]) -> ExtendibleShape {
    let mut s = ExtendibleShape::new(initial).unwrap();
    for &(d, b) in exts {
        s.extend(d, b).unwrap();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fstar_is_a_bijection((initial, exts) in history_strategy(4)) {
        let s = build(&initial, &exts);
        let total = s.total_chunks();
        prop_assume!(total <= 4096);
        let mut seen = vec![false; total as usize];
        for idx in s.full_region().iter() {
            let a = s.address(&idx).unwrap();
            prop_assert!(a < total, "address {a} out of range {total}");
            prop_assert!(!seen[a as usize], "duplicate address {a}");
            seen[a as usize] = true;
        }
        prop_assert!(seen.iter().all(|&b| b), "address space has holes");
    }

    #[test]
    fn inverse_round_trips((initial, exts) in history_strategy(4)) {
        let s = build(&initial, &exts);
        prop_assume!(s.total_chunks() <= 4096);
        for a in 0..s.total_chunks() {
            let idx = s.index_of(a).unwrap();
            prop_assert_eq!(s.address(&idx).unwrap(), a);
        }
    }

    #[test]
    fn extension_is_address_stable((initial, exts) in history_strategy(4), extra in (0usize..4, 1usize..4)) {
        let mut s = build(&initial, &exts);
        prop_assume!(s.total_chunks() <= 2048);
        let dim = extra.0 % s.rank();
        let before: Vec<(Vec<usize>, u64)> = s
            .full_region()
            .iter()
            .map(|i| { let a = s.address(&i).unwrap(); (i, a) })
            .collect();
        s.extend(dim, extra.1).unwrap();
        for (idx, addr) in before {
            prop_assert_eq!(s.address(&idx).unwrap(), addr, "chunk {:?} moved", idx);
        }
    }

    #[test]
    fn record_count_bounded_by_extension_count((initial, exts) in history_strategy(4)) {
        let s = build(&initial, &exts);
        // One initial record plus at most one per extension call; merging can
        // only reduce the count ("the number of records in each axial-vector
        // is … exactly the number of uninterrupted expansions").
        prop_assert!(s.record_count() <= 1 + exts.len());
        // Exact count: runs of equal dimensions collapse.
        let mut runs = 0;
        let mut prev: Option<usize> = None;
        for &(d, _) in &exts {
            if prev != Some(d) {
                runs += 1;
            }
            prev = Some(d);
        }
        prop_assert_eq!(s.record_count(), 1 + runs);
    }

    #[test]
    fn both_inverse_algorithms_agree((initial, exts) in history_strategy(4)) {
        let s = build(&initial, &exts);
        prop_assume!(s.total_chunks() <= 2048);
        for a in 0..s.total_chunks() {
            prop_assert_eq!(s.index_of(a).unwrap(), s.index_of_searches(a).unwrap());
        }
    }

    #[test]
    fn unmerged_history_is_address_equivalent((initial, exts) in history_strategy(3)) {
        let mut merged = ExtendibleShape::new(&initial).unwrap();
        let mut unmerged = ExtendibleShape::new(&initial).unwrap();
        for &(d, b) in &exts {
            merged.extend(d, b).unwrap();
            unmerged.extend_unmerged(d, b).unwrap();
        }
        prop_assume!(merged.total_chunks() <= 2048);
        prop_assert!(unmerged.record_count() >= merged.record_count());
        for idx in merged.full_region().iter() {
            prop_assert_eq!(merged.address(&idx).unwrap(), unmerged.address(&idx).unwrap());
        }
    }

    #[test]
    fn meta_codec_round_trips(
        (initial, exts) in history_strategy(3),
        chunk in prop::collection::vec(1usize..4, 3),
    ) {
        let k = initial.len();
        let chunk_shape = &chunk[..k];
        let mut m = ArrayMeta::new(DType::Float64, chunk_shape, &initial).unwrap();
        for &(d, b) in &exts {
            m.extend(d, b).unwrap();
        }
        let bytes = m.encode();
        let back = ArrayMeta::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &m);
        // Every element locates identically after the round trip.
        prop_assume!(m.element_count() <= 4096);
        for idx in m.element_region().iter() {
            prop_assert_eq!(m.locate_element(&idx).unwrap(), back.locate_element(&idx).unwrap());
        }
    }

    #[test]
    fn truncated_meta_never_panics((initial, exts) in history_strategy(3), cut_frac in 0.0f64..1.0) {
        let mut m = ArrayMeta::new(DType::Int32, &vec![2; initial.len()], &initial).unwrap();
        for &(d, b) in &exts {
            m.extend(d, b).unwrap();
        }
        let bytes = m.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(ArrayMeta::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn region_runs_flatten_to_region_addresses(
        (initial, exts) in history_strategy(4),
        seeds in prop::collection::vec(0usize..1 << 20, 8),
    ) {
        let s = build(&initial, &exts);
        prop_assume!(s.total_chunks() <= 4096);
        // A random sub-region derived from the seeds (full region when the
        // seeds happen to land on the bounds).
        let k = s.rank();
        let mut lo = Vec::with_capacity(k);
        let mut hi = Vec::with_capacity(k);
        for j in 0..k {
            let b = s.bounds()[j];
            let a = seeds[2 * j % seeds.len()] % (b + 1);
            let c = seeds[(2 * j + 1) % seeds.len()] % (b + 1);
            lo.push(a.min(c));
            hi.push(a.max(c));
        }
        let region = Region::new(lo, hi).unwrap();
        let runs = s.region_runs(&region).unwrap();
        let flat: Vec<(Vec<usize>, u64)> = runs
            .iter()
            .flat_map(|r| (0..r.len).map(move |t| (r.index_at(t), r.addr_at(t))))
            .collect();
        prop_assert_eq!(flat, s.region_addresses(&region).unwrap());
        // Runs partition the region: lengths sum to the region volume.
        let total: usize = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total as u64, region.volume());
    }

    #[test]
    fn run_cursor_agrees_with_index_of(
        (initial, exts) in history_strategy(4),
        start_frac in 0.0f64..1.0,
    ) {
        let s = build(&initial, &exts);
        prop_assume!(s.total_chunks() <= 4096);
        let mut cur = RunCursor::new(&s);
        for a in 0..s.total_chunks() {
            prop_assert_eq!(cur.next_index().unwrap(), &s.index_of(a).unwrap()[..]);
        }
        prop_assert!(cur.next_index().is_none());
        // Starting mid-stream agrees too.
        let start = ((s.total_chunks() as f64) * start_frac) as u64;
        let mut cur = RunCursor::starting_at(&s, start);
        for a in start..s.total_chunks() {
            prop_assert_eq!(cur.next_index().unwrap(), &s.index_of(a).unwrap()[..]);
        }
        prop_assert!(cur.next_index().is_none());
    }

    #[test]
    fn element_locations_are_injective((initial, exts) in history_strategy(3)) {
        let mut m = ArrayMeta::new(DType::Int32, &vec![2; initial.len()], &initial).unwrap();
        for &(d, b) in &exts {
            m.extend(d, b).unwrap();
        }
        prop_assume!(m.element_count() <= 2048);
        let mut seen = std::collections::HashSet::new();
        for idx in m.element_region().iter() {
            let loc = m.locate_element(&idx).unwrap();
            prop_assert!(seen.insert(loc), "two elements share location {:?}", loc);
        }
    }
}
