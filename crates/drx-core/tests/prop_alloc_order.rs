//! Property tests for the Figure-2 allocation schemes and the memory-layout
//! (relayout/scatter/gather) machinery.

use drx_core::alloc::{Morton2, MortonK, SymmetricShell2};
use drx_core::order::{gather_from, relayout, scatter_into};
use drx_core::{Layout, Region};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Morton encode/decode round-trips and preserves order within
    /// power-of-two squares.
    #[test]
    fn morton2_round_trip(i in 0u64..100_000, j in 0u64..100_000) {
        let c = Morton2::encode(i, j).unwrap();
        prop_assert_eq!(Morton2::decode(c), (i, j));
    }

    /// Morton codes of an n×n power-of-two square fill 0..n² exactly.
    #[test]
    fn morton2_dense_on_pow2(exp in 0u32..5) {
        let n = 1u64 << exp;
        let mut seen = vec![false; (n * n) as usize];
        for i in 0..n {
            for j in 0..n {
                let c = Morton2::encode(i, j).unwrap() as usize;
                prop_assert!(!seen[c]);
                seen[c] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// The symmetric shell order is a bijection on any n×n square and
    /// assigns shell k the addresses k²..(k+1)².
    #[test]
    fn shell_bijective_and_shelled(n in 1u64..40) {
        let mut seen = vec![false; (n * n) as usize];
        for i in 0..n {
            for j in 0..n {
                let a = SymmetricShell2::encode(i, j);
                let k = i.max(j);
                prop_assert!(a >= k * k && a < (k + 1) * (k + 1), "({i},{j})→{a} not in shell {k}");
                prop_assert!(!seen[a as usize]);
                seen[a as usize] = true;
                prop_assert_eq!(SymmetricShell2::decode(a), (i, j));
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// k-D Morton round-trips for any rank/bits combination that fits.
    #[test]
    fn morton_k_round_trip(
        k in 1usize..6,
        seeds in prop::collection::vec(0u64..u64::MAX, 6),
    ) {
        let bits = (63 / k).min(16) as u32;
        let m = MortonK::new(k, bits).unwrap();
        let idx: Vec<usize> =
            (0..k).map(|d| (seeds[d] % (1u64 << bits)) as usize).collect();
        let c = m.encode(&idx).unwrap();
        prop_assert_eq!(m.decode(c), idx);
    }

    /// relayout C→Fortran→C is the identity, for any shape.
    #[test]
    fn relayout_round_trips(shape in prop::collection::vec(1usize..6, 1..5)) {
        let n: usize = shape.iter().product();
        let src: Vec<u32> = (0..n as u32).collect();
        let f = relayout(&src, &shape, Layout::C, Layout::Fortran).unwrap();
        let back = relayout(&f, &shape, Layout::Fortran, Layout::C).unwrap();
        prop_assert_eq!(back, src.clone());
        // Fortran relayout of a C buffer equals reversing the shape and
        // keeping C order of the reversed logical array: spot-check the
        // corner elements, which are layout-invariant.
        prop_assert_eq!(f[0], src[0]);
        prop_assert_eq!(f[n - 1], src[n - 1]);
    }

    /// scatter followed by gather returns the stored value, in either
    /// layout, at any in-region index.
    #[test]
    fn scatter_gather_round_trip(
        lo in prop::collection::vec(0usize..5, 2),
        ext in prop::collection::vec(1usize..5, 2),
        pick in prop::collection::vec(0.0f64..1.0, 2),
        value in any::<i64>(),
    ) {
        let hi: Vec<usize> = lo.iter().zip(&ext).map(|(&l, &e)| l + e).collect();
        let region = Region::new(lo.clone(), hi).unwrap();
        let idx: Vec<usize> = lo
            .iter()
            .zip(&ext)
            .zip(&pick)
            .map(|((&l, &e), &p)| l + ((p * e as f64) as usize).min(e - 1))
            .collect();
        for layout in [Layout::C, Layout::Fortran] {
            let mut buf = vec![0i64; region.volume() as usize];
            scatter_into(&mut buf, &region, layout, &idx, value).unwrap();
            prop_assert_eq!(gather_from(&buf, &region, layout, &idx).unwrap(), value);
        }
    }

    /// The in-memory extendible array equals a dense reference under random
    /// fill + extend + region-write scripts.
    #[test]
    fn extendible_array_matches_dense_model(
        chunk in prop::collection::vec(1usize..4, 2),
        initial in prop::collection::vec(1usize..5, 2),
        exts in prop::collection::vec((0usize..2, 1usize..4), 0..4),
    ) {
        use drx_core::ExtendibleArray;
        let mut arr: ExtendibleArray<i64> = ExtendibleArray::new(&chunk, &initial).unwrap();
        let mut bounds = initial.clone();
        let mut model = std::collections::HashMap::<Vec<usize>, i64>::new();
        let mut stamp = 0i64;
        for idx in Region::of_shape(&bounds).unwrap().iter() {
            stamp += 1;
            arr.set(&idx, stamp).unwrap();
            model.insert(idx, stamp);
        }
        for &(dim, by) in &exts {
            arr.extend(dim, by).unwrap();
            bounds[dim] += by;
            // Touch one new cell.
            let mut idx: Vec<usize> = bounds.iter().map(|&b| b - 1).collect();
            idx[dim] = bounds[dim] - 1;
            stamp += 1;
            arr.set(&idx, stamp).unwrap();
            model.insert(idx, stamp);
        }
        prop_assume!(Region::of_shape(&bounds).unwrap().volume() <= 2048);
        for idx in Region::of_shape(&bounds).unwrap().iter() {
            let expect = model.get(&idx).copied().unwrap_or(0);
            prop_assert_eq!(arr.get(&idx).unwrap(), expect, "at {:?}", idx);
        }
    }
}
