//! # drx-core — dense extendible array mapping machinery
//!
//! Pure index arithmetic for **out-of-core dense extendible arrays**, after
//! Otoo & Rotem, *"Parallel Access of Out-Of-Core Dense Extendible Arrays"*
//! (IEEE CLUSTER 2007).
//!
//! A dense k-dimensional array is stored as fixed-shape **chunks**. Chunk
//! indices are mapped to linear file addresses by the computed-access
//! function **`F*`** ([`ExtendibleShape::address`]) backed by per-dimension
//! **axial vectors** that record the array's growth history. The array can be
//! extended along *any* dimension by appending a segment of chunks — existing
//! chunks never move, and no index structure (B-tree etc.) is needed. The
//! inverse function **`F*⁻¹`** ([`ExtendibleShape::index_of`]) recovers a
//! chunk index from a linear address in `O(k + log E)`.
//!
//! This crate has no I/O and no concurrency; it is the metadata and address
//! arithmetic that the storage (`drx-pfs`), runtime (`drx-msg`) and library
//! (`drx-mp`) crates build on.
//!
//! ## Quick example
//!
//! ```
//! use drx_core::{ArrayMeta, DType};
//!
//! // Figure 1 of the paper: A[10][12] stored in 2×3 chunks.
//! let mut meta = ArrayMeta::new(DType::Float64, &[2, 3], &[10, 12]).unwrap();
//! // Element ⟨9,7⟩ lives in chunk [4,2]; the paper computes F*(4,2) = 18
//! // for the row-major initial allocation of the 5×4 chunk grid.
//! let (chunk_addr, within) = meta.locate_element(&[9, 7]).unwrap();
//! assert_eq!(chunk_addr, 18);
//! assert_eq!(within, 4);
//! // Extend dimension 1 by 6 elements (two more chunk columns) — existing
//! // chunk addresses are unchanged.
//! meta.extend(1, 6).unwrap();
//! assert_eq!(meta.locate_element(&[9, 7]).unwrap().0, 18);
//! ```

pub mod alloc;
pub mod array;
pub mod axial;
pub mod chunk;
pub mod dtype;
pub mod error;
pub mod index;
pub mod mapping;
pub mod meta;
pub mod order;
pub mod plan;

pub use array::ExtendibleArray;
pub use axial::{AxialRecord, AxialVector};
pub use chunk::Chunking;
pub use dtype::{Complex64, DType, Element};
pub use error::{DrxError, Result, MAX_RANK};
pub use index::Region;
pub use mapping::{ExtendibleShape, SegmentRef};
pub use meta::{ArrayMeta, ExtendOutcome, InitialLayout};
pub use order::Layout;
pub use plan::{sorted_run_entries, ChunkRun, RunCursor};
