//! Error type shared by all DRX crates that depend on `drx-core`.

use std::fmt;

/// Errors produced by the extendible-array mapping machinery and the
/// metadata codec.
#[derive(Debug)]
pub enum DrxError {
    /// An index or shape had a different rank (number of dimensions) than the
    /// array it was used with.
    RankMismatch { expected: usize, got: usize },
    /// A k-dimensional index lies outside the current bounds of the array.
    IndexOutOfBounds { index: Vec<usize>, bounds: Vec<usize> },
    /// A linear address lies beyond the allocated chunks of the array.
    AddressOutOfBounds { address: u64, total: u64 },
    /// A shape, chunk shape or extension amount contained a zero where a
    /// positive value is required.
    ZeroExtent(&'static str),
    /// The rank requested is outside the supported range `1..=MAX_RANK`.
    BadRank(usize),
    /// Metadata bytes could not be decoded (wrong magic, version, truncation
    /// or checksum failure). The payload describes what went wrong.
    CorruptMeta(String),
    /// A datatype code read from a metadata file is unknown.
    UnknownDType(u8),
    /// An element buffer had the wrong length for the region it should cover.
    BufferSize { expected: usize, got: usize },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Generic invalid-argument error with a human-readable description.
    Invalid(String),
}

/// Maximum supported rank (number of dimensions). The paper's examples use
/// k ≤ 3; we allow a generous fixed ceiling so metadata stays bounded.
pub const MAX_RANK: usize = 16;

impl fmt::Display for DrxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrxError::RankMismatch { expected, got } => {
                write!(f, "rank mismatch: expected {expected}, got {got}")
            }
            DrxError::IndexOutOfBounds { index, bounds } => {
                write!(f, "index {index:?} out of bounds {bounds:?}")
            }
            DrxError::AddressOutOfBounds { address, total } => {
                write!(f, "linear address {address} out of range (total {total})")
            }
            DrxError::ZeroExtent(what) => write!(f, "{what} must be positive"),
            DrxError::BadRank(k) => {
                write!(f, "rank {k} unsupported (must be 1..={MAX_RANK})")
            }
            DrxError::CorruptMeta(why) => write!(f, "corrupt metadata: {why}"),
            DrxError::UnknownDType(code) => write!(f, "unknown dtype code {code}"),
            DrxError::BufferSize { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected} elements, got {got}")
            }
            DrxError::Io(e) => write!(f, "I/O error: {e}"),
            DrxError::Invalid(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for DrxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DrxError {
    fn from(e: std::io::Error) -> Self {
        DrxError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DrxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DrxError::IndexOutOfBounds { index: vec![4, 2], bounds: vec![4, 4] };
        assert!(e.to_string().contains("[4, 2]"));
        let e = DrxError::RankMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn io_error_round_trips_source() {
        use std::error::Error;
        let e: DrxError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("boom"));
    }
}
