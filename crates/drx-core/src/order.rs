//! In-memory layout orders: C (row-major) and FORTRAN (column-major).
//!
//! A central claim of the paper (§I, §II-A) is that the *file* layout of a
//! DRX array is order-neutral — chunks are addressed by `F*` — while the
//! *memory* layout of a sub-array is chosen per read: "the required layout
//! order of the sub-arrays in memory (either C-order or FORTRAN-order) can be
//! specified when the file is read, and do not require out-of-core array
//! transpositions". This module provides the layout abstraction and the
//! in-core transposition used on the fly.

use crate::error::{DrxError, Result};
use crate::index::{col_major_strides, offset_with_strides, row_major_strides, volume, Region};

/// Memory layout order of a dense buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Row-major, last index varies fastest ("C-language order").
    #[default]
    C,
    /// Column-major, first index varies fastest ("FORTRAN language order").
    Fortran,
}

impl Layout {
    /// Strides of a dense buffer with this layout.
    pub fn strides(self, shape: &[usize]) -> Vec<u64> {
        match self {
            Layout::C => row_major_strides(shape),
            Layout::Fortran => col_major_strides(shape),
        }
    }

    /// Linear offset of `index` in a dense `shape` buffer with this layout.
    /// No bounds check; callers validate the index against the shape.
    pub fn offset(self, index: &[usize], shape: &[usize]) -> u64 {
        offset_with_strides(index, &self.strides(shape))
    }

    /// Stable one-byte code for the metadata file.
    pub const fn code(self) -> u8 {
        match self {
            Layout::C => 0,
            Layout::Fortran => 1,
        }
    }

    pub fn from_code(code: u8) -> Result<Self> {
        match code {
            0 => Ok(Layout::C),
            1 => Ok(Layout::Fortran),
            other => Err(DrxError::CorruptMeta(format!("unknown layout code {other}"))),
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Layout::C => "C",
            Layout::Fortran => "Fortran",
        }
    }
}

/// Copy a dense buffer from one layout to another (in-core transposition).
///
/// `src` holds `shape` in `from` order; the result holds the same logical
/// array in `to` order. When `from == to` this is a plain copy.
pub fn relayout<T: Copy + Default>(
    src: &[T],
    shape: &[usize],
    from: Layout,
    to: Layout,
) -> Result<Vec<T>> {
    let n = volume(shape) as usize;
    if src.len() != n {
        return Err(DrxError::BufferSize { expected: n, got: src.len() });
    }
    if from == to {
        return Ok(src.to_vec());
    }
    let mut dst = vec![T::default(); n];
    let from_strides = from.strides(shape);
    let to_strides = to.strides(shape);
    // Walk the logical index space once; both offsets are computed
    // incrementally with an odometer to avoid per-cell dot products.
    let k = shape.len();
    let mut idx = vec![0usize; k];
    let mut from_off = 0u64;
    let mut to_off = 0u64;
    for _ in 0..n {
        dst[to_off as usize] = src[from_off as usize];
        // Odometer increment (row-major logical order).
        let mut j = k;
        loop {
            if j == 0 {
                break;
            }
            j -= 1;
            idx[j] += 1;
            from_off += from_strides[j];
            to_off += to_strides[j];
            if idx[j] < shape[j] {
                break;
            }
            from_off -= from_strides[j] * shape[j] as u64;
            to_off -= to_strides[j] * shape[j] as u64;
            idx[j] = 0;
        }
    }
    Ok(dst)
}

/// Scatter one element into a dense buffer holding `region` in `layout`
/// order. `index` is a global index contained in `region`.
pub fn scatter_into<T: Copy>(
    buf: &mut [T],
    region: &Region,
    layout: Layout,
    index: &[usize],
    value: T,
) -> Result<()> {
    let extents = region.extents();
    if !region.contains(index) {
        return Err(DrxError::IndexOutOfBounds {
            index: index.to_vec(),
            bounds: region.hi().to_vec(),
        });
    }
    let rel: Vec<usize> = index.iter().zip(region.lo()).map(|(&i, &l)| i - l).collect();
    let off = layout.offset(&rel, &extents) as usize;
    buf[off] = value;
    Ok(())
}

/// Gather one element from a dense buffer holding `region` in `layout` order.
pub fn gather_from<T: Copy>(
    buf: &[T],
    region: &Region,
    layout: Layout,
    index: &[usize],
) -> Result<T> {
    let extents = region.extents();
    if !region.contains(index) {
        return Err(DrxError::IndexOutOfBounds {
            index: index.to_vec(),
            bounds: region.hi().to_vec(),
        });
    }
    let rel: Vec<usize> = index.iter().zip(region.lo()).map(|(&i, &l)| i - l).collect();
    let off = layout.offset(&rel, &extents) as usize;
    Ok(buf[off])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_strides() {
        let shape = [2, 3];
        assert_eq!(Layout::C.strides(&shape), vec![3, 1]);
        assert_eq!(Layout::Fortran.strides(&shape), vec![1, 2]);
    }

    #[test]
    fn layout_codes_round_trip() {
        assert_eq!(Layout::from_code(Layout::C.code()).unwrap(), Layout::C);
        assert_eq!(Layout::from_code(Layout::Fortran.code()).unwrap(), Layout::Fortran);
        assert!(Layout::from_code(7).is_err());
    }

    #[test]
    fn relayout_2d_matches_transpose() {
        // C order of [[1,2,3],[4,5,6]] is [1,2,3,4,5,6];
        // Fortran order is [1,4,2,5,3,6].
        let c = [1, 2, 3, 4, 5, 6];
        let f = relayout(&c, &[2, 3], Layout::C, Layout::Fortran).unwrap();
        assert_eq!(f, vec![1, 4, 2, 5, 3, 6]);
        let back = relayout(&f, &[2, 3], Layout::Fortran, Layout::C).unwrap();
        assert_eq!(back, c.to_vec());
    }

    #[test]
    fn relayout_identity_when_same_layout() {
        let c = [9, 8, 7, 6];
        assert_eq!(relayout(&c, &[2, 2], Layout::C, Layout::C).unwrap(), c.to_vec());
    }

    #[test]
    fn relayout_3d_round_trip() {
        let shape = [2, 3, 4];
        let src: Vec<u32> = (0..24).collect();
        let f = relayout(&src, &shape, Layout::C, Layout::Fortran).unwrap();
        // Spot-check: logical (1,2,3) is C-offset 1*12+2*4+3 = 23,
        // Fortran offset 1*1 + 2*2 + 3*6 = 23 as well here; check (1,0,0):
        // C-offset 12 → value 12 must be at Fortran offset 1.
        assert_eq!(f[1], 12);
        let back = relayout(&f, &shape, Layout::Fortran, Layout::C).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn relayout_validates_length() {
        let c = [1, 2, 3];
        assert!(relayout(&c, &[2, 2], Layout::C, Layout::Fortran).is_err());
    }

    #[test]
    fn scatter_gather_in_both_layouts() {
        let region = Region::new(vec![2, 1], vec![4, 4]).unwrap(); // extents 2x3
        for layout in [Layout::C, Layout::Fortran] {
            let mut buf = vec![0i32; 6];
            scatter_into(&mut buf, &region, layout, &[3, 2], 42).unwrap();
            assert_eq!(gather_from(&buf, &region, layout, &[3, 2]).unwrap(), 42);
            assert!(scatter_into(&mut buf, &region, layout, &[4, 1], 1).is_err());
            assert!(gather_from(&buf, &region, layout, &[1, 1]).is_err());
        }
    }
}
