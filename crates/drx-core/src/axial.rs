//! Axial vectors — the per-dimension expansion history of an extendible
//! array (paper §III-B).
//!
//! Every time dimension `l` of the array is extended (and the previous
//! extension was of a *different* dimension), one [`AxialRecord`] is appended
//! to the axial vector `Γ_l`. The record stores everything needed to compute
//! linear chunk addresses inside the adjoined segment:
//!
//! * `start_index` — `N*_l`, the first (chunk) index of the adjoined segment
//!   along dimension `l`;
//! * `start_addr` — `M*_l`, the linear address of the segment's first chunk,
//!   which equals the total number of chunks allocated before the extension
//!   (the array is always rectilinear, so that total is `∏ N*_j`);
//! * `coeffs` — the multiplying coefficients `C*_0 … C*_{k-1}` of Eq. (1):
//!   inside the segment, dimension `l` is the least-varying dimension and all
//!   other dimensions keep their relative order.
//!
//! Repeated extensions of the same dimension with no intervening extension of
//! another dimension ("uninterrupted extensions") share a single record: the
//! coefficients do not involve `N*_l`, so the segment simply grows.

use crate::error::{DrxError, Result};

/// One expansion record of an axial vector (paper Figure 3b).
///
/// The paper's record also carries `S^i_l`, the byte displacement of the
/// segment in the file; for chunk-granular array files that value is always
/// `start_addr × chunk_bytes` because segments are appended in address order,
/// so we do not store it separately (the paper itself notes the field "is not
/// required, since new records are always allocated by appending").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxialRecord {
    /// `N*_l`: first chunk index along the extended dimension covered by this
    /// segment.
    pub start_index: usize,
    /// `M*_l`: linear chunk address of the first chunk of the segment.
    pub start_addr: u64,
    /// `C*_j` for `j = 0..k`: multiplying coefficients valid inside the
    /// segment. `coeffs[l]` is the coefficient of the extended dimension
    /// itself (the product of all other bounds at extension time).
    pub coeffs: Vec<u64>,
}

impl AxialRecord {
    /// Evaluate the segment-relative part of Eq. (1) for a full index,
    /// where `dim` is the dimension this record belongs to:
    ///
    /// `q* = M* + (I_dim − N*_dim)·C*_dim + Σ_{j≠dim} I_j·C*_j`
    pub fn address(&self, dim: usize, index: &[usize]) -> u64 {
        let mut q = self.start_addr;
        for (j, (&i, &c)) in index.iter().zip(&self.coeffs).enumerate() {
            if j == dim {
                q += (i - self.start_index) as u64 * c;
            } else {
                q += i as u64 * c;
            }
        }
        q
    }
}

/// The axial vector `Γ_l` of one dimension: expansion records sorted by
/// `start_index` (equivalently by `start_addr` — both grow monotonically).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AxialVector {
    records: Vec<AxialRecord>,
}

impl AxialVector {
    pub const fn new() -> Self {
        AxialVector { records: Vec::new() }
    }

    /// Number of stored records (`E_l` in the paper). Never-extended
    /// dimensions other than the last have zero records — the paper stores an
    /// explicit sentinel record with `M* = −1` instead; the two encodings are
    /// equivalent and the sentinel form is reconstructed for display by
    /// [`AxialVector::display_records`].
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn records(&self) -> &[AxialRecord] {
        &self.records
    }

    /// Append a record; enforces monotonicity of both keys.
    pub(crate) fn push(&mut self, rec: AxialRecord) -> Result<()> {
        if let Some(last) = self.records.last() {
            if rec.start_index <= last.start_index || rec.start_addr <= last.start_addr {
                return Err(DrxError::Invalid(format!(
                    "axial record out of order: start_index {} after {}, start_addr {} after {}",
                    rec.start_index, last.start_index, rec.start_addr, last.start_addr
                )));
            }
        }
        self.records.push(rec);
        Ok(())
    }

    /// The paper's "modified binary search": the record with the **highest**
    /// `start_index ≤ i`, or `None` when `i` precedes every record (the
    /// paper's `M* = −1` sentinel case).
    pub fn search(&self, i: usize) -> Option<&AxialRecord> {
        // partition_point gives the count of records with start_index <= i.
        let pos = self.records.partition_point(|r| r.start_index <= i);
        if pos == 0 {
            None
        } else {
            Some(&self.records[pos - 1])
        }
    }

    /// Records in the presentation used by Figure 3b of the paper: a sentinel
    /// `{start 0, addr −1, coeffs 0}` is prepended when the stored records do
    /// not begin at index 0.
    pub fn display_records(&self, rank: usize) -> Vec<(usize, i64, Vec<u64>)> {
        let mut rows = Vec::with_capacity(self.records.len() + 1);
        if self.records.first().is_none_or(|r| r.start_index != 0) {
            rows.push((0, -1i64, vec![0u64; rank]));
        }
        for r in &self.records {
            rows.push((r.start_index, r.start_addr as i64, r.coeffs.clone()));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start_index: usize, start_addr: u64, coeffs: &[u64]) -> AxialRecord {
        AxialRecord { start_index, start_addr, coeffs: coeffs.to_vec() }
    }

    #[test]
    fn search_returns_highest_at_or_below() {
        let mut v = AxialVector::new();
        v.push(rec(0, 0, &[1])).unwrap();
        v.push(rec(4, 10, &[1])).unwrap();
        v.push(rec(9, 30, &[1])).unwrap();
        assert_eq!(v.search(0).unwrap().start_addr, 0);
        assert_eq!(v.search(3).unwrap().start_addr, 0);
        assert_eq!(v.search(4).unwrap().start_addr, 10);
        assert_eq!(v.search(8).unwrap().start_addr, 10);
        assert_eq!(v.search(9).unwrap().start_addr, 30);
        assert_eq!(v.search(100).unwrap().start_addr, 30);
    }

    #[test]
    fn search_empty_and_before_first() {
        let mut v = AxialVector::new();
        assert!(v.search(5).is_none());
        v.push(rec(3, 12, &[1])).unwrap();
        assert!(v.search(2).is_none());
        assert!(v.search(3).is_some());
    }

    #[test]
    fn push_rejects_non_monotonic() {
        let mut v = AxialVector::new();
        v.push(rec(2, 8, &[1])).unwrap();
        assert!(v.push(rec(2, 9, &[1])).is_err());
        assert!(v.push(rec(3, 8, &[1])).is_err());
        assert!(v.push(rec(1, 20, &[1])).is_err());
        v.push(rec(5, 20, &[1])).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn record_address_formula() {
        // Paper's Figure 3 worked example: record on D0 with N*=4, M*=48,
        // C = [12, 3, 1]; F*(⟨4,2,2⟩) = 48 + 0·12 + 2·3 + 2·1 = 56.
        let r = rec(4, 48, &[12, 3, 1]);
        assert_eq!(r.address(0, &[4, 2, 2]), 56);
        // D2 record with N*=1, M*=12, C=[3,1,12]: F*(⟨3,1,2⟩) = 12+12+9+1 = 34.
        let r = rec(1, 12, &[3, 1, 12]);
        assert_eq!(r.address(2, &[3, 1, 2]), 34);
    }

    #[test]
    fn display_records_prepends_sentinel() {
        let mut v = AxialVector::new();
        v.push(rec(4, 48, &[12, 3, 1])).unwrap();
        let rows = v.display_records(3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0, -1, vec![0, 0, 0]));
        assert_eq!(rows[1], (4, 48, vec![12, 3, 1]));

        // A vector whose records start at 0 (the last dimension) gets no
        // sentinel.
        let mut v = AxialVector::new();
        v.push(rec(0, 0, &[3, 1, 1])).unwrap();
        assert_eq!(v.display_records(3).len(), 1);
    }
}
