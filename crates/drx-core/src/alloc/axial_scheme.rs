//! Arbitrary linear shell sequence allocation (Figure 2d) — the axial-vector
//! scheme `F*` itself, wrapped as a 2-D allocation scheme with a recorded
//! growth history.
//!
//! "A much desired allocation scheme is that shown [as the arbitrary linear
//! shell order]: any dimension can be extended in an arbitrary manner. The
//! axial-vector technique uses k one-dimensional vectors of records to store
//! information that allows us to compute the linear address of any chunk"
//! (§III-A).

use super::AllocScheme2;
use crate::error::Result;
use crate::mapping::ExtendibleShape;

/// `F*` over an explicit growth history.
#[derive(Debug, Clone)]
pub struct AxialScheme {
    shape: ExtendibleShape,
    history: Vec<(usize, usize)>,
}

impl AxialScheme {
    /// Build from an initial allocation and a list of `(dim, by)` extensions.
    pub fn with_history(initial: &[usize], history: &[(usize, usize)]) -> Result<Self> {
        let mut shape = ExtendibleShape::new(initial)?;
        for &(dim, by) in history {
            shape.extend(dim, by)?;
        }
        Ok(AxialScheme { shape, history: history.to_vec() })
    }

    /// The growth history used for our rendering of Figure 2d: an 8×8 array
    /// grown from a single cell by extensions of both dimensions in an
    /// irregular (non-cyclic, non-doubling) order — the pattern neither
    /// Z-order nor the symmetric shell order could accommodate.
    ///
    /// History: start `[1,1]`; extend D0+1, D1+2, D0+2, D1+2, D0+4, D1+3.
    pub fn figure2d() -> Result<Self> {
        Self::with_history(&[1, 1], &[(0, 1), (1, 2), (0, 2), (1, 2), (0, 4), (1, 3)])
    }

    pub fn shape(&self) -> &ExtendibleShape {
        &self.shape
    }

    pub fn history(&self) -> &[(usize, usize)] {
        &self.history
    }
}

impl AllocScheme2 for AxialScheme {
    fn name(&self) -> &'static str {
        "axial (F*)"
    }

    fn address2(&self, i: usize, j: usize) -> Result<u64> {
        self.shape.address(&[i, j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::is_bijective_on_square;

    #[test]
    fn figure2d_is_8x8_and_bijective() {
        let s = AxialScheme::figure2d().unwrap();
        assert_eq!(s.shape().bounds(), &[8, 8]);
        assert!(is_bijective_on_square(&s, 8).unwrap());
    }

    #[test]
    fn figure2d_first_segments() {
        let s = AxialScheme::figure2d().unwrap();
        // (0,0) is the initial cell; D0+1 allocates (1,0)=1; D1+2 then
        // allocates the 2×2 block (·,1..3) = 2..6 with D1 least-varying.
        assert_eq!(s.address2(0, 0).unwrap(), 0);
        assert_eq!(s.address2(1, 0).unwrap(), 1);
        assert_eq!(s.address2(0, 1).unwrap(), 2);
        assert_eq!(s.address2(1, 1).unwrap(), 3);
        assert_eq!(s.address2(0, 2).unwrap(), 4);
        assert_eq!(s.address2(1, 2).unwrap(), 5);
    }

    #[test]
    fn arbitrary_history_stays_dense() {
        // Unlike the shell orders, ANY history keeps addresses dense in
        // 0..total.
        let s =
            AxialScheme::with_history(&[2, 1], &[(0, 3), (0, 1), (1, 4), (0, 2), (1, 1)]).unwrap();
        let total = s.shape().total_chunks();
        let mut seen = vec![false; total as usize];
        for idx in s.shape().full_region().iter() {
            let a = s.shape().address(&idx).unwrap() as usize;
            assert!(!seen[a]);
            seen[a] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
