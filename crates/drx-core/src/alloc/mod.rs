//! Allocation schemes for array elements (paper §III-A, Figure 2).
//!
//! The paper contrasts four ways of assigning linear addresses to the cells
//! of a (potentially growing) 2-D array:
//!
//! * **(a) row-major sequence order** — conventional; extendible in
//!   dimension 0 only;
//! * **(b) Z (Morton) sequence order** — a space-filling curve; growth is
//!   constrained to doubling in a cyclic order of the dimensions;
//! * **(c) symmetric linear shell sequence order** — linear growth but only
//!   in a cyclic order of the dimensions;
//! * **(d) arbitrary linear shell sequence order** — the axial-vector scheme
//!   (`F*`), which extends any dimension in any order.
//!
//! These schemes back the Figure 2 regeneration and the mapping-cost
//! comparison (experiment E1).

mod axial_scheme;
mod morton;
mod row_major;
mod shell;

pub use axial_scheme::AxialScheme;
pub use morton::{Morton2, MortonK};
pub use row_major::RowMajor;
pub use shell::{SymmetricShell2, SymmetricShellK};

use crate::error::Result;

/// A 2-D allocation scheme: a (partial) bijection from cell indices to
/// linear addresses.
pub trait AllocScheme2 {
    /// Short name used in figure output.
    fn name(&self) -> &'static str;
    /// Linear address of cell `(i, j)`.
    fn address2(&self, i: usize, j: usize) -> Result<u64>;
}

/// Render the `n×n` address table of a scheme — the format of the Figure 2
/// panels.
pub fn address_table(scheme: &dyn AllocScheme2, n: usize) -> Result<Vec<Vec<u64>>> {
    (0..n).map(|i| (0..n).map(|j| scheme.address2(i, j)).collect()).collect()
}

/// Check that a scheme assigns each of the `n×n` cells a distinct address in
/// `0..n²` (all four Figure 2 schemes are bijections on the square).
pub fn is_bijective_on_square(scheme: &dyn AllocScheme2, n: usize) -> Result<bool> {
    let mut seen = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            let a = scheme.address2(i, j)? as usize;
            if a >= seen.len() || seen[a] {
                return Ok(false);
            }
            seen[a] = true;
        }
    }
    Ok(seen.iter().all(|&b| b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_schemes_are_bijective_on_8x8() {
        let schemes: Vec<Box<dyn AllocScheme2>> = vec![
            Box::new(RowMajor::new(vec![8, 8]).unwrap()),
            Box::new(Morton2::new()),
            Box::new(SymmetricShell2::new()),
            Box::new(AxialScheme::figure2d().unwrap()),
        ];
        for s in &schemes {
            assert!(is_bijective_on_square(s.as_ref(), 8).unwrap(), "{} not bijective", s.name());
        }
    }

    #[test]
    fn address_table_shape() {
        let t = address_table(&Morton2::new(), 4).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|row| row.len() == 4));
    }
}
