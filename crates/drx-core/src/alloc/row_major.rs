//! Conventional row-major allocation (Figure 2a) — the baseline mapping
//! `F()` of Eq. (3), extendible in dimension 0 only.

use super::AllocScheme2;
use crate::error::{DrxError, Result};
use crate::index::{check_rank, row_major_offset, row_major_strides};

/// Row-major ("C-language order") allocation over a fixed shape.
///
/// Extending dimension 0 appends addresses; extending any other dimension
/// invalidates every address computed so far — which is precisely the
/// limitation the paper's `F*` removes (experiment E2 measures the
/// reorganization this forces on array *files*).
#[derive(Debug, Clone)]
pub struct RowMajor {
    shape: Vec<usize>,
    strides: Vec<u64>,
}

impl RowMajor {
    pub fn new(shape: Vec<usize>) -> Result<Self> {
        check_rank(shape.len())?;
        if shape.contains(&0) {
            return Err(DrxError::ZeroExtent("shape extent"));
        }
        let strides = row_major_strides(&shape);
        Ok(RowMajor { shape, strides })
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// k-dimensional address (Eq. 3).
    pub fn address(&self, index: &[usize]) -> Result<u64> {
        row_major_offset(index, &self.shape)
    }

    /// Extend dimension 0 — the only dimension a row-major file can grow
    /// without reorganization.
    pub fn extend_dim0(&mut self, by: usize) {
        self.shape[0] += by;
        // Strides of dimensions > 0 are unchanged; stride of dim 0 too.
    }

    /// Would extending `dim` preserve existing addresses?
    pub fn extension_is_append(&self, dim: usize) -> bool {
        dim == 0
    }

    /// Addresses whose value changes if dimension `dim` is extended by
    /// `by` — i.e. the number of elements a file reorganization must move.
    /// Zero for dim 0; everything except the first "row block" otherwise.
    pub fn cells_moved_by_extension(&self, dim: usize, by: usize) -> u64 {
        if dim == 0 || by == 0 {
            return 0;
        }
        // After extending any dim > 0, every cell with a nonzero index in
        // some dimension j < dim keeps its address only if all higher-order
        // contributions are unchanged — which they are not, because the
        // strides of all dimensions < dim grow. Cells unaffected are exactly
        // those with index 0 in every dimension j < dim (their address uses
        // only strides >= dim, which do not change).
        let total: u64 = self.shape.iter().map(|&n| n as u64).product();
        let untouched: u64 = self.shape.iter().skip(dim).map(|&n| n as u64).product();
        total - untouched
    }

    /// Row-major strides of the current shape (dim-0 stride first).
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }
}

impl AllocScheme2 for RowMajor {
    fn name(&self) -> &'static str {
        "row-major"
    }

    fn address2(&self, i: usize, j: usize) -> Result<u64> {
        self.address(&[i, j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2a_8x8_table() {
        // Figure 2a: the 8×8 row-major table is simply 8i + j.
        let s = RowMajor::new(vec![8, 8]).unwrap();
        assert_eq!(s.strides(), &[8, 1]);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(s.address2(i, j).unwrap(), (8 * i + j) as u64);
            }
        }
    }

    #[test]
    fn dim0_extension_preserves_addresses() {
        let mut s = RowMajor::new(vec![4, 5]).unwrap();
        let before: Vec<u64> = (0..4)
            .flat_map(|i| (0..5).map(move |j| (i, j)))
            .map(|(i, j)| s.address(&[i, j]).unwrap())
            .collect();
        s.extend_dim0(3);
        let after: Vec<u64> = (0..4)
            .flat_map(|i| (0..5).map(move |j| (i, j)))
            .map(|(i, j)| s.address(&[i, j]).unwrap())
            .collect();
        assert_eq!(before, after);
        assert!(s.extension_is_append(0));
        assert!(!s.extension_is_append(1));
    }

    #[test]
    fn cells_moved_counts() {
        let s = RowMajor::new(vec![4, 5]).unwrap();
        assert_eq!(s.cells_moved_by_extension(0, 2), 0);
        // Extending dim 1 of a 4×5 array moves every cell not in row 0:
        // 20 − 5 = 15.
        assert_eq!(s.cells_moved_by_extension(1, 1), 15);
        let s3 = RowMajor::new(vec![3, 4, 5]).unwrap();
        assert_eq!(s3.cells_moved_by_extension(1, 1), 60 - 20);
        assert_eq!(s3.cells_moved_by_extension(2, 1), 60 - 5);
    }

    #[test]
    fn rejects_empty_shapes() {
        assert!(RowMajor::new(vec![]).is_err());
        assert!(RowMajor::new(vec![3, 0]).is_err());
    }
}
