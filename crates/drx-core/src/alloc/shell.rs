//! Symmetric linear shell sequence allocation (Figure 2c).
//!
//! "A linear expansion of an array is possible with the symmetric linear
//! shell sequence order … [the] mapping function is well defined but
//! restricts expansions to be in a cyclic order otherwise chunk locations
//! may be assigned but unused" (§III-A).
//!
//! Shell `k` consists of the cells with `max(i, j) = k`. Shells are
//! allocated consecutively: shell `k` occupies addresses `k² .. (k+1)²`.
//! Within a shell the new *column* part `(0..k, k)` comes first, then the
//! new *row* part `(k, 0..=k)` — i.e. the array alternates extending
//! dimension 1 and dimension 0 on every shell, which is exactly one round of
//! the cyclic growth order. (This convention reproduces the bottom row
//! `56 … 63` of the paper's Figure 2c.)

use super::AllocScheme2;
use crate::error::{DrxError, Result};

/// 2-D symmetric linear shell allocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SymmetricShell2;

impl SymmetricShell2 {
    pub const fn new() -> Self {
        SymmetricShell2
    }

    /// Address of cell `(i, j)`:
    /// `i < j` (column part of shell `j`): `j² + i`;
    /// `i ≥ j` (row part of shell `i`): `i² + i + j`.
    pub fn encode(i: u64, j: u64) -> u64 {
        if i < j {
            j * j + i
        } else {
            i * i + i + j
        }
    }

    /// Inverse: address → `(i, j)`.
    pub fn decode(addr: u64) -> (u64, u64) {
        let k = isqrt(addr);
        let off = addr - k * k;
        if off < k {
            (off, k) // column part
        } else {
            (k, off - k) // row part
        }
    }
}

/// k-dimensional symmetric linear shell allocation — the general form of
/// the scheme (Otoo & Merrett, *A storage scheme for extendible arrays*,
/// Computing 1983, cited by the paper as ref. [21]).
///
/// Shell `m` is the set of cells with `max(i_0 … i_{k-1}) = m`; shells are
/// allocated consecutively, so the `n^k` hypercube occupies exactly
/// addresses `0..n^k` (linear growth, but only in the cyclic order of the
/// dimensions — the restriction the paper's axial vectors remove).
///
/// Within shell `m`, cells are grouped by the *first* dimension that
/// attains `m`: group `d` holds the cells with `i_d = m` and `i_j < m` for
/// `j < d` (dimensions after `d` range over `0..=m`). Groups are laid out
/// in **descending** dimension order (the convention that reduces to
/// [`SymmetricShell2`] at rank 2: the new column before the new row),
/// row-major within a group.
#[derive(Debug, Clone, Copy)]
pub struct SymmetricShellK {
    rank: usize,
}

impl SymmetricShellK {
    pub fn new(rank: usize) -> Result<Self> {
        crate::index::check_rank(rank)?;
        Ok(SymmetricShellK { rank })
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cells in shell `m`: `(m+1)^k − m^k`.
    fn shell_base(&self, m: u64) -> u64 {
        m.pow(self.rank as u32)
    }

    /// Cells in group `d` of shell `m`: `m^d · (m+1)^(k−1−d)`.
    fn group_size(&self, m: u64, d: usize) -> u64 {
        m.pow(d as u32) * (m + 1).pow((self.rank - 1 - d) as u32)
    }

    /// Linear address of a cell.
    pub fn encode(&self, index: &[usize]) -> Result<u64> {
        crate::index::check_rank_of(index, self.rank)?;
        let m = *index.iter().max().expect("rank >= 1") as u64;
        let d = index.iter().position(|&i| i as u64 == m).expect("max exists");
        let mut addr = self.shell_base(m);
        for g in d + 1..self.rank {
            addr += self.group_size(m, g);
        }
        // Row-major offset of the remaining coordinates: dims < d range
        // over 0..m, dims > d over 0..=m (dim d is pinned at m).
        let mut off = 0u64;
        for (j, &i) in index.iter().enumerate() {
            if j == d {
                continue;
            }
            let radix = if j < d { m } else { m + 1 };
            off = off * radix + i as u64;
        }
        Ok(addr + off)
    }

    /// Inverse of [`SymmetricShellK::encode`].
    pub fn decode(&self, addr: u64) -> Vec<usize> {
        // Find the shell: largest m with m^k <= addr.
        let mut m = (addr as f64).powf(1.0 / self.rank as f64) as u64;
        while self.shell_base(m + 1) <= addr {
            m += 1;
        }
        while m > 0 && self.shell_base(m) > addr {
            m -= 1;
        }
        let mut rest = addr - self.shell_base(m);
        let mut d = self.rank - 1;
        while rest >= self.group_size(m, d) {
            rest -= self.group_size(m, d);
            d -= 1;
        }
        // Undo the mixed-radix packing.
        let mut index = vec![0usize; self.rank];
        index[d] = m as usize;
        for j in (0..self.rank).rev() {
            if j == d {
                continue;
            }
            let radix = if j < d { m } else { m + 1 };
            index[j] = (rest % radix) as usize;
            rest /= radix;
        }
        index
    }
}

/// Integer square root (floor). `u64::isqrt` is stable only since 1.84; a
/// local Newton iteration keeps the MSRV generous.
fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    let mut x = (v as f64).sqrt() as u64;
    // Correct the float estimate in both directions.
    while x.checked_mul(x).is_none_or(|sq| sq > v) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= v) {
        x += 1;
    }
    x
}

impl AllocScheme2 for SymmetricShell2 {
    fn name(&self) -> &'static str {
        "symmetric-shell"
    }

    fn address2(&self, i: usize, j: usize) -> Result<u64> {
        if i >= 1 << 31 || j >= 1 << 31 {
            return Err(DrxError::Invalid("shell index too large".into()));
        }
        Ok(SymmetricShell2::encode(i as u64, j as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_shell_values() {
        // Shell 0: (0,0)=0. Shell 1: (0,1)=1, (1,0)=2, (1,1)=3.
        // Shell 2: (0,2)=4, (1,2)=5, (2,0)=6, (2,1)=7, (2,2)=8.
        assert_eq!(SymmetricShell2::encode(0, 0), 0);
        assert_eq!(SymmetricShell2::encode(0, 1), 1);
        assert_eq!(SymmetricShell2::encode(1, 0), 2);
        assert_eq!(SymmetricShell2::encode(1, 1), 3);
        assert_eq!(SymmetricShell2::encode(0, 2), 4);
        assert_eq!(SymmetricShell2::encode(1, 2), 5);
        assert_eq!(SymmetricShell2::encode(2, 0), 6);
        assert_eq!(SymmetricShell2::encode(2, 2), 8);
        // Row 7 of the 8×8 table is 56..=63 (Figure 2c bottom row).
        for j in 0..8 {
            assert_eq!(SymmetricShell2::encode(7, j), 56 + j);
        }
    }

    #[test]
    fn linear_growth_property() {
        // Every n×n square uses exactly addresses 0..n² — linear (not
        // exponential) growth, unlike Z-order.
        for n in 1..=20u64 {
            let mut max = 0;
            for i in 0..n {
                for j in 0..n {
                    max = max.max(SymmetricShell2::encode(i, j));
                }
            }
            assert_eq!(max, n * n - 1);
        }
    }

    #[test]
    fn decode_round_trip() {
        for i in 0..40u64 {
            for j in 0..40u64 {
                let a = SymmetricShell2::encode(i, j);
                assert_eq!(SymmetricShell2::decode(a), (i, j));
            }
        }
    }

    #[test]
    fn isqrt_edges() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(24), 4);
        assert_eq!(isqrt(25), 5);
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn shell_k_reduces_to_shell_2_at_rank_2() {
        let k = SymmetricShellK::new(2).unwrap();
        for i in 0..12u64 {
            for j in 0..12u64 {
                assert_eq!(
                    k.encode(&[i as usize, j as usize]).unwrap(),
                    SymmetricShell2::encode(i, j),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn shell_k_is_dense_and_invertible_in_3d_and_4d() {
        for rank in [1usize, 3, 4] {
            let s = SymmetricShellK::new(rank).unwrap();
            let n = match rank {
                1 => 64,
                3 => 7,
                _ => 5,
            };
            let total = (n as u64).pow(rank as u32);
            let mut seen = vec![false; total as usize];
            let region = crate::index::Region::of_shape(&vec![n; rank]).unwrap();
            for idx in region.iter() {
                let a = s.encode(&idx).unwrap();
                // Dense: the n^k hypercube fills 0..n^k (linear growth).
                assert!(a < total, "{idx:?} → {a} out of {total}");
                assert!(!seen[a as usize], "duplicate {a}");
                seen[a as usize] = true;
                assert_eq!(s.decode(a), idx, "inverse of {a}");
            }
            assert!(seen.into_iter().all(|b| b));
        }
    }

    #[test]
    fn shell_k_shell_membership() {
        let s = SymmetricShellK::new(3).unwrap();
        // Every cell of shell m lands in [m³, (m+1)³).
        for m in 0..5usize {
            let lo = (m as u64).pow(3);
            let hi = (m as u64 + 1).pow(3);
            let region = crate::index::Region::of_shape(&[m + 1; 3]).unwrap();
            for idx in region.iter() {
                if idx.iter().max() == Some(&m) {
                    let a = s.encode(&idx).unwrap();
                    assert!(a >= lo && a < hi, "{idx:?} → {a} not in shell {m}");
                }
            }
        }
        assert!(SymmetricShellK::new(0).is_err());
        assert!(s.encode(&[1, 2]).is_err());
    }

    #[test]
    fn non_cyclic_growth_leaves_holes() {
        // Growing only dimension 0 (rows) to 4×2 uses addresses
        // {0,1,3,4,5,9,10} ∪ … — some of 0..8 are unused, demonstrating the
        // §III-A restriction the axial-vector scheme removes.
        let mut used: Vec<u64> = Vec::new();
        for i in 0..4u64 {
            for j in 0..2u64 {
                used.push(SymmetricShell2::encode(i, j));
            }
        }
        used.sort_unstable();
        let contiguous: Vec<u64> = (0..used.len() as u64).collect();
        assert_ne!(used, contiguous, "rectangular region should not be address-contiguous");
    }
}
