//! Z-order / Morton sequence allocation (Figure 2b).
//!
//! "An allocation scheme based on the Z-order mapping function is
//! constrained to have exponential growth since the array can grow by
//! doubling its size and only in a cyclic order of its dimensions" (§III-A).

use super::AllocScheme2;
use crate::error::{DrxError, Result};

/// 2-D Morton (Z-order) allocation: the bits of the row index `i` are
/// interleaved into the odd positions and the bits of the column index `j`
/// into the even positions, so `(i, j) = (1, 0) → 2` and `(0, 1) → 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Morton2;

impl Morton2 {
    pub const fn new() -> Self {
        Morton2
    }

    /// Interleave the low 32 bits of `v` with zeros (helper for any rank-2
    /// Morton code).
    fn spread(v: u64) -> u64 {
        let mut x = v & 0xFFFF_FFFF;
        x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x << 2)) & 0x3333_3333_3333_3333;
        x = (x | (x << 1)) & 0x5555_5555_5555_5555;
        x
    }

    /// Inverse of [`Morton2::spread`].
    fn unspread(v: u64) -> u64 {
        let mut x = v & 0x5555_5555_5555_5555;
        x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
        x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
        x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
        x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
        x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
        x
    }

    /// Morton code of `(i, j)`.
    pub fn encode(i: u64, j: u64) -> Result<u64> {
        if i >= 1 << 32 || j >= 1 << 32 {
            return Err(DrxError::Invalid("Morton index exceeds 32 bits".into()));
        }
        Ok((Self::spread(i) << 1) | Self::spread(j))
    }

    /// Inverse Morton code: address → `(i, j)`.
    pub fn decode(code: u64) -> (u64, u64) {
        (Self::unspread(code >> 1), Self::unspread(code))
    }
}

impl AllocScheme2 for Morton2 {
    fn name(&self) -> &'static str {
        "z-order"
    }

    fn address2(&self, i: usize, j: usize) -> Result<u64> {
        Morton2::encode(i as u64, j as u64)
    }
}

/// General k-dimensional Morton code, used by the mapping-cost benchmark to
/// compare against `F*` at higher ranks. Bits of dimension 0 occupy the
/// highest interleave positions.
#[derive(Debug, Clone)]
pub struct MortonK {
    rank: usize,
    bits: u32,
}

impl MortonK {
    /// A Morton code over `rank` dimensions with `bits` bits per dimension.
    pub fn new(rank: usize, bits: u32) -> Result<Self> {
        crate::index::check_rank(rank)?;
        if bits == 0 || bits as usize * rank > 64 {
            return Err(DrxError::Invalid(format!("{bits} bits × rank {rank} exceeds 64")));
        }
        Ok(MortonK { rank, bits })
    }

    pub fn encode(&self, index: &[usize]) -> Result<u64> {
        crate::index::check_rank_of(index, self.rank)?;
        let mut out = 0u64;
        for b in 0..self.bits {
            for (d, &i) in index.iter().enumerate() {
                if i >> 32 != 0 || (i as u64) >= (1 << self.bits) {
                    return Err(DrxError::Invalid(format!("index {i} exceeds {} bits", self.bits)));
                }
                let bit = (i as u64 >> b) & 1;
                // Dimension 0 gets the most significant slot of each group.
                let pos = b as usize * self.rank + (self.rank - 1 - d);
                out |= bit << pos;
            }
        }
        Ok(out)
    }

    pub fn decode(&self, code: u64) -> Vec<usize> {
        let mut index = vec![0usize; self.rank];
        for b in 0..self.bits {
            for (d, slot) in index.iter_mut().enumerate() {
                let pos = b as usize * self.rank + (self.rank - 1 - d);
                *slot |= (((code >> pos) & 1) as usize) << b;
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2b_corner_values() {
        // Standard Z-order over an 8×8 square: the 2×2 macro-blocks follow
        // 0,1 / 2,3.
        let m = Morton2::new();
        assert_eq!(m.address2(0, 0).unwrap(), 0);
        assert_eq!(m.address2(0, 1).unwrap(), 1);
        assert_eq!(m.address2(1, 0).unwrap(), 2);
        assert_eq!(m.address2(1, 1).unwrap(), 3);
        assert_eq!(m.address2(0, 2).unwrap(), 4);
        assert_eq!(m.address2(2, 0).unwrap(), 8);
        assert_eq!(m.address2(7, 7).unwrap(), 63);
    }

    #[test]
    fn encode_decode_round_trip() {
        for i in 0..64u64 {
            for j in 0..64u64 {
                let c = Morton2::encode(i, j).unwrap();
                assert_eq!(Morton2::decode(c), (i, j));
            }
        }
    }

    #[test]
    fn doubling_growth_property() {
        // Z-order is only stable under doubling growth: all addresses of the
        // n×n square fall in 0..n² when n is a power of two.
        for n in [1usize, 2, 4, 8, 16] {
            for i in 0..n {
                for j in 0..n {
                    assert!(Morton2::encode(i as u64, j as u64).unwrap() < (n * n) as u64);
                }
            }
        }
        // …but NOT when the square is not a power of two: the 3×3 square
        // needs address 12 for (2, 2) although it only has 9 cells —
        // the "chunk locations assigned but unused" restriction of §III-A.
        assert_eq!(Morton2::encode(2, 2).unwrap(), 12);
    }

    #[test]
    fn morton_k_round_trip() {
        let m = MortonK::new(3, 5).unwrap();
        for idx in [[0, 0, 0], [1, 2, 3], [31, 31, 31], [7, 0, 19]] {
            let c = m.encode(&idx).unwrap();
            assert_eq!(m.decode(c), idx.to_vec());
        }
        assert!(m.encode(&[32, 0, 0]).is_err());
        assert!(m.encode(&[0, 0]).is_err());
        assert!(MortonK::new(9, 8).is_err());
    }

    #[test]
    fn morton_k_rank2_matches_morton2() {
        let m = MortonK::new(2, 6).unwrap();
        for i in 0..16usize {
            for j in 0..16usize {
                assert_eq!(
                    m.encode(&[i, j]).unwrap(),
                    Morton2::encode(i as u64, j as u64).unwrap()
                );
            }
        }
    }
}
