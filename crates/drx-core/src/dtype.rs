//! Element data types.
//!
//! The paper restricts array elements to the three basic types that MPI-2
//! remote-memory operations (`MPI_Get` / `MPI_Put` / `MPI_Accumulate`) can
//! handle directly: *integer*, *double* and *complex*. We additionally allow
//! the 32-bit variants, which changes nothing structurally.

use crate::error::{DrxError, Result};

/// Runtime tag for the element type of an array file.
///
/// Stored in the `.xmd` metadata file as a single byte code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    Int32,
    Int64,
    Float32,
    Float64,
    /// Double-precision complex (two `f64`s), the paper's "complex".
    Complex64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            DType::Int32 | DType::Float32 => 4,
            DType::Int64 | DType::Float64 => 8,
            DType::Complex64 => 16,
        }
    }

    /// Stable one-byte code used in the `.xmd` metadata format.
    pub const fn code(self) -> u8 {
        match self {
            DType::Int32 => 1,
            DType::Int64 => 2,
            DType::Float32 => 3,
            DType::Float64 => 4,
            DType::Complex64 => 5,
        }
    }

    /// Inverse of [`DType::code`].
    pub fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            1 => DType::Int32,
            2 => DType::Int64,
            3 => DType::Float32,
            4 => DType::Float64,
            5 => DType::Complex64,
            other => return Err(DrxError::UnknownDType(other)),
        })
    }

    /// Human-readable name, used in harness output.
    pub const fn name(self) -> &'static str {
        match self {
            DType::Int32 => "int32",
            DType::Int64 => "int64",
            DType::Float32 => "float32",
            DType::Float64 => "float64",
            DType::Complex64 => "complex64",
        }
    }
}

/// Double-precision complex number — the paper's third element type.
///
/// Only the operations needed by the library (byte codec, accumulate-add,
/// equality for tests) are provided; this is a storage type, not a numerics
/// library.
/// `repr(C)` so the in-memory layout (`re` then `im`, no padding) matches
/// the serialized encoding on little-endian hosts — see
/// [`Element::as_le_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }
}

impl std::ops::Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

/// A fixed-size element that can live in a DRX array.
///
/// All on-disk representations are little-endian, independent of the host,
/// so `.xta` files are portable (the original implementation wrote "native
/// binary"; we tighten that to a defined byte order).
pub trait Element: Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// The runtime tag matching this type.
    const DTYPE: DType;
    /// Serialized size in bytes; equals `Self::DTYPE.size()`.
    const SIZE: usize;

    /// Append the little-endian encoding of `self` to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decode from exactly `Self::SIZE` bytes.
    fn read_le(bytes: &[u8]) -> Self;
    /// Element addition, used by `accumulate` (paper: `MPI_Accumulate`).
    fn acc(self, other: Self) -> Self;

    /// View a slice of elements as the raw byte image of its serialized
    /// little-endian form, when the in-memory representation matches that
    /// form exactly — true for every built-in element type on a
    /// little-endian host. Returns `None` when no such view exists (e.g.
    /// big-endian hosts); callers fall back to the per-element codec.
    ///
    /// This is what lets the scatter/gather fast path `copy_from_slice`
    /// whole rows instead of decoding element by element.
    fn as_le_bytes(slice: &[Self]) -> Option<&[u8]> {
        let _ = slice;
        None
    }

    /// Mutable variant of [`Element::as_le_bytes`]. Implementations must
    /// only provide this when every byte pattern is a valid element value,
    /// so writes through the view cannot create invalid elements.
    fn as_le_bytes_mut(slice: &mut [Self]) -> Option<&mut [u8]> {
        let _ = slice;
        None
    }
}

/// Implement the byte-view accessors for a plain-old-data element type
/// whose in-memory representation on a little-endian host equals its
/// `write_le` encoding (no padding, every byte pattern valid).
macro_rules! impl_le_byte_view {
    () => {
        #[cfg(target_endian = "little")]
        fn as_le_bytes(slice: &[Self]) -> Option<&[u8]> {
            // SAFETY: Self is a padding-free POD type (size == serialized
            // SIZE, asserted in tests), so this memory is fully initialized
            // bytes — on a little-endian host the `write_le` encoding.
            Some(unsafe {
                std::slice::from_raw_parts(
                    slice.as_ptr().cast::<u8>(),
                    std::mem::size_of_val(slice),
                )
            })
        }

        #[cfg(target_endian = "little")]
        fn as_le_bytes_mut(slice: &mut [Self]) -> Option<&mut [u8]> {
            // SAFETY: as for `as_le_bytes`; additionally every byte pattern
            // of these numeric types is a valid value, so arbitrary writes
            // through the view cannot produce an invalid element.
            Some(unsafe {
                std::slice::from_raw_parts_mut(
                    slice.as_mut_ptr().cast::<u8>(),
                    std::mem::size_of_val(slice),
                )
            })
        }
    };
}

macro_rules! impl_element_numeric {
    ($t:ty, $dt:expr, $size:expr) => {
        impl Element for $t {
            const DTYPE: DType = $dt;
            const SIZE: usize = $size;

            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn read_le(bytes: &[u8]) -> Self {
                let mut buf = [0u8; $size];
                buf.copy_from_slice(&bytes[..$size]);
                <$t>::from_le_bytes(buf)
            }

            fn acc(self, other: Self) -> Self {
                self + other
            }

            impl_le_byte_view!();
        }
    };
}

impl_element_numeric!(i32, DType::Int32, 4);
impl_element_numeric!(i64, DType::Int64, 8);
impl_element_numeric!(f32, DType::Float32, 4);
impl_element_numeric!(f64, DType::Float64, 8);

impl Element for Complex64 {
    const DTYPE: DType = DType::Complex64;
    const SIZE: usize = 16;

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.re.to_le_bytes());
        out.extend_from_slice(&self.im.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        let mut re = [0u8; 8];
        let mut im = [0u8; 8];
        re.copy_from_slice(&bytes[..8]);
        im.copy_from_slice(&bytes[8..16]);
        Complex64::new(f64::from_le_bytes(re), f64::from_le_bytes(im))
    }

    fn acc(self, other: Self) -> Self {
        self + other
    }

    impl_le_byte_view!();
}

/// Encode a slice of elements into little-endian bytes.
pub fn encode_slice<T: Element>(elems: &[T]) -> Vec<u8> {
    if let Some(bytes) = T::as_le_bytes(elems) {
        return bytes.to_vec();
    }
    let mut out = Vec::with_capacity(elems.len() * T::SIZE);
    for e in elems {
        e.write_le(&mut out);
    }
    out
}

/// Decode a little-endian byte buffer into elements.
///
/// Returns an error when the byte count is not a multiple of the element size.
pub fn decode_slice<T: Element>(bytes: &[u8]) -> Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(DrxError::BufferSize {
            expected: bytes.len() / T::SIZE * T::SIZE,
            got: bytes.len(),
        });
    }
    Ok(bytes.chunks_exact(T::SIZE).map(T::read_le).collect())
}

/// Decode into an existing buffer (avoids an allocation in hot I/O paths).
pub fn decode_into<T: Element>(bytes: &[u8], out: &mut [T]) -> Result<()> {
    if bytes.len() != out.len() * T::SIZE {
        return Err(DrxError::BufferSize { expected: out.len() * T::SIZE, got: bytes.len() });
    }
    if let Some(view) = T::as_le_bytes_mut(out) {
        view.copy_from_slice(bytes);
        return Ok(());
    }
    for (chunk, slot) in bytes.chunks_exact(T::SIZE).zip(out.iter_mut()) {
        *slot = T::read_le(chunk);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for dt in [DType::Int32, DType::Int64, DType::Float32, DType::Float64, DType::Complex64] {
            assert_eq!(DType::from_code(dt.code()).unwrap(), dt);
        }
        assert!(DType::from_code(0).is_err());
        assert!(DType::from_code(99).is_err());
    }

    #[test]
    fn sizes_match_trait_constants() {
        assert_eq!(DType::Int32.size(), <i32 as Element>::SIZE);
        assert_eq!(DType::Int64.size(), <i64 as Element>::SIZE);
        assert_eq!(DType::Float32.size(), <f32 as Element>::SIZE);
        assert_eq!(DType::Float64.size(), <f64 as Element>::SIZE);
        assert_eq!(DType::Complex64.size(), <Complex64 as Element>::SIZE);
    }

    #[test]
    fn scalar_round_trip() {
        let vals: Vec<f64> = vec![0.0, -1.5, 1e300, f64::MIN_POSITIVE];
        let bytes = encode_slice(&vals);
        assert_eq!(bytes.len(), vals.len() * 8);
        let back: Vec<f64> = decode_slice(&bytes).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn complex_round_trip_and_acc() {
        let vals = vec![Complex64::new(1.0, -2.0), Complex64::new(0.5, 0.25)];
        let bytes = encode_slice(&vals);
        let back: Vec<Complex64> = decode_slice(&bytes).unwrap();
        assert_eq!(back, vals);
        let s = vals[0].acc(vals[1]);
        assert_eq!(s, Complex64::new(1.5, -1.75));
    }

    #[test]
    fn decode_into_checks_length() {
        let bytes = encode_slice(&[1i32, 2, 3]);
        let mut out = [0i32; 2];
        assert!(decode_into(&bytes, &mut out).is_err());
        let mut out = [0i32; 3];
        decode_into(&bytes, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn decode_slice_rejects_ragged_input() {
        let bytes = [0u8; 7];
        assert!(decode_slice::<i32>(&bytes).is_err());
    }

    #[test]
    fn byte_view_sizes_are_exact() {
        // The `as_le_bytes` SAFETY argument requires the in-memory size to
        // equal the serialized size (no padding) for every element type.
        assert_eq!(std::mem::size_of::<i32>(), <i32 as Element>::SIZE);
        assert_eq!(std::mem::size_of::<i64>(), <i64 as Element>::SIZE);
        assert_eq!(std::mem::size_of::<f32>(), <f32 as Element>::SIZE);
        assert_eq!(std::mem::size_of::<f64>(), <f64 as Element>::SIZE);
        assert_eq!(std::mem::size_of::<Complex64>(), <Complex64 as Element>::SIZE);
    }

    fn view_matches_codec<T: Element>(vals: &[T]) {
        let encoded = {
            let mut out = Vec::new();
            for v in vals {
                v.write_le(&mut out);
            }
            out
        };
        if let Some(view) = T::as_le_bytes(vals) {
            assert_eq!(view, &encoded[..]);
        }
        let mut decoded = vec![T::default(); vals.len()];
        if let Some(view) = T::as_le_bytes_mut(&mut decoded) {
            view.copy_from_slice(&encoded);
            assert_eq!(decoded, vals);
        }
    }

    #[test]
    fn byte_view_agrees_with_write_le() {
        view_matches_codec(&[1i32, -7, i32::MAX, i32::MIN]);
        view_matches_codec(&[1i64, -7, i64::MAX]);
        view_matches_codec(&[0.5f32, -1.25, f32::MIN_POSITIVE]);
        view_matches_codec(&[0.5f64, -1.25, 1e300]);
        view_matches_codec(&[Complex64::new(1.5, -2.5), Complex64::new(0.0, 3.25)]);
    }
}
