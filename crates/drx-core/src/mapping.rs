//! The extendible mapping function `F*()` and its inverse `F*⁻¹()`
//! (paper §III), packaged as [`ExtendibleShape`].
//!
//! An `ExtendibleShape` tracks the growth history of a dense extendible
//! array *in chunk units*: the instantaneous bounds `N*_0 … N*_{k-1}`, the
//! axial vectors, and a merged segment directory used by the inverse
//! function. It is pure index arithmetic — no I/O, no element data — and is
//! the piece of metadata that DRX-MP replicates on every node so that "the
//! address of any element of the principal array can be computed and each
//! node can determine whether the element is local or remote" (§I).

use crate::axial::{AxialRecord, AxialVector};
use crate::error::{DrxError, Result};
use crate::index::{check_rank, check_rank_of, volume, Region};

/// Reference into the axial vectors for one allocated segment, kept in a
/// directory sorted by `start_addr` so `F*⁻¹` costs one binary search over
/// all `E` records (paper: `O(k + log E)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRef {
    /// Linear chunk address where this segment starts.
    pub start_addr: u64,
    /// The dimension whose extension allocated the segment.
    pub dim: usize,
    /// Index of the record within `axial[dim]`.
    pub rec: usize,
}

/// Growth history and computed-access mapping of a dense extendible array,
/// in chunk units.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtendibleShape {
    /// Instantaneous bounds `N*_j` (number of chunk indices per dimension).
    bounds: Vec<usize>,
    /// One axial vector per dimension.
    axial: Vec<AxialVector>,
    /// All segments in allocation order (== increasing `start_addr`).
    segments: Vec<SegmentRef>,
    /// Dimension extended by the most recent extension, for the
    /// "uninterrupted extension" merge rule. `None` right after creation.
    last_extended: Option<usize>,
    /// Total chunks allocated: always `∏ bounds` (the array is rectilinear).
    total: u64,
}

impl ExtendibleShape {
    /// Create the shape with an initial allocation of `initial_bounds`
    /// chunks per dimension (all must be ≥ 1).
    ///
    /// The initial allocation is laid out in row-major order, recorded as a
    /// record at index 0 on the **last** dimension whose coefficients are the
    /// ordinary row-major strides — exactly the encoding visible in the
    /// paper's Figure 3b, where `Γ_2` holds `{0; 0; (3,1,1)}` for the initial
    /// `A[4][3][1]` allocation.
    pub fn new(initial_bounds: &[usize]) -> Result<Self> {
        let k = initial_bounds.len();
        check_rank(k)?;
        if initial_bounds.contains(&0) {
            return Err(DrxError::ZeroExtent("initial bound"));
        }
        let total = volume(initial_bounds);
        let mut axial = vec![AxialVector::new(); k];
        // Row-major strides of the initial allocation; coeffs[k-1] = 1 also
        // serves as C*_l for l = k-1 in Eq. (1) because (I_l − 0)·1 equals
        // the row-major contribution of the last dimension.
        let mut coeffs = vec![1u64; k];
        for j in (0..k - 1).rev() {
            coeffs[j] = coeffs[j + 1] * initial_bounds[j + 1] as u64;
        }
        axial[k - 1].push(AxialRecord { start_index: 0, start_addr: 0, coeffs })?;
        Ok(ExtendibleShape {
            bounds: initial_bounds.to_vec(),
            axial,
            segments: vec![SegmentRef { start_addr: 0, dim: k - 1, rec: 0 }],
            last_extended: None,
            total,
        })
    }

    /// Reconstruct a shape from decoded parts (bounds, axial vectors and the
    /// last-extended marker), validating structural invariants. Used by the
    /// `.xmd` codec.
    pub fn from_parts(
        bounds: Vec<usize>,
        axial: Vec<AxialVector>,
        last_extended: Option<usize>,
    ) -> Result<Self> {
        let k = bounds.len();
        check_rank(k)?;
        if axial.len() != k {
            return Err(DrxError::RankMismatch { expected: k, got: axial.len() });
        }
        if bounds.contains(&0) {
            return Err(DrxError::ZeroExtent("bound"));
        }
        let total = volume(&bounds);
        let mut segments = Vec::new();
        for (dim, v) in axial.iter().enumerate() {
            for (rec_idx, r) in v.records().iter().enumerate() {
                if r.coeffs.len() != k {
                    return Err(DrxError::Invalid(format!(
                        "record coeffs rank {} != {k}",
                        r.coeffs.len()
                    )));
                }
                if r.start_index >= bounds[dim] {
                    return Err(DrxError::Invalid(format!(
                        "record start index {} beyond bound {} in dim {dim}",
                        r.start_index, bounds[dim]
                    )));
                }
                if r.start_addr >= total {
                    return Err(DrxError::Invalid(format!(
                        "record start address {} beyond total {total}",
                        r.start_addr
                    )));
                }
                segments.push(SegmentRef { start_addr: r.start_addr, dim, rec: rec_idx });
            }
        }
        segments.sort_by_key(|s| s.start_addr);
        match segments.first() {
            Some(s) if s.start_addr == 0 && s.dim == k - 1 => {}
            _ => {
                return Err(DrxError::Invalid(
                    "missing initial allocation record at address 0 on the last dimension".into(),
                ))
            }
        }
        if segments.windows(2).any(|w| w[0].start_addr == w[1].start_addr) {
            return Err(DrxError::Invalid("duplicate segment start addresses".into()));
        }
        if let Some(d) = last_extended {
            if d >= k {
                return Err(DrxError::Invalid(format!("last_extended {d} out of range")));
            }
        }
        Ok(ExtendibleShape { bounds, axial, segments, last_extended, total })
    }

    /// Rank `k` of the array.
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// Instantaneous bounds `N*_j` in chunk units.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Total number of allocated chunks (`∏ N*_j`).
    pub fn total_chunks(&self) -> u64 {
        self.total
    }

    /// The axial vector of one dimension.
    pub fn axial(&self, dim: usize) -> &AxialVector {
        &self.axial[dim]
    }

    /// Total number of expansion records across all axial vectors (`E`).
    pub fn record_count(&self) -> usize {
        self.axial.iter().map(|v| v.len()).sum()
    }

    /// The segment directory in allocation order.
    pub fn segments(&self) -> &[SegmentRef] {
        &self.segments
    }

    /// The dimension extended by the most recent extension, if any.
    pub fn last_extended(&self) -> Option<usize> {
        self.last_extended
    }

    /// The full chunk-index region `0..N*_j` in every dimension.
    pub fn full_region(&self) -> Region {
        Region::of_shape(&self.bounds).expect("bounds are a valid shape")
    }

    /// Extend dimension `dim` by `by` chunk indices, allocating one segment
    /// of `by × ∏_{j≠dim} N*_j` chunks at the end of the address space
    /// (paper §III-B). Existing chunk addresses are never altered.
    ///
    /// When the immediately preceding extension was of the same dimension,
    /// the existing record is reused — an "uninterrupted extension" — because
    /// its coefficients remain valid and the segment is simply longer.
    ///
    /// Returns the linear address of the first newly allocated chunk.
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<u64> {
        let k = self.rank();
        if dim >= k {
            return Err(DrxError::Invalid(format!("dimension {dim} out of range for rank {k}")));
        }
        if by == 0 {
            return Err(DrxError::ZeroExtent("extension amount"));
        }
        let first_new = self.total;
        if self.last_extended != Some(dim) {
            // Eq. (1) coefficients, computed against the bounds *before* the
            // extension: C*_dim = ∏_{j≠dim} N*_j, and for j ≠ dim
            // C*_j = ∏_{r>j, r≠dim} N*_r (dim is least-varying; all other
            // dimensions keep their relative order).
            let mut coeffs = vec![1u64; k];
            for j in (0..k).rev() {
                if j == dim {
                    continue;
                }
                let mut c = 1u64;
                for (r, &n) in self.bounds.iter().enumerate().skip(j + 1) {
                    if r != dim {
                        c *= n as u64;
                    }
                }
                coeffs[j] = c;
            }
            coeffs[dim] = self
                .bounds
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != dim)
                .map(|(_, &n)| n as u64)
                .product();
            let rec = AxialRecord { start_index: self.bounds[dim], start_addr: self.total, coeffs };
            self.axial[dim].push(rec)?;
            self.segments.push(SegmentRef {
                start_addr: self.total,
                dim,
                rec: self.axial[dim].len() - 1,
            });
        }
        self.bounds[dim] += by;
        self.total = volume(&self.bounds);
        self.last_extended = Some(dim);
        Ok(first_new)
    }

    /// The mapping function `F*()` (paper Eq. (1) and the `FunctionF∗`
    /// listing): linear chunk address of the k-dimensional chunk index.
    ///
    /// One binary search per dimension selects the candidate record with
    /// `start_index ≤ I_j`; the record with the maximum segment start address
    /// owns the chunk, and its coefficients produce the address.
    pub fn address(&self, index: &[usize]) -> Result<u64> {
        let k = self.rank();
        check_rank_of(index, k)?;
        for (&i, &n) in index.iter().zip(&self.bounds) {
            if i >= n {
                return Err(DrxError::IndexOutOfBounds {
                    index: index.to_vec(),
                    bounds: self.bounds.clone(),
                });
            }
        }
        Ok(self.address_unchecked(index))
    }

    /// `F*()` without bounds validation — the hot path used by I/O planning
    /// loops that already iterate a validated region.
    pub fn address_unchecked(&self, index: &[usize]) -> u64 {
        let mut best: Option<(usize, &AxialRecord)> = None;
        for (j, (&i, vec)) in index.iter().zip(&self.axial).enumerate() {
            if let Some(rec) = vec.search(i) {
                match best {
                    Some((_, b)) if b.start_addr >= rec.start_addr => {}
                    _ => best = Some((j, rec)),
                }
            }
        }
        let (dim, rec) = best.expect("last dimension always holds a record at index 0");
        rec.address(dim, index)
    }

    /// The inverse mapping function `F*⁻¹()` (paper §III-C): recover the
    /// k-dimensional chunk index from a linear chunk address.
    ///
    /// One binary search over the merged segment directory locates the
    /// owning record (`O(log E)`), after which the index falls out of
    /// repeated division by the stored coefficients (`O(k)`).
    pub fn index_of(&self, addr: u64) -> Result<Vec<usize>> {
        if addr >= self.total {
            return Err(DrxError::AddressOutOfBounds { address: addr, total: self.total });
        }
        let pos = self.segments.partition_point(|s| s.start_addr <= addr);
        let seg = &self.segments[pos - 1]; // pos >= 1: segment 0 starts at 0
        let rec = &self.axial[seg.dim].records()[seg.rec];
        let r = addr - rec.start_addr;
        Ok(decode_remainder(rec, seg.dim, seg.start_addr == 0, r, self.rank()))
    }

    /// `F*⁻¹` exactly as §III-C describes it: *k independent binary
    /// searches* of the axial vectors locate the record whose segment start
    /// address is the maximum lower bound of `addr`, then repeated division
    /// recovers the index.
    ///
    /// [`ExtendibleShape::index_of`] replaces the k searches with one search
    /// over the merged segment directory; this method is kept as the
    /// paper-faithful reference and for the ablation benchmark (E7). Both
    /// produce identical results (property-tested).
    pub fn index_of_searches(&self, addr: u64) -> Result<Vec<usize>> {
        if addr >= self.total {
            return Err(DrxError::AddressOutOfBounds { address: addr, total: self.total });
        }
        let mut best: Option<(usize, usize, u64)> = None; // (dim, rec idx, start)
        for (dim, v) in self.axial.iter().enumerate() {
            let recs = v.records();
            // Records are sorted by start_addr within a dimension.
            let pos = recs.partition_point(|r| r.start_addr <= addr);
            if pos > 0 {
                let start = recs[pos - 1].start_addr;
                if best.is_none_or(|(_, _, s)| start > s) {
                    best = Some((dim, pos - 1, start));
                }
            }
        }
        let (dim, rec_idx, start) = best.expect("segment 0 always starts at address 0");
        let rec = &self.axial[dim].records()[rec_idx];
        let r = addr - rec.start_addr;
        Ok(decode_remainder(rec, dim, start == 0, r, self.rank()))
    }

    /// Extend **without** the uninterrupted-extension merge rule: every call
    /// appends a fresh axial record even when the same dimension was just
    /// extended. Addresses are identical to [`ExtendibleShape::extend`]
    /// (the coefficients do not involve the extended bound); only the record
    /// count `E` grows faster. Exists for the E7 ablation that measures how
    /// merging keeps `F*` flat in the number of extensions.
    pub fn extend_unmerged(&mut self, dim: usize, by: usize) -> Result<u64> {
        // Force the non-merge path by clearing the run tracker.
        self.last_extended = None;
        let first = self.extend(dim, by)?;
        // Leave the tracker cleared so a following `extend` cannot merge
        // with the record this call created either.
        self.last_extended = None;
        Ok(first)
    }

    /// Linear addresses (in increasing index order, not address order) of
    /// every chunk inside a chunk-index region.
    pub fn region_addresses(&self, region: &Region) -> Result<Vec<(Vec<usize>, u64)>> {
        if region.rank() != self.rank() {
            return Err(DrxError::RankMismatch { expected: self.rank(), got: region.rank() });
        }
        for (j, &h) in region.hi().iter().enumerate() {
            if h > self.bounds[j] {
                return Err(DrxError::IndexOutOfBounds {
                    index: region.hi().to_vec(),
                    bounds: self.bounds.clone(),
                });
            }
        }
        Ok(region
            .iter()
            .map(|idx| {
                let a = self.address_unchecked(&idx);
                (idx, a)
            })
            .collect())
    }
}

/// Mixed-radix decode of a segment-relative remainder into a chunk index.
///
/// For the initial allocation record (`initial == true`) the coefficients
/// are plain row-major strides, so division proceeds in ascending dimension
/// order (last dimension fastest). For an extension record, the extended
/// dimension is least-varying inside the segment (largest coefficient) and
/// divides first, then the remaining dimensions in their relative order.
fn decode_remainder(
    rec: &AxialRecord,
    dim: usize,
    initial: bool,
    mut r: u64,
    k: usize,
) -> Vec<usize> {
    let mut index = vec![0usize; k];
    if initial {
        for (slot, &c) in index.iter_mut().zip(&rec.coeffs) {
            *slot = (r / c) as usize;
            r %= c;
        }
    } else {
        index[dim] = rec.start_index + (r / rec.coeffs[dim]) as usize;
        r %= rec.coeffs[dim];
        for (j, (slot, &c)) in index.iter_mut().zip(&rec.coeffs).enumerate() {
            if j == dim {
                continue;
            }
            *slot = (r / c) as usize;
            r %= c;
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Figure 3 history: initial A[4][3][1]; extend D2 by 2
    /// (two uninterrupted extensions of one index each), D1 by 1, D0 by 2,
    /// D2 by 1.
    fn figure3() -> ExtendibleShape {
        let mut s = ExtendibleShape::new(&[4, 3, 1]).unwrap();
        s.extend(2, 1).unwrap();
        s.extend(2, 1).unwrap(); // uninterrupted: merges into the same record
        s.extend(1, 1).unwrap();
        s.extend(0, 2).unwrap();
        s.extend(2, 1).unwrap();
        s
    }

    #[test]
    fn figure3_bounds_and_totals() {
        let s = figure3();
        assert_eq!(s.bounds(), &[6, 4, 4]);
        assert_eq!(s.total_chunks(), 96);
    }

    #[test]
    fn figure3_axial_vectors_match_paper() {
        let s = figure3();
        // Γ_0: one real record {N*=4, M*=48, C=(12,3,1)}.
        let g0 = s.axial(0).records();
        assert_eq!(g0.len(), 1);
        assert_eq!(g0[0], AxialRecord { start_index: 4, start_addr: 48, coeffs: vec![12, 3, 1] });
        // Γ_1: one real record {N*=3, M*=36, C=(3,12,1)}.
        let g1 = s.axial(1).records();
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0], AxialRecord { start_index: 3, start_addr: 36, coeffs: vec![3, 12, 1] });
        // Γ_2: initial {0,0,(3,1,1)}, merged extension {1,12,(3,1,12)},
        // later {3,72,(4,1,24)}.
        let g2 = s.axial(2).records();
        assert_eq!(g2.len(), 3);
        assert_eq!(g2[0], AxialRecord { start_index: 0, start_addr: 0, coeffs: vec![3, 1, 1] });
        assert_eq!(g2[1], AxialRecord { start_index: 1, start_addr: 12, coeffs: vec![3, 1, 12] });
        assert_eq!(g2[2], AxialRecord { start_index: 3, start_addr: 72, coeffs: vec![4, 1, 24] });
        // Paper's E counts include the display sentinels: E0=2, E1=2, E2=3.
        assert_eq!(s.axial(0).display_records(3).len(), 2);
        assert_eq!(s.axial(1).display_records(3).len(), 2);
        assert_eq!(s.axial(2).display_records(3).len(), 3);
    }

    #[test]
    fn figure3_spot_addresses() {
        let s = figure3();
        // §II: chunk A[2,1,0] at address 7, chunk A[3,1,2] at address 34.
        assert_eq!(s.address(&[2, 1, 0]).unwrap(), 7);
        assert_eq!(s.address(&[3, 1, 2]).unwrap(), 34);
        // §III-B worked example: F*(⟨4,2,2⟩) = 56.
        assert_eq!(s.address(&[4, 2, 2]).unwrap(), 56);
    }

    #[test]
    fn figure3_bijective_over_all_96_chunks() {
        let s = figure3();
        let mut seen = [false; 96];
        for idx in s.full_region().iter() {
            let a = s.address(&idx).unwrap() as usize;
            assert!(!seen[a], "duplicate address {a} for {idx:?}");
            seen[a] = true;
            assert_eq!(s.index_of(a as u64).unwrap(), idx);
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn figure1_layout() {
        // Figure 1 history (2-D, chunk grid): initial 1×1, extend D1 by 1,
        // D0 by 1, D0 by 1 (uninterrupted), D1 by 1, D0 by 1, D1 by 1,
        // D0 by 1 — yielding the 5×4 grid shown in the figure.
        let mut s = ExtendibleShape::new(&[1, 1]).unwrap();
        s.extend(1, 1).unwrap(); // chunk 1
        s.extend(0, 1).unwrap(); // chunks 2,3
        s.extend(0, 1).unwrap(); // chunks 4,5 (uninterrupted)
        s.extend(1, 1).unwrap(); // chunks 6,7,8
        s.extend(0, 1).unwrap(); // chunks 9,10,11
        s.extend(1, 1).unwrap(); // chunks 12..=15
        s.extend(0, 1).unwrap(); // chunks 16..=19
        assert_eq!(s.bounds(), &[5, 4]);
        let grid: Vec<Vec<u64>> =
            (0..5).map(|i| (0..4).map(|j| s.address(&[i, j]).unwrap()).collect()).collect();
        assert_eq!(
            grid,
            vec![
                vec![0, 1, 6, 12],
                vec![2, 3, 7, 13],
                vec![4, 5, 8, 14],
                vec![9, 10, 11, 15],
                vec![16, 17, 18, 19],
            ]
        );
    }

    #[test]
    fn extension_returns_first_new_address_and_preserves_prefix() {
        let mut s = ExtendibleShape::new(&[2, 2]).unwrap();
        let before: Vec<u64> = s.full_region().iter().map(|i| s.address(&i).unwrap()).collect();
        let first_new = s.extend(0, 3).unwrap();
        assert_eq!(first_new, 4);
        let after: Vec<u64> = ExtendibleShape::new(&[2, 2])
            .unwrap()
            .full_region()
            .iter()
            .map(|i| s.address(&i).unwrap())
            .collect();
        assert_eq!(before, after, "extension must not move existing chunks");
        assert_eq!(s.total_chunks(), 10);
    }

    #[test]
    fn uninterrupted_extensions_share_one_record() {
        let mut s = ExtendibleShape::new(&[2, 2]).unwrap();
        s.extend(0, 1).unwrap();
        s.extend(0, 1).unwrap();
        s.extend(0, 5).unwrap();
        assert_eq!(s.axial(0).len(), 1, "merged into one record");
        s.extend(1, 1).unwrap();
        s.extend(0, 1).unwrap();
        assert_eq!(s.axial(0).len(), 2, "an intervening extension of D1 breaks the run");
        assert_eq!(s.record_count(), 1 + 2 + 1); // initial + two on D0 + one on D1
    }

    #[test]
    fn one_dimensional_array_is_append_only() {
        let mut s = ExtendibleShape::new(&[3]).unwrap();
        s.extend(0, 2).unwrap();
        s.extend(0, 4).unwrap();
        for i in 0..9 {
            assert_eq!(s.address(&[i]).unwrap(), i as u64);
            assert_eq!(s.index_of(i as u64).unwrap(), vec![i]);
        }
        assert_eq!(s.axial(0).len(), 2); // initial + one merged extension record
    }

    #[test]
    fn errors_on_bad_inputs() {
        let mut s = ExtendibleShape::new(&[2, 2]).unwrap();
        assert!(ExtendibleShape::new(&[]).is_err());
        assert!(ExtendibleShape::new(&[0, 2]).is_err());
        assert!(s.extend(2, 1).is_err());
        assert!(s.extend(0, 0).is_err());
        assert!(s.address(&[2, 0]).is_err());
        assert!(s.address(&[0]).is_err());
        assert!(s.index_of(4).is_err());
    }

    #[test]
    fn index_of_searches_matches_merged_directory() {
        let s = figure3();
        for a in 0..s.total_chunks() {
            assert_eq!(s.index_of(a).unwrap(), s.index_of_searches(a).unwrap(), "addr {a}");
        }
        assert!(s.index_of_searches(96).is_err());
    }

    #[test]
    fn unmerged_extension_same_addresses_more_records() {
        let mut merged = ExtendibleShape::new(&[2, 2]).unwrap();
        let mut unmerged = ExtendibleShape::new(&[2, 2]).unwrap();
        for _ in 0..5 {
            merged.extend(0, 1).unwrap();
            unmerged.extend_unmerged(0, 1).unwrap();
        }
        assert_eq!(merged.axial(0).len(), 1);
        assert_eq!(unmerged.axial(0).len(), 5);
        assert_eq!(merged.bounds(), unmerged.bounds());
        for idx in merged.full_region().iter() {
            assert_eq!(merged.address(&idx).unwrap(), unmerged.address(&idx).unwrap());
        }
        for a in 0..merged.total_chunks() {
            assert_eq!(unmerged.index_of(a).unwrap(), merged.index_of(a).unwrap());
        }
    }

    #[test]
    fn region_addresses_cover_region() {
        let mut s = ExtendibleShape::new(&[2, 3]).unwrap();
        s.extend(1, 2).unwrap();
        let region = Region::new(vec![0, 2], vec![2, 5]).unwrap();
        let pairs = s.region_addresses(&region).unwrap();
        assert_eq!(pairs.len() as u64, region.volume());
        for (idx, addr) in &pairs {
            assert_eq!(s.address(idx).unwrap(), *addr);
        }
        let bad = Region::new(vec![0, 0], vec![3, 5]).unwrap();
        assert!(s.region_addresses(&bad).is_err());
    }

    #[test]
    fn row_major_order_is_default_before_any_extension() {
        // Until the array is extended, F* must agree with the conventional
        // row-major mapping of the initial bounds.
        let s = ExtendibleShape::new(&[3, 4, 5]).unwrap();
        for idx in s.full_region().iter() {
            let expect = crate::index::row_major_offset(&idx, &[3, 4, 5]).unwrap();
            assert_eq!(s.address(&idx).unwrap(), expect);
        }
    }
}
