//! Chunking: the regular partition of the element index space into
//! fixed-shape k-dimensional sub-arrays (paper §I).
//!
//! "A chunk is a k-dimensional sub-array of elements whose shape is
//! characterized by `[c_0, c_1, …, c_{k-1}]` … A chunk is the unit of access
//! of data between memory and file storage." Elements within a chunk are laid
//! out in conventional row-major order (§II-A).

use crate::error::{DrxError, Result};
use crate::index::{
    check_rank, check_rank_of, offset_with_strides, row_major_strides, volume, Region,
};

/// The fixed chunk shape of an array and the element↔chunk index arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunking {
    shape: Vec<usize>,
    /// Row-major strides inside one chunk, cached.
    strides: Vec<u64>,
}

impl Chunking {
    /// Create a chunking with the given per-dimension chunk extents
    /// (all must be ≥ 1).
    pub fn new(shape: &[usize]) -> Result<Self> {
        check_rank(shape.len())?;
        if shape.contains(&0) {
            return Err(DrxError::ZeroExtent("chunk extent"));
        }
        let strides = row_major_strides(shape);
        Ok(Chunking { shape: shape.to_vec(), strides })
    }

    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The chunk shape `[c_0 … c_{k-1}]`.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Elements per chunk, `B = ∏ c_r`.
    pub fn chunk_elems(&self) -> u64 {
        volume(&self.shape)
    }

    /// Row-major strides inside one chunk (the frame used when scattering
    /// between chunk buffers and user buffers).
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }

    /// Split an element index into (chunk index, within-chunk element index).
    pub fn split(&self, element: &[usize]) -> Result<(Vec<usize>, Vec<usize>)> {
        check_rank_of(element, self.rank())?;
        let mut chunk = vec![0usize; self.rank()];
        let mut within = vec![0usize; self.rank()];
        for (j, (&e, &c)) in element.iter().zip(&self.shape).enumerate() {
            chunk[j] = e / c;
            within[j] = e % c;
        }
        Ok((chunk, within))
    }

    /// Chunk index containing an element index.
    pub fn chunk_of(&self, element: &[usize]) -> Result<Vec<usize>> {
        Ok(self.split(element)?.0)
    }

    /// Row-major offset of a within-chunk index inside its chunk
    /// ("computing the actual location of an element within the chunk is
    /// trivial", §II-A).
    pub fn within_offset(&self, within: &[usize]) -> u64 {
        offset_with_strides(within, &self.strides)
    }

    /// Combined: element index → (chunk index, row-major offset in chunk).
    pub fn locate(&self, element: &[usize]) -> Result<(Vec<usize>, u64)> {
        let (chunk, within) = self.split(element)?;
        let off = self.within_offset(&within);
        Ok((chunk, off))
    }

    /// Chunk-grid bounds needed to cover `element_bounds` elements per
    /// dimension (`I_i = ⌈N_i / c_i⌉`; the paper's `Σ_{I_i−1} c < N_i ≤ Σ_{I_i} c`).
    pub fn grid_for(&self, element_bounds: &[usize]) -> Result<Vec<usize>> {
        check_rank_of(element_bounds, self.rank())?;
        Ok(element_bounds.iter().zip(&self.shape).map(|(&n, &c)| n.div_ceil(c)).collect())
    }

    /// The element region covered by a chunk index (unclipped; edge chunks
    /// are allocated full even when the array bound falls inside them —
    /// "the maximum index of a dimension does not necessarily fall exactly on
    /// a segment boundary", §II-A).
    pub fn chunk_elements(&self, chunk: &[usize]) -> Result<Region> {
        check_rank_of(chunk, self.rank())?;
        let lo: Vec<usize> = chunk.iter().zip(&self.shape).map(|(&i, &c)| i * c).collect();
        let hi: Vec<usize> = lo.iter().zip(&self.shape).map(|(&l, &c)| l + c).collect();
        Region::new(lo, hi)
    }

    /// The element region covered by a chunk, clipped to the array's
    /// instantaneous element bounds (the *valid* part of an edge chunk).
    pub fn chunk_valid_elements(
        &self,
        chunk: &[usize],
        element_bounds: &[usize],
    ) -> Result<Option<Region>> {
        let full = self.chunk_elements(chunk)?;
        let bounds = Region::of_shape(element_bounds)?;
        Ok(full.intersect(&bounds))
    }

    /// The chunk-index region covering an element region (chunk-granular
    /// bounding box).
    pub fn chunks_covering(&self, region: &Region) -> Result<Region> {
        if region.rank() != self.rank() {
            return Err(DrxError::RankMismatch { expected: self.rank(), got: region.rank() });
        }
        let lo: Vec<usize> = region.lo().iter().zip(&self.shape).map(|(&l, &c)| l / c).collect();
        let hi: Vec<usize> = region
            .hi()
            .iter()
            .zip(region.lo())
            .zip(&self.shape)
            .map(|((&h, &l), &c)| if h == l { l / c } else { h.div_ceil(c) })
            .collect();
        Region::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_within_offset_2x3() {
        // Figure 1: chunks of shape 2×3.
        let c = Chunking::new(&[2, 3]).unwrap();
        assert_eq!(c.chunk_elems(), 6);
        let (chunk, within) = c.split(&[9, 7]).unwrap();
        assert_eq!(chunk, vec![4, 2]);
        assert_eq!(within, vec![1, 1]);
        assert_eq!(c.within_offset(&within), 4); // row-major in a 2×3 chunk
        let (chunk, off) = c.locate(&[0, 0]).unwrap();
        assert_eq!((chunk, off), (vec![0, 0], 0));
    }

    #[test]
    fn grid_for_rounds_up() {
        let c = Chunking::new(&[2, 3]).unwrap();
        // Figure 1: A[10][12] → 5×4 chunk grid; and bound 10 in dim 1 also
        // needs 4 chunks (⌈10/3⌉).
        assert_eq!(c.grid_for(&[10, 12]).unwrap(), vec![5, 4]);
        assert_eq!(c.grid_for(&[10, 10]).unwrap(), vec![5, 4]);
        assert_eq!(c.grid_for(&[1, 1]).unwrap(), vec![1, 1]);
        assert_eq!(c.grid_for(&[0, 5]).unwrap(), vec![0, 2]);
    }

    #[test]
    fn chunk_element_regions() {
        let c = Chunking::new(&[2, 3]).unwrap();
        let r = c.chunk_elements(&[4, 2]).unwrap();
        assert_eq!(r, Region::new(vec![8, 6], vec![10, 9]).unwrap());
        // Clipped against bounds [10, 10]: the chunk at [4, 3] covers
        // elements [8..10, 9..12] of which only columns 9 is valid.
        let v = c.chunk_valid_elements(&[4, 3], &[10, 10]).unwrap().unwrap();
        assert_eq!(v, Region::new(vec![8, 9], vec![10, 10]).unwrap());
        // A chunk fully beyond the bounds has no valid part.
        assert!(c.chunk_valid_elements(&[5, 0], &[10, 10]).unwrap().is_none());
    }

    #[test]
    fn chunks_covering_element_region() {
        let c = Chunking::new(&[2, 3]).unwrap();
        let r = Region::new(vec![1, 2], vec![5, 7]).unwrap();
        let cr = c.chunks_covering(&r).unwrap();
        assert_eq!(cr, Region::new(vec![0, 0], vec![3, 3]).unwrap());
        // Exactly chunk-aligned region.
        let r = Region::new(vec![2, 3], vec![4, 9]).unwrap();
        assert_eq!(c.chunks_covering(&r).unwrap(), Region::new(vec![1, 1], vec![2, 3]).unwrap());
        // Empty region maps to an empty chunk region.
        let r = Region::new(vec![2, 3], vec![2, 9]).unwrap();
        assert!(c.chunks_covering(&r).unwrap().is_empty());
    }

    #[test]
    fn rejects_zero_extents_and_rank_mismatch() {
        assert!(Chunking::new(&[2, 0]).is_err());
        assert!(Chunking::new(&[]).is_err());
        let c = Chunking::new(&[2, 3]).unwrap();
        assert!(c.split(&[1]).is_err());
        assert!(c.grid_for(&[1, 2, 3]).is_err());
    }
}
