//! k-dimensional indices, shapes, and rectilinear regions.
//!
//! All arrays in this workspace are *dense*: a shape `[N0, N1, …, Nk-1]`
//! describes `∏ Ni` elements, each addressed by a k-dimensional index
//! `⟨i0, i1, …, ik-1⟩` with `0 ≤ ij < Nj` (paper §I).

use crate::error::{DrxError, Result, MAX_RANK};

/// Validate a rank value.
pub fn check_rank(k: usize) -> Result<()> {
    if k == 0 || k > MAX_RANK {
        Err(DrxError::BadRank(k))
    } else {
        Ok(())
    }
}

/// Validate that `index` has rank `k`.
pub fn check_rank_of(index: &[usize], k: usize) -> Result<()> {
    if index.len() != k {
        Err(DrxError::RankMismatch { expected: k, got: index.len() })
    } else {
        Ok(())
    }
}

/// Number of elements described by a shape. Panics on overflow (shapes are
/// validated to fit in `u64` at creation sites).
pub fn volume(shape: &[usize]) -> u64 {
    shape.iter().map(|&n| n as u64).product()
}

/// Row-major (C-order) strides for a shape: `C_j = ∏_{r>j} N_r`.
///
/// This is Eq. (3) of the paper — the coefficient vector of a conventional
/// array mapping.
pub fn row_major_strides(shape: &[usize]) -> Vec<u64> {
    let k = shape.len();
    let mut strides = vec![1u64; k];
    for j in (0..k.saturating_sub(1)).rev() {
        strides[j] = strides[j + 1] * shape[j + 1] as u64;
    }
    strides
}

/// Column-major (FORTRAN-order) strides: `C_j = ∏_{r<j} N_r`.
pub fn col_major_strides(shape: &[usize]) -> Vec<u64> {
    let k = shape.len();
    let mut strides = vec![1u64; k];
    for j in 1..k {
        strides[j] = strides[j - 1] * shape[j - 1] as u64;
    }
    strides
}

/// Linear offset of `index` under the given strides (dot product).
pub fn offset_with_strides(index: &[usize], strides: &[u64]) -> u64 {
    index.iter().zip(strides).map(|(&i, &s)| i as u64 * s).sum()
}

/// Row-major linear offset of `index` in `shape`, with bounds checking.
pub fn row_major_offset(index: &[usize], shape: &[usize]) -> Result<u64> {
    check_rank_of(index, shape.len())?;
    for (&i, &n) in index.iter().zip(shape) {
        if i >= n {
            return Err(DrxError::IndexOutOfBounds {
                index: index.to_vec(),
                bounds: shape.to_vec(),
            });
        }
    }
    Ok(offset_with_strides(index, &row_major_strides(shape)))
}

/// Inverse of [`row_major_offset`]: recover the k-dimensional index from a
/// linear offset by repeated division (paper §III-C, conventional case).
pub fn row_major_unflatten(mut q: u64, shape: &[usize]) -> Result<Vec<usize>> {
    let total = volume(shape);
    if q >= total {
        return Err(DrxError::AddressOutOfBounds { address: q, total });
    }
    let strides = row_major_strides(shape);
    let mut index = vec![0usize; shape.len()];
    for (j, &s) in strides.iter().enumerate() {
        index[j] = (q / s) as usize;
        q %= s;
    }
    Ok(index)
}

/// A half-open rectilinear region `lo[j] .. hi[j]` in each dimension.
///
/// Regions describe sub-arrays on disk and in memory, as well as the *zones*
/// assigned to processes (paper §II-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl Region {
    /// Build a region; `lo[j] <= hi[j]` is required for every dimension.
    pub fn new(lo: Vec<usize>, hi: Vec<usize>) -> Result<Self> {
        if lo.len() != hi.len() {
            return Err(DrxError::RankMismatch { expected: lo.len(), got: hi.len() });
        }
        check_rank(lo.len())?;
        for (j, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            if l > h {
                return Err(DrxError::Invalid(format!("region lo {l} > hi {h} in dim {j}")));
            }
        }
        Ok(Region { lo, hi })
    }

    /// The full region of a shape: `0..N_j` in every dimension.
    pub fn of_shape(shape: &[usize]) -> Result<Self> {
        Region::new(vec![0; shape.len()], shape.to_vec())
    }

    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Extent (`hi - lo`) per dimension.
    pub fn extents(&self) -> Vec<usize> {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).collect()
    }

    /// Number of cells contained.
    pub fn volume(&self) -> u64 {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| (h - l) as u64).product()
    }

    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(&l, &h)| l == h)
    }

    pub fn contains(&self, index: &[usize]) -> bool {
        index.len() == self.rank()
            && index.iter().zip(self.lo.iter().zip(&self.hi)).all(|(&i, (&l, &h))| i >= l && i < h)
    }

    /// Intersection with another region of the same rank; `None` when empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        if self.rank() != other.rank() {
            return None;
        }
        let lo: Vec<usize> = self.lo.iter().zip(&other.lo).map(|(&a, &b)| a.max(b)).collect();
        let hi: Vec<usize> = self.hi.iter().zip(&other.hi).map(|(&a, &b)| a.min(b)).collect();
        if lo.iter().zip(&hi).any(|(&l, &h)| l >= h) {
            None
        } else {
            Some(Region { lo, hi })
        }
    }

    /// Iterate all contained indices in row-major order.
    pub fn iter(&self) -> RegionIter {
        RegionIter::new(self.clone())
    }

    /// Split the region into `count` contiguous slabs along `axis`
    /// (near-equal widths, the first `extent % count` slabs one wider).
    /// Slabs may be empty when `count` exceeds the extent. The out-of-core
    /// panel-traversal building block used by the access-order experiments.
    pub fn tiles(&self, axis: usize, count: usize) -> Result<Vec<Region>> {
        if axis >= self.rank() {
            return Err(DrxError::Invalid(format!(
                "axis {axis} out of range for rank {}",
                self.rank()
            )));
        }
        if count == 0 {
            return Err(DrxError::ZeroExtent("tile count"));
        }
        let extent = self.hi[axis] - self.lo[axis];
        let base = extent / count;
        let rem = extent % count;
        let mut out = Vec::with_capacity(count);
        let mut start = self.lo[axis];
        for t in 0..count {
            let width = base + usize::from(t < rem);
            let mut lo = self.lo.clone();
            let mut hi = self.hi.clone();
            lo[axis] = start;
            hi[axis] = start + width;
            start += width;
            out.push(Region { lo, hi });
        }
        Ok(out)
    }

    /// The offset of `index` within this region, row-major over the extents.
    ///
    /// Used to place an element read from disk into the right slot of an
    /// in-memory sub-array buffer (paper §II-A: "Once the k-dimensional index
    /// is known the element can be assigned to the desired location in
    /// memory").
    pub fn local_offset(&self, index: &[usize]) -> Result<u64> {
        if !self.contains(index) {
            return Err(DrxError::IndexOutOfBounds {
                index: index.to_vec(),
                bounds: self.hi.clone(),
            });
        }
        let rel: Vec<usize> = index.iter().zip(&self.lo).map(|(&i, &l)| i - l).collect();
        Ok(offset_with_strides(&rel, &row_major_strides(&self.extents())))
    }
}

/// Walk every cell of `region` in row-major order, giving `f` two linear
/// offsets per cell computed against two (origin, strides) frames:
/// `off_x = Σ_j (cell[j] − origin_x[j]) · strides_x[j]`.
///
/// This is the allocation-free inner loop of every scatter/gather between a
/// chunk buffer (frame A: the chunk's element origin and in-chunk strides)
/// and a user buffer (frame B: the request region's origin and layout
/// strides). Offsets are maintained incrementally by the odometer — no
/// per-cell index vectors or dot products.
///
/// Requirements (debug-asserted): `region` is contained in both frames,
/// i.e. `origin_?[j] ≤ region.lo()[j]` for every dimension.
pub fn for_each_offset_pair(
    region: &Region,
    origin_a: &[usize],
    strides_a: &[u64],
    origin_b: &[usize],
    strides_b: &[u64],
    mut f: impl FnMut(u64, u64),
) {
    let k = region.rank();
    debug_assert_eq!(origin_a.len(), k);
    debug_assert_eq!(origin_b.len(), k);
    if region.is_empty() {
        return;
    }
    debug_assert!(region.lo().iter().zip(origin_a).all(|(&l, &o)| l >= o));
    debug_assert!(region.lo().iter().zip(origin_b).all(|(&l, &o)| l >= o));
    let mut idx = region.lo().to_vec();
    let mut off_a: u64 =
        idx.iter().zip(origin_a).zip(strides_a).map(|((&i, &o), &s)| (i - o) as u64 * s).sum();
    let mut off_b: u64 =
        idx.iter().zip(origin_b).zip(strides_b).map(|((&i, &o), &s)| (i - o) as u64 * s).sum();
    loop {
        f(off_a, off_b);
        // Odometer increment, last dimension fastest.
        let mut j = k;
        loop {
            if j == 0 {
                return;
            }
            j -= 1;
            idx[j] += 1;
            off_a += strides_a[j];
            off_b += strides_b[j];
            if idx[j] < region.hi()[j] {
                break;
            }
            let span = (region.hi()[j] - region.lo()[j]) as u64;
            off_a -= strides_a[j] * span;
            off_b -= strides_b[j] * span;
            idx[j] = region.lo()[j];
            if j == 0 {
                return;
            }
        }
    }
}

/// Row-granular variant of [`for_each_offset_pair`]: walk the region one
/// innermost row (all dimensions fixed except the last) at a time, giving
/// `f` the two frame offsets of the row's first cell plus the row length.
///
/// This is the planning loop of the memcpy scatter/gather kernels: when
/// the last dimension has stride 1 in both frames, each callback is one
/// contiguous `row_len`-element copy instead of `row_len` closure calls.
/// Offsets are maintained incrementally; no per-row index vectors.
///
/// Requirements (debug-asserted) as for [`for_each_offset_pair`]:
/// `origin_?[j] ≤ region.lo()[j]` for every dimension.
pub fn for_each_row_pair(
    region: &Region,
    origin_a: &[usize],
    strides_a: &[u64],
    origin_b: &[usize],
    strides_b: &[u64],
    mut f: impl FnMut(u64, u64, usize),
) {
    let k = region.rank();
    debug_assert_eq!(origin_a.len(), k);
    debug_assert_eq!(origin_b.len(), k);
    if region.is_empty() {
        return;
    }
    debug_assert!(region.lo().iter().zip(origin_a).all(|(&l, &o)| l >= o));
    debug_assert!(region.lo().iter().zip(origin_b).all(|(&l, &o)| l >= o));
    let row_len = region.hi()[k - 1] - region.lo()[k - 1];
    let mut idx = region.lo().to_vec();
    let mut off_a: u64 =
        idx.iter().zip(origin_a).zip(strides_a).map(|((&i, &o), &s)| (i - o) as u64 * s).sum();
    let mut off_b: u64 =
        idx.iter().zip(origin_b).zip(strides_b).map(|((&i, &o), &s)| (i - o) as u64 * s).sum();
    loop {
        f(off_a, off_b, row_len);
        // Odometer over the leading dimensions only.
        let mut j = k - 1;
        loop {
            if j == 0 {
                return;
            }
            j -= 1;
            idx[j] += 1;
            off_a += strides_a[j];
            off_b += strides_b[j];
            if idx[j] < region.hi()[j] {
                break;
            }
            let span = (region.hi()[j] - region.lo()[j]) as u64;
            off_a -= strides_a[j] * span;
            off_b -= strides_b[j] * span;
            idx[j] = region.lo()[j];
            if j == 0 {
                return;
            }
        }
    }
}

/// Row-major iterator over the cells of a [`Region`].
pub struct RegionIter {
    region: Region,
    cursor: Vec<usize>,
    done: bool,
}

impl RegionIter {
    fn new(region: Region) -> Self {
        let done = region.is_empty();
        let cursor = region.lo.clone();
        RegionIter { region, cursor, done }
    }
}

impl Iterator for RegionIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.cursor.clone();
        // Odometer increment, last dimension fastest (row-major).
        let k = self.region.rank();
        let mut j = k;
        loop {
            if j == 0 {
                self.done = true;
                break;
            }
            j -= 1;
            self.cursor[j] += 1;
            if self.cursor[j] < self.region.hi[j] {
                break;
            }
            self.cursor[j] = self.region.lo[j];
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_and_col_major() {
        let shape = [4, 3, 2];
        assert_eq!(row_major_strides(&shape), vec![6, 2, 1]);
        assert_eq!(col_major_strides(&shape), vec![1, 4, 12]);
    }

    #[test]
    fn row_major_offset_matches_paper_eq3() {
        // A⟨i0,i1⟩ in A[10][12]: q = 12*i0 + i1.
        let shape = [10, 12];
        assert_eq!(row_major_offset(&[0, 0], &shape).unwrap(), 0);
        assert_eq!(row_major_offset(&[2, 5], &shape).unwrap(), 29);
        assert_eq!(row_major_offset(&[9, 11], &shape).unwrap(), 119);
        assert!(row_major_offset(&[10, 0], &shape).is_err());
        assert!(row_major_offset(&[0, 12], &shape).is_err());
    }

    #[test]
    fn unflatten_is_inverse_of_offset() {
        let shape = [3, 4, 5];
        for q in 0..volume(&shape) {
            let idx = row_major_unflatten(q, &shape).unwrap();
            assert_eq!(row_major_offset(&idx, &shape).unwrap(), q);
        }
        assert!(row_major_unflatten(60, &shape).is_err());
    }

    #[test]
    fn rank_checks() {
        assert!(check_rank(0).is_err());
        assert!(check_rank(1).is_ok());
        assert!(check_rank(MAX_RANK).is_ok());
        assert!(check_rank(MAX_RANK + 1).is_err());
        assert!(check_rank_of(&[1, 2], 3).is_err());
    }

    #[test]
    fn region_basics() {
        let r = Region::new(vec![1, 2], vec![3, 5]).unwrap();
        assert_eq!(r.volume(), 6);
        assert_eq!(r.extents(), vec![2, 3]);
        assert!(r.contains(&[1, 2]));
        assert!(r.contains(&[2, 4]));
        assert!(!r.contains(&[3, 2]));
        assert!(!r.contains(&[0, 2]));
        assert!(Region::new(vec![2], vec![1]).is_err());
    }

    #[test]
    fn region_iter_row_major() {
        let r = Region::new(vec![0, 1], vec![2, 3]).unwrap();
        let cells: Vec<Vec<usize>> = r.iter().collect();
        assert_eq!(cells, vec![vec![0, 1], vec![0, 2], vec![1, 1], vec![1, 2]]);
    }

    #[test]
    fn region_iter_counts_match_volume() {
        let r = Region::new(vec![1, 0, 2], vec![3, 2, 5]).unwrap();
        assert_eq!(r.iter().count() as u64, r.volume());
    }

    #[test]
    fn empty_region_iterates_nothing() {
        let r = Region::new(vec![2, 2], vec![2, 5]).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
        assert_eq!(r.volume(), 0);
    }

    #[test]
    fn region_intersection() {
        let a = Region::new(vec![0, 0], vec![4, 4]).unwrap();
        let b = Region::new(vec![2, 3], vec![6, 8]).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Region::new(vec![2, 3], vec![4, 4]).unwrap());
        let c = Region::new(vec![4, 0], vec![5, 4]).unwrap();
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn offset_pair_walk_matches_naive_computation() {
        let region = Region::new(vec![2, 1, 3], vec![4, 4, 5]).unwrap();
        let origin_a = [2, 0, 3];
        let strides_a = [20, 4, 1]; // a chunk-like frame
        let origin_b = [2, 1, 3];
        let strides_b = col_major_strides(&region.extents()); // a Fortran user buffer
        let mut got = Vec::new();
        for_each_offset_pair(&region, &origin_a, &strides_a, &origin_b, &strides_b, |a, b| {
            got.push((a, b));
        });
        let expected: Vec<(u64, u64)> = region
            .iter()
            .map(|idx| {
                let rel_a: Vec<usize> = idx.iter().zip(&origin_a).map(|(&i, &o)| i - o).collect();
                let rel_b: Vec<usize> = idx.iter().zip(&origin_b).map(|(&i, &o)| i - o).collect();
                (offset_with_strides(&rel_a, &strides_a), offset_with_strides(&rel_b, &strides_b))
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn row_pair_walk_expands_to_offset_pair_walk() {
        let region = Region::new(vec![2, 1, 3], vec![4, 4, 7]).unwrap();
        let origin_a = [2, 0, 3];
        let strides_a = [40, 8, 1];
        let origin_b = [2, 1, 3];
        let strides_b = row_major_strides(&region.extents());
        let mut by_rows = Vec::new();
        for_each_row_pair(&region, &origin_a, &strides_a, &origin_b, &strides_b, |a, b, n| {
            for t in 0..n as u64 {
                by_rows.push((a + t * strides_a[2], b + t * strides_b[2]));
            }
        });
        let mut by_cells = Vec::new();
        for_each_offset_pair(&region, &origin_a, &strides_a, &origin_b, &strides_b, |a, b| {
            by_cells.push((a, b));
        });
        assert_eq!(by_rows, by_cells);
    }

    #[test]
    fn row_pair_walk_rank_one_is_single_row() {
        let region = Region::new(vec![3], vec![9]).unwrap();
        let mut rows = Vec::new();
        for_each_row_pair(&region, &[1], &[1], &[3], &[1], |a, b, n| rows.push((a, b, n)));
        assert_eq!(rows, vec![(2, 0, 6)]);
        let empty = Region::new(vec![3], vec![3]).unwrap();
        for_each_row_pair(&empty, &[0], &[1], &[0], &[1], |_, _, _| unreachable!());
    }

    #[test]
    fn offset_pair_walk_empty_region_is_noop() {
        let region = Region::new(vec![1, 1], vec![1, 3]).unwrap();
        let mut called = false;
        for_each_offset_pair(&region, &[0, 0], &[3, 1], &[1, 1], &[2, 1], |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn tiles_partition_along_an_axis() {
        let r = Region::new(vec![2, 0], vec![9, 4]).unwrap(); // 7×4
        let tiles = r.tiles(0, 3).unwrap();
        assert_eq!(tiles.len(), 3);
        // Widths 3, 2, 2; contiguous; all share the other axis.
        assert_eq!(tiles[0], Region::new(vec![2, 0], vec![5, 4]).unwrap());
        assert_eq!(tiles[1], Region::new(vec![5, 0], vec![7, 4]).unwrap());
        assert_eq!(tiles[2], Region::new(vec![7, 0], vec![9, 4]).unwrap());
        let total: u64 = tiles.iter().map(|t| t.volume()).sum();
        assert_eq!(total, r.volume());
        // More tiles than extent → trailing empties.
        let tiles = r.tiles(1, 6).unwrap();
        assert_eq!(tiles.iter().filter(|t| t.is_empty()).count(), 2);
        assert!(r.tiles(2, 2).is_err());
        assert!(r.tiles(0, 0).is_err());
    }

    #[test]
    fn local_offset_row_major_within_region() {
        let r = Region::new(vec![2, 3], vec![4, 6]).unwrap(); // extents 2x3
        assert_eq!(r.local_offset(&[2, 3]).unwrap(), 0);
        assert_eq!(r.local_offset(&[2, 5]).unwrap(), 2);
        assert_eq!(r.local_offset(&[3, 4]).unwrap(), 4);
        assert!(r.local_offset(&[4, 3]).is_err());
    }
}
