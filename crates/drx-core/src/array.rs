//! In-memory dense extendible array — the memory-resident counterpart of the
//! out-of-core array (the paper's serial DRX library keeps "memory resident
//! extendible arrays" alongside conventional ones, §I).
//!
//! Chunks are stored in a `Vec` indexed by their linear chunk address, which
//! mirrors the append-only `.xta` payload file exactly: extension pushes new
//! chunks at the end, and `F*` locates them. This type is also the reference
//! model that the out-of-core and parallel paths are tested against.

use crate::dtype::Element;
use crate::error::{DrxError, Result};
use crate::index::Region;
use crate::meta::ArrayMeta;
use crate::order::Layout;

/// A dense extendible array held in memory, chunked exactly like its
/// out-of-core counterpart.
#[derive(Debug, Clone)]
pub struct ExtendibleArray<T: Element> {
    meta: ArrayMeta,
    /// One buffer per chunk, indexed by linear chunk address.
    chunks: Vec<Box<[T]>>,
}

impl<T: Element> ExtendibleArray<T> {
    /// Create a new array with the given chunk shape and initial element
    /// bounds; all elements start at `T::default()`.
    pub fn new(chunk_shape: &[usize], initial_bounds: &[usize]) -> Result<Self> {
        let meta = ArrayMeta::new(T::DTYPE, chunk_shape, initial_bounds)?;
        let per_chunk = meta.chunking().chunk_elems() as usize;
        let chunks = (0..meta.total_chunks())
            .map(|_| vec![T::default(); per_chunk].into_boxed_slice())
            .collect();
        Ok(ExtendibleArray { meta, chunks })
    }

    /// Metadata (bounds, chunking, growth history).
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    pub fn rank(&self) -> usize {
        self.meta.rank()
    }

    /// Instantaneous element bounds.
    pub fn bounds(&self) -> &[usize] {
        self.meta.element_bounds()
    }

    /// Number of valid elements.
    pub fn len(&self) -> u64 {
        self.meta.element_count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extend dimension `dim` by `by` elements; newly exposed elements read
    /// as `T::default()`. Existing elements keep their values *and* their
    /// chunk addresses (the defining property of the scheme).
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<()> {
        let outcome = self.meta.extend(dim, by)?;
        let per_chunk = self.meta.chunking().chunk_elems() as usize;
        for _ in 0..outcome.new_chunk_count {
            self.chunks.push(vec![T::default(); per_chunk].into_boxed_slice());
        }
        debug_assert_eq!(self.chunks.len() as u64, self.meta.total_chunks());
        Ok(())
    }

    /// Read one element.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        let (addr, off) = self.meta.locate_element(index)?;
        Ok(self.chunks[addr as usize][off as usize])
    }

    /// Write one element.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let (addr, off) = self.meta.locate_element(index)?;
        self.chunks[addr as usize][off as usize] = value;
        Ok(())
    }

    /// Add to one element (the `MPI_Accumulate` counterpart).
    pub fn accumulate(&mut self, index: &[usize], value: T) -> Result<()> {
        let (addr, off) = self.meta.locate_element(index)?;
        let slot = &mut self.chunks[addr as usize][off as usize];
        *slot = slot.acc(value);
        Ok(())
    }

    /// Initialize every valid element from a function of its index.
    pub fn fill_with(&mut self, mut f: impl FnMut(&[usize]) -> T) -> Result<()> {
        for idx in self.meta.element_region().iter() {
            let (addr, off) = self.meta.locate_element(&idx)?;
            self.chunks[addr as usize][off as usize] = f(&idx);
        }
        Ok(())
    }

    /// Read a rectilinear element region into a dense buffer with the given
    /// memory layout — the in-core model of the paper's "specify the
    /// sub-arrays in memory to be in conventional array order".
    pub fn read_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        self.check_region(region)?;
        let extents = region.extents();
        let mut out = vec![T::default(); region.volume() as usize];
        let strides = layout.strides(&extents);
        for idx in region.iter() {
            let (addr, off) = self.meta.locate_element(&idx)?;
            let rel: Vec<usize> = idx.iter().zip(region.lo()).map(|(&i, &l)| i - l).collect();
            let o = crate::index::offset_with_strides(&rel, &strides) as usize;
            out[o] = self.chunks[addr as usize][off as usize];
        }
        Ok(out)
    }

    /// Write a dense buffer (in the given layout) into a rectilinear element
    /// region.
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        self.check_region(region)?;
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(DrxError::BufferSize { expected: n, got: data.len() });
        }
        let extents = region.extents();
        let strides = layout.strides(&extents);
        for idx in region.iter() {
            let (addr, off) = self.meta.locate_element(&idx)?;
            let rel: Vec<usize> = idx.iter().zip(region.lo()).map(|(&i, &l)| i - l).collect();
            let o = crate::index::offset_with_strides(&rel, &strides) as usize;
            self.chunks[addr as usize][off as usize] = data[o];
        }
        Ok(())
    }

    /// The whole array as a dense buffer in the given layout.
    pub fn to_dense(&self, layout: Layout) -> Result<Vec<T>> {
        self.read_region(&self.meta.element_region(), layout)
    }

    /// Raw access to a chunk's buffer by linear address (used by the file
    /// writer and by tests).
    pub fn chunk_data(&self, addr: u64) -> Result<&[T]> {
        self.chunks
            .get(addr as usize)
            .map(|b| &b[..])
            .ok_or(DrxError::AddressOutOfBounds { address: addr, total: self.chunks.len() as u64 })
    }

    /// Mutable raw access to a chunk's buffer by linear address.
    pub fn chunk_data_mut(&mut self, addr: u64) -> Result<&mut [T]> {
        let total = self.chunks.len() as u64;
        self.chunks
            .get_mut(addr as usize)
            .map(|b| &mut b[..])
            .ok_or(DrxError::AddressOutOfBounds { address: addr, total })
    }

    fn check_region(&self, region: &Region) -> Result<()> {
        if region.rank() != self.rank() {
            return Err(DrxError::RankMismatch { expected: self.rank(), got: region.rank() });
        }
        for (&h, &n) in region.hi().iter().zip(self.bounds()) {
            if h > n {
                return Err(DrxError::IndexOutOfBounds {
                    index: region.hi().to_vec(),
                    bounds: self.bounds().to_vec(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::relayout;

    fn tagged(idx: &[usize]) -> i64 {
        // An injective tag of an index, stable across extensions.
        idx.iter().fold(0i64, |acc, &i| acc * 1000 + i as i64 + 1)
    }

    #[test]
    fn get_set_round_trip() {
        let mut a: ExtendibleArray<i64> = ExtendibleArray::new(&[2, 3], &[4, 5]).unwrap();
        a.fill_with(tagged).unwrap();
        for idx in a.meta().element_region().iter() {
            assert_eq!(a.get(&idx).unwrap(), tagged(&idx));
        }
        a.set(&[3, 4], -7).unwrap();
        assert_eq!(a.get(&[3, 4]).unwrap(), -7);
        assert!(a.get(&[4, 0]).is_err());
    }

    #[test]
    fn extension_preserves_existing_values() {
        let mut a: ExtendibleArray<i64> = ExtendibleArray::new(&[2, 2], &[3, 3]).unwrap();
        a.fill_with(tagged).unwrap();
        a.extend(1, 4).unwrap();
        a.extend(0, 2).unwrap();
        a.extend(1, 1).unwrap();
        assert_eq!(a.bounds(), &[5, 8]);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.get(&[i, j]).unwrap(), tagged(&[i, j]), "({i},{j}) moved");
            }
        }
        // New cells read as default.
        assert_eq!(a.get(&[4, 7]).unwrap(), 0);
    }

    #[test]
    fn accumulate_adds() {
        let mut a: ExtendibleArray<f64> = ExtendibleArray::new(&[2], &[4]).unwrap();
        a.accumulate(&[2], 1.5).unwrap();
        a.accumulate(&[2], 2.0).unwrap();
        assert_eq!(a.get(&[2]).unwrap(), 3.5);
    }

    #[test]
    fn read_region_in_both_layouts() {
        let mut a: ExtendibleArray<i64> = ExtendibleArray::new(&[2, 3], &[4, 6]).unwrap();
        a.fill_with(|i| (i[0] * 10 + i[1]) as i64).unwrap();
        let region = Region::new(vec![1, 2], vec![3, 5]).unwrap(); // 2×3
        let c = a.read_region(&region, Layout::C).unwrap();
        assert_eq!(c, vec![12, 13, 14, 22, 23, 24]);
        let f = a.read_region(&region, Layout::Fortran).unwrap();
        assert_eq!(f, vec![12, 22, 13, 23, 14, 24]);
        // The two layouts are relayouts of each other.
        assert_eq!(relayout(&c, &[2, 3], Layout::C, Layout::Fortran).unwrap(), f);
    }

    #[test]
    fn write_region_round_trips_against_read() {
        let mut a: ExtendibleArray<i64> = ExtendibleArray::new(&[3, 2], &[5, 5]).unwrap();
        let region = Region::new(vec![0, 1], vec![4, 4]).unwrap(); // 4×3
        let data: Vec<i64> = (0..12).collect();
        a.write_region(&region, Layout::Fortran, &data).unwrap();
        assert_eq!(a.read_region(&region, Layout::Fortran).unwrap(), data);
        // Cells outside the region stay default.
        assert_eq!(a.get(&[0, 0]).unwrap(), 0);
        assert_eq!(a.get(&[4, 4]).unwrap(), 0);
        // Wrong buffer size is rejected.
        assert!(a.write_region(&region, Layout::C, &data[..5]).is_err());
    }

    #[test]
    fn region_bounds_are_validated() {
        let a: ExtendibleArray<i32> = ExtendibleArray::new(&[2, 2], &[4, 4]).unwrap();
        let too_big = Region::new(vec![0, 0], vec![5, 4]).unwrap();
        assert!(a.read_region(&too_big, Layout::C).is_err());
        let wrong_rank = Region::new(vec![0], vec![2]).unwrap();
        assert!(a.read_region(&wrong_rank, Layout::C).is_err());
    }

    #[test]
    fn to_dense_matches_fill_order() {
        let mut a: ExtendibleArray<i32> = ExtendibleArray::new(&[2, 2], &[2, 3]).unwrap();
        a.fill_with(|i| (i[0] * 3 + i[1]) as i32).unwrap();
        assert_eq!(a.to_dense(Layout::C).unwrap(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.to_dense(Layout::Fortran).unwrap(), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn chunk_data_access() {
        let mut a: ExtendibleArray<i32> = ExtendibleArray::new(&[2, 2], &[2, 2]).unwrap();
        a.set(&[1, 1], 9).unwrap();
        let data = a.chunk_data(0).unwrap();
        assert_eq!(data.len(), 4);
        assert_eq!(data[3], 9); // row-major within the chunk
        assert!(a.chunk_data(1).is_err());
    }

    #[test]
    fn complex_elements_work() {
        use crate::dtype::Complex64;
        let mut a: ExtendibleArray<Complex64> = ExtendibleArray::new(&[2], &[3]).unwrap();
        a.set(&[1], Complex64::new(1.0, 2.0)).unwrap();
        a.accumulate(&[1], Complex64::new(0.5, -1.0)).unwrap();
        assert_eq!(a.get(&[1]).unwrap(), Complex64::new(1.5, 1.0));
    }
}
