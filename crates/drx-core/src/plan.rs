//! Run-coalesced region planning and the incremental inverse cursor — the
//! fast path over `F*()`/`F*⁻¹()`.
//!
//! [`ExtendibleShape::region_addresses`] evaluates `F*` once per chunk:
//! `O(k·log E)` binary searches each, plus one index `Vec` per chunk. But
//! within one axial segment, stepping the fastest-varying (last) chunk
//! dimension by one advances the linear address by the *constant*
//! coefficient `C*_{k-1}` of the owning record. A rectilinear region
//! therefore decomposes into [`ChunkRun`]s — arithmetic progressions of
//! addresses — with one set of segment lookups per run instead of per
//! chunk:
//!
//! * Fix all but the last dimension (one "row" of the region). The owning
//!   record of Eq. (1) is the maximum-`start_addr` candidate over all
//!   dimensions; the candidates of dimensions `0..k-1` are constant along
//!   the row, so the winner can only change where the axial vector of the
//!   last dimension has a record boundary.
//! * Between boundaries the owner is fixed and the address is affine in
//!   the last index with slope `owner.coeffs[k-1]` — a run.
//!
//! The row-major initial allocation yields stride-1 runs (whole file
//! extents); segments created by extending the last dimension yield
//! stride-`C*_{k-1} > 1` runs whose addresses interleave with other rows'
//! runs, which is why consumers sort *chunk entries*, not runs, when they
//! need address order (see `drx-mp`'s `ChunkPlan`).
//!
//! [`RunCursor`] is the inverse-side counterpart: walking `F*⁻¹` for
//! sequential addresses costs one segment lookup per *segment* plus an
//! amortized O(1) mixed-radix odometer step per address, instead of
//! `O(log E + k)` per address via [`ExtendibleShape::index_of`].

use crate::axial::AxialRecord;
use crate::error::{DrxError, Result};
use crate::index::Region;
use crate::mapping::ExtendibleShape;

/// A maximal set of consecutive chunks along the last (fastest-varying)
/// dimension whose linear addresses form an arithmetic progression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRun {
    /// Chunk index of the first chunk of the run.
    pub start: Vec<usize>,
    /// `F*(start)`.
    pub addr: u64,
    /// Number of chunks in the run (always ≥ 1).
    pub len: usize,
    /// Address delta per `+1` step on the last index dimension. `1` for
    /// segments laid out row-major (the common case); the owning record's
    /// `C*_{k-1}` in general.
    pub stride: u64,
}

impl ChunkRun {
    /// Address of the `step`-th chunk of the run (`step < len`).
    pub fn addr_at(&self, step: usize) -> u64 {
        debug_assert!(step < self.len);
        self.addr + step as u64 * self.stride
    }

    /// Chunk index of the `step`-th chunk of the run.
    pub fn index_at(&self, step: usize) -> Vec<usize> {
        let mut idx = self.start.clone();
        *idx.last_mut().expect("runs have rank >= 1") += step;
        idx
    }

    /// Write the `step`-th chunk index into a scratch vector (no
    /// allocation when `scratch` already has capacity).
    pub fn write_index_at(&self, step: usize, scratch: &mut Vec<usize>) {
        scratch.clear();
        scratch.extend_from_slice(&self.start);
        *scratch.last_mut().expect("runs have rank >= 1") += step;
    }
}

/// Flatten `runs` into the address-sorted `(address, run, step)` entry
/// list consumed by the I/O planners: entry `i` names the `step`-th chunk
/// of run `run`, and addresses are strictly increasing (`F*` is a
/// bijection).
///
/// Runs are sorted — O(R log R) for R runs — and when their address spans
/// do not interleave (segments allocated as slabs, the common case) the
/// flattening is emitted directly without the O(n log n) per-chunk sort.
pub fn sorted_run_entries(runs: &[ChunkRun]) -> Vec<(u64, u32, u32)> {
    let mut order: Vec<u32> = (0..runs.len() as u32).collect();
    order.sort_unstable_by_key(|&r| runs[r as usize].addr);
    let disjoint = order.windows(2).all(|w| {
        let a = &runs[w[0] as usize];
        a.addr_at(a.len - 1) < runs[w[1] as usize].addr
    });
    let total = runs.iter().map(|r| r.len).sum();
    let mut entries: Vec<(u64, u32, u32)> = Vec::with_capacity(total);
    for &r in &order {
        let run = &runs[r as usize];
        entries.extend((0..run.len).map(|t| (run.addr_at(t), r, t as u32)));
    }
    if !disjoint {
        radix_sort_by_addr(&mut entries);
    }
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "F* is a bijection: no two chunks share a linear address"
    );
    entries
}

/// LSD radix sort of `(address, run, step)` entries by address. Chunk
/// addresses are dense small integers (one per allocated chunk), so a few
/// counting passes beat the comparison sort on the large plans where
/// sorting matters; small plans use the std sort.
fn radix_sort_by_addr(entries: &mut Vec<(u64, u32, u32)>) {
    const BITS: u32 = 11;
    const BUCKETS: usize = 1 << BITS;
    if entries.len() < BUCKETS {
        entries.sort_unstable_by_key(|&(a, _, _)| a);
        return;
    }
    let max = entries.iter().map(|&(a, _, _)| a).max().unwrap_or(0);
    let mut tmp: Vec<(u64, u32, u32)> = vec![(0, 0, 0); entries.len()];
    let mut shift = 0u32;
    loop {
        let mut counts = [0usize; BUCKETS];
        for &(a, _, _) in entries.iter() {
            counts[((a >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        let mut pos = 0;
        for c in counts.iter_mut() {
            pos += std::mem::replace(c, pos);
        }
        for &e in entries.iter() {
            let b = ((e.0 >> shift) as usize) & (BUCKETS - 1);
            tmp[counts[b]] = e;
            counts[b] += 1;
        }
        std::mem::swap(entries, &mut tmp);
        shift += BITS;
        if shift >= u64::BITS || (max >> shift) == 0 {
            return;
        }
    }
}

impl ExtendibleShape {
    /// Decompose a chunk-index region into [`ChunkRun`]s, in row-major
    /// index order. Flattening the runs yields exactly the `(index,
    /// address)` pairs of [`ExtendibleShape::region_addresses`]
    /// (property-tested), at one owner lookup per run instead of per
    /// chunk.
    pub fn region_runs(&self, region: &Region) -> Result<Vec<ChunkRun>> {
        let k = self.rank();
        if region.rank() != k {
            return Err(DrxError::RankMismatch { expected: k, got: region.rank() });
        }
        for (j, &h) in region.hi().iter().enumerate() {
            if h > self.bounds()[j] {
                return Err(DrxError::IndexOutOfBounds {
                    index: region.hi().to_vec(),
                    bounds: self.bounds().to_vec(),
                });
            }
        }
        let mut runs = Vec::new();
        if region.is_empty() {
            return Ok(runs);
        }
        let last = k - 1;
        let lo_l = region.lo()[last];
        let hi_l = region.hi()[last];
        let recs = self.axial(last).records();
        // Record position owning `lo_l` on the last dimension; the last
        // dimension always holds the initial record at index 0, so the
        // partition point is ≥ 1.
        let p0 = recs.partition_point(|r| r.start_index <= lo_l);
        debug_assert!(p0 >= 1, "last dimension always has a record at index 0");
        let mut row = region.lo().to_vec();
        loop {
            // The best candidate among the fixed dimensions is constant
            // for the whole row: one binary search per dimension per row.
            let mut best_other: Option<(usize, &AxialRecord)> = None;
            for (j, &i) in row.iter().enumerate().take(last) {
                if let Some(rec) = self.axial(j).search(i) {
                    match best_other {
                        Some((_, b)) if b.start_addr >= rec.start_addr => {}
                        _ => best_other = Some((j, rec)),
                    }
                }
            }
            // Walk the spans delimited by last-dimension record
            // boundaries; within each span the owner is fixed. Adjacent
            // spans whose addresses continue the same arithmetic
            // progression (e.g. a row owned throughout by a leading-dim
            // record) merge into one maximal run.
            let row_first = runs.len();
            let mut p = p0;
            let mut i = lo_l;
            while i < hi_l {
                let rec_l = &recs[p - 1];
                let span_end = match recs.get(p) {
                    Some(next) => hi_l.min(next.start_index),
                    None => hi_l,
                };
                let (wdim, wrec) = match best_other {
                    Some((j, rec)) if rec.start_addr > rec_l.start_addr => (j, rec),
                    _ => (last, rec_l),
                };
                row[last] = i;
                let addr = wrec.address(wdim, &row);
                let stride = wrec.coeffs[last];
                let same_row = runs.len() > row_first;
                match runs.last_mut() {
                    Some(prev)
                        if same_row
                            && prev.stride == stride
                            && prev.addr + prev.len as u64 * stride == addr =>
                    {
                        prev.len += span_end - i;
                    }
                    _ => {
                        runs.push(ChunkRun { start: row.clone(), addr, len: span_end - i, stride })
                    }
                }
                i = span_end;
                p += 1;
            }
            // Odometer over the fixed dimensions (row-major order).
            let mut j = last;
            loop {
                if j == 0 {
                    return Ok(runs);
                }
                j -= 1;
                row[j] += 1;
                if row[j] < region.hi()[j] {
                    break;
                }
                row[j] = region.lo()[j];
                if j == 0 {
                    return Ok(runs);
                }
            }
        }
    }
}

/// Incremental `F*⁻¹`: yields chunk indices for sequential linear
/// addresses in amortized O(1) per address.
///
/// Internally the cursor keeps a mixed-radix odometer over the current
/// segment's division order (the extended dimension most significant,
/// then the remaining dimensions ascending — exactly the division order
/// of [`ExtendibleShape::index_of`]); the digit radices are the ratios of
/// consecutive coefficients, which are always integral. A segment switch
/// costs one `O(log E)` directory search plus an `O(k)` decode; every
/// other step is a plain odometer increment.
pub struct RunCursor<'a> {
    shape: &'a ExtendibleShape,
    /// The address the next call to [`RunCursor::next_index`] decodes.
    next_addr: u64,
    /// End address (exclusive) of the currently loaded segment; 0 forces
    /// a load on the first call.
    seg_end: u64,
    /// Division order of the dimensions, most significant first.
    order: Vec<usize>,
    /// `radix[p] = coeffs[order[p-1]] / coeffs[order[p]]`; `radix[0]` is
    /// unused (the leading digit is bounded by the segment itself).
    radix: Vec<u64>,
    digits: Vec<u64>,
    index: Vec<usize>,
}

impl<'a> RunCursor<'a> {
    /// A cursor positioned at address 0.
    pub fn new(shape: &'a ExtendibleShape) -> Self {
        RunCursor::starting_at(shape, 0)
    }

    /// A cursor positioned at an arbitrary start address.
    pub fn starting_at(shape: &'a ExtendibleShape, addr: u64) -> Self {
        RunCursor {
            shape,
            next_addr: addr,
            seg_end: 0,
            order: Vec::new(),
            radix: Vec::new(),
            digits: Vec::new(),
            index: vec![0; shape.rank()],
        }
    }

    /// The address the next call to [`RunCursor::next_index`] will decode.
    pub fn addr(&self) -> u64 {
        self.next_addr
    }

    /// Decode the next sequential address, or `None` past the end of the
    /// allocated address space. (Not an `Iterator`: the slice borrows the
    /// cursor's internal index buffer.)
    pub fn next_index(&mut self) -> Option<&[usize]> {
        if self.next_addr >= self.shape.total_chunks() {
            return None;
        }
        if self.next_addr >= self.seg_end {
            self.load_segment();
        } else {
            self.advance();
        }
        self.next_addr += 1;
        Some(&self.index)
    }

    /// Position the odometer on `self.next_addr`'s segment and decode it.
    fn load_segment(&mut self) {
        let addr = self.next_addr;
        let segs = self.shape.segments();
        let pos = segs.partition_point(|s| s.start_addr <= addr) - 1;
        self.seg_end = segs.get(pos + 1).map_or(self.shape.total_chunks(), |s| s.start_addr);
        let seg = &segs[pos];
        let rec = &self.shape.axial(seg.dim).records()[seg.rec];
        let k = self.shape.rank();
        let initial = seg.start_addr == 0;
        self.order.clear();
        if initial {
            self.order.extend(0..k);
        } else {
            self.order.push(seg.dim);
            self.order.extend((0..k).filter(|&j| j != seg.dim));
        }
        self.radix.clear();
        self.radix.push(u64::MAX);
        for w in 1..k {
            self.radix.push(rec.coeffs[self.order[w - 1]] / rec.coeffs[self.order[w]]);
        }
        self.digits.clear();
        let mut r = addr - seg.start_addr;
        for &d in &self.order {
            self.digits.push(r / rec.coeffs[d]);
            r %= rec.coeffs[d];
        }
        for (p, &d) in self.order.iter().enumerate() {
            self.index[d] = self.digits[p] as usize;
        }
        if !initial {
            self.index[seg.dim] += rec.start_index;
        }
    }

    /// Odometer +1 within the current segment.
    fn advance(&mut self) {
        let mut p = self.digits.len() - 1;
        loop {
            self.digits[p] += 1;
            self.index[self.order[p]] += 1;
            if p == 0 || self.digits[p] < self.radix[p] {
                return;
            }
            self.digits[p] = 0;
            self.index[self.order[p]] = 0;
            p -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3 history (see `mapping.rs` tests).
    fn figure3() -> ExtendibleShape {
        let mut s = ExtendibleShape::new(&[4, 3, 1]).unwrap();
        s.extend(2, 1).unwrap();
        s.extend(2, 1).unwrap();
        s.extend(1, 1).unwrap();
        s.extend(0, 2).unwrap();
        s.extend(2, 1).unwrap();
        s
    }

    /// The Figure 1 5×4 grid.
    fn figure1() -> ExtendibleShape {
        let mut s = ExtendibleShape::new(&[1, 1]).unwrap();
        for (d, b) in [(1, 1), (0, 1), (0, 1), (1, 1), (0, 1), (1, 1), (0, 1)] {
            s.extend(d, b).unwrap();
        }
        s
    }

    fn flatten(runs: &[ChunkRun]) -> Vec<(Vec<usize>, u64)> {
        runs.iter().flat_map(|r| (0..r.len).map(move |t| (r.index_at(t), r.addr_at(t)))).collect()
    }

    #[test]
    fn sorted_run_entries_matches_per_chunk_sort() {
        // Disjoint spans (slab case) and interleaved spans (stride 4 vs
        // start offsets 1/2) must both produce the strictly increasing
        // per-chunk order.
        let disjoint = vec![
            ChunkRun { start: vec![0, 0], addr: 10, len: 3, stride: 1 },
            ChunkRun { start: vec![1, 0], addr: 0, len: 2, stride: 2 },
        ];
        let interleaved = vec![
            ChunkRun { start: vec![0, 0], addr: 1, len: 3, stride: 4 },
            ChunkRun { start: vec![1, 0], addr: 2, len: 3, stride: 4 },
        ];
        // Large interleaved case: 3000 runs of two chunks each whose spans
        // all overlap, big enough to take the radix-sort path.
        let large: Vec<ChunkRun> = (0..3000)
            .map(|j| ChunkRun { start: vec![j, 0], addr: j as u64, len: 2, stride: 3000 })
            .collect();
        for runs in [disjoint, interleaved, large] {
            let mut expect: Vec<(u64, u32, u32)> = runs
                .iter()
                .enumerate()
                .flat_map(|(r, run)| {
                    (0..run.len).map(move |t| (run.addr_at(t), r as u32, t as u32))
                })
                .collect();
            expect.sort_unstable_by_key(|&(a, _, _)| a);
            assert_eq!(sorted_run_entries(&runs), expect);
        }
    }

    #[test]
    fn runs_flatten_to_region_addresses_on_figures() {
        for s in [figure3(), figure1()] {
            let region = s.full_region();
            let runs = s.region_runs(&region).unwrap();
            assert_eq!(flatten(&runs), s.region_addresses(&region).unwrap());
        }
    }

    #[test]
    fn figure1_full_region_runs_are_maximal() {
        // Row 0 of Figure 1's grid is 0,1,6,12: the initial 1×1 chunk, the
        // D1 extension at column 1, the D1 extension at column 2, the D1
        // extension at column 3 — record boundaries at columns 1, 2, 3
        // split the row into four runs of one chunk each. Row 4 (the last
        // D0 extension) is a single stride-1 run 16..=19.
        let s = figure1();
        let runs = s.region_runs(&s.full_region()).unwrap();
        let row4: Vec<&ChunkRun> = runs.iter().filter(|r| r.start[0] == 4).collect();
        assert_eq!(row4.len(), 1);
        assert_eq!((row4[0].addr, row4[0].len, row4[0].stride), (16, 4, 1));
    }

    #[test]
    fn stride_runs_interleave_but_flatten_correctly() {
        // Figure 3's Γ2 record {1, 12, (3,1,12)}: rows (0,0,*) and (0,1,*)
        // interleave in address space (12,24 vs 13,25) — stride 12 runs.
        let s = figure3();
        let region = Region::new(vec![0, 0, 1], vec![1, 2, 3]).unwrap();
        let runs = s.region_runs(&region).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].addr, runs[0].len, runs[0].stride), (12, 2, 12));
        assert_eq!((runs[1].addr, runs[1].len, runs[1].stride), (13, 2, 12));
        assert_eq!(flatten(&runs), s.region_addresses(&region).unwrap());
    }

    #[test]
    fn sub_regions_match_region_addresses() {
        let s = figure3();
        for region in [
            Region::new(vec![1, 1, 1], vec![5, 3, 4]).unwrap(),
            Region::new(vec![0, 0, 0], vec![6, 4, 1]).unwrap(),
            Region::new(vec![3, 2, 2], vec![4, 3, 3]).unwrap(),
            Region::new(vec![0, 0, 0], vec![6, 4, 4]).unwrap(),
        ] {
            let runs = s.region_runs(&region).unwrap();
            assert_eq!(flatten(&runs), s.region_addresses(&region).unwrap(), "{region:?}");
        }
    }

    #[test]
    fn empty_region_yields_no_runs() {
        let s = figure3();
        let empty = Region::new(vec![2, 2, 2], vec![2, 4, 4]).unwrap();
        assert!(s.region_runs(&empty).unwrap().is_empty());
    }

    #[test]
    fn region_runs_validates_like_region_addresses() {
        let s = figure3();
        let too_big = Region::new(vec![0, 0, 0], vec![7, 4, 4]).unwrap();
        assert!(s.region_runs(&too_big).is_err());
        let wrong_rank = Region::new(vec![0], vec![1]).unwrap();
        assert!(s.region_runs(&wrong_rank).is_err());
    }

    #[test]
    fn rank_one_is_a_single_maximal_run() {
        let mut s = ExtendibleShape::new(&[3]).unwrap();
        s.extend(0, 2).unwrap();
        s.extend(0, 4).unwrap();
        let runs = s.region_runs(&s.full_region()).unwrap();
        // Initial record covers 0..3 and the extension record 3..9, but
        // the addresses continue the same stride-1 progression, so the
        // spans merge into one maximal run.
        assert_eq!(runs.len(), 1);
        assert_eq!((runs[0].addr, runs[0].len, runs[0].stride), (0, 9, 1));
        assert_eq!(flatten(&runs), s.region_addresses(&s.full_region()).unwrap());
    }

    #[test]
    fn run_cursor_agrees_with_index_of_on_figures() {
        for s in [figure3(), figure1()] {
            let mut cur = RunCursor::new(&s);
            for a in 0..s.total_chunks() {
                assert_eq!(cur.addr(), a);
                let idx = cur.next_index().expect("in range").to_vec();
                assert_eq!(idx, s.index_of(a).unwrap(), "addr {a}");
            }
            assert!(cur.next_index().is_none());
        }
    }

    #[test]
    fn run_cursor_can_start_mid_stream() {
        let s = figure3();
        for start in [1u64, 12, 35, 71, 72, 95] {
            let mut cur = RunCursor::starting_at(&s, start);
            for a in start..s.total_chunks() {
                assert_eq!(cur.next_index().unwrap(), s.index_of(a).unwrap(), "addr {a}");
            }
            assert!(cur.next_index().is_none());
        }
        assert!(RunCursor::starting_at(&s, 96).next_index().is_none());
    }

    #[test]
    fn chunk_run_index_helpers() {
        let run = ChunkRun { start: vec![2, 1, 3], addr: 40, len: 3, stride: 12 };
        assert_eq!(run.addr_at(2), 64);
        assert_eq!(run.index_at(2), vec![2, 1, 5]);
        let mut scratch = Vec::new();
        run.write_index_at(1, &mut scratch);
        assert_eq!(scratch, vec![2, 1, 4]);
    }
}
