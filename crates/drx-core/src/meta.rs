//! Array metadata and the `.xmd` binary codec (paper §IV-A).
//!
//! "The meta-data file of the extendible multidimensional storage scheme
//! maintains a persistent copy of the content of the axial-vectors used in
//! the linear address calculation. Other relevant pieces of information that
//! are kept include the number of dimensions of the array, the data type,
//! values of the chunk shape, the instantaneous bounds of the array, the
//! number of chunks in the principal array file, etc."
//!
//! The on-disk format is a versioned little-endian record with a trailing
//! CRC-32, so truncated or corrupted metadata is detected instead of
//! producing garbage addresses.

use crate::axial::{AxialRecord, AxialVector};
use crate::chunk::Chunking;
use crate::dtype::DType;
use crate::error::{DrxError, Result, MAX_RANK};
use crate::index::{volume, Region};
use crate::mapping::ExtendibleShape;

/// Magic bytes at the start of every `.xmd` file.
pub const XMD_MAGIC: [u8; 4] = *b"DRXM";
/// Current format version.
pub const XMD_VERSION: u16 = 1;

/// Result of an element-level extension: which chunks (if any) the storage
/// layer must append to the `.xta` payload file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendOutcome {
    /// Linear address of the first newly allocated chunk, when chunks were
    /// allocated.
    pub first_new_chunk: Option<u64>,
    /// Number of chunks allocated by this extension (0 when the new element
    /// bound still fits in already-allocated edge chunks).
    pub new_chunk_count: u64,
}

/// How the *initial* allocation of the chunk grid is laid out on disk
/// (paper §IV-B: "written onto disk with chunks laid out either in
/// row-major order or in the symmetric linear shell order").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialLayout {
    /// One row-major segment covering the whole initial grid (the common
    /// case; later extensions still go anywhere).
    #[default]
    RowMajor,
    /// The initial grid is built by cyclic single-index extensions from a
    /// 1×…×1 grid — the symmetric-linear-shell growth pattern, recorded in
    /// the axial vectors like any other history. Subsequent reads and
    /// extensions are oblivious to the choice.
    ShellOrder,
}

/// Complete description of one extendible array: element type, chunk shape,
/// instantaneous element bounds, and the chunk-grid growth history.
///
/// This is the structure behind the paper's `DRXMDHdl` handle; DRX-MP
/// replicates it in every process when a file is opened (§IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayMeta {
    dtype: DType,
    chunking: Chunking,
    /// Instantaneous bounds `N_i` in *elements* (may not be chunk-aligned).
    element_bounds: Vec<usize>,
    /// Growth history of the chunk grid; bounds are `⌈N_i / c_i⌉`.
    grid: ExtendibleShape,
}

impl ArrayMeta {
    /// Create metadata for a new array with the given chunk shape and
    /// initial element bounds (each ≥ 1).
    pub fn new(dtype: DType, chunk_shape: &[usize], initial_bounds: &[usize]) -> Result<Self> {
        Self::new_with_layout(dtype, chunk_shape, initial_bounds, InitialLayout::RowMajor)
    }

    /// Create metadata with an explicit initial chunk layout (§IV-B).
    pub fn new_with_layout(
        dtype: DType,
        chunk_shape: &[usize],
        initial_bounds: &[usize],
        layout: InitialLayout,
    ) -> Result<Self> {
        let chunking = Chunking::new(chunk_shape)?;
        if initial_bounds.len() != chunking.rank() {
            return Err(DrxError::RankMismatch {
                expected: chunking.rank(),
                got: initial_bounds.len(),
            });
        }
        if initial_bounds.contains(&0) {
            return Err(DrxError::ZeroExtent("initial element bound"));
        }
        let grid_bounds = chunking.grid_for(initial_bounds)?;
        let grid = match layout {
            InitialLayout::RowMajor => ExtendibleShape::new(&grid_bounds)?,
            InitialLayout::ShellOrder => {
                // Grow a 1×…×1 grid to the target by cyclic single-index
                // extensions — each round of the cycle is one shell.
                let mut g = ExtendibleShape::new(&vec![1; grid_bounds.len()])?;
                loop {
                    let mut grew = false;
                    for (dim, &target) in grid_bounds.iter().enumerate() {
                        if g.bounds()[dim] < target {
                            g.extend(dim, 1)?;
                            grew = true;
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                g
            }
        };
        Ok(ArrayMeta { dtype, chunking, element_bounds: initial_bounds.to_vec(), grid })
    }

    pub fn dtype(&self) -> DType {
        self.dtype
    }

    pub fn rank(&self) -> usize {
        self.chunking.rank()
    }

    pub fn chunking(&self) -> &Chunking {
        &self.chunking
    }

    /// Instantaneous element bounds `N_i`.
    pub fn element_bounds(&self) -> &[usize] {
        &self.element_bounds
    }

    /// The chunk-grid growth history (axial vectors live here).
    pub fn grid(&self) -> &ExtendibleShape {
        &self.grid
    }

    /// Number of valid elements, `∏ N_i`.
    pub fn element_count(&self) -> u64 {
        volume(&self.element_bounds)
    }

    /// Number of allocated chunks in the payload file.
    pub fn total_chunks(&self) -> u64 {
        self.grid.total_chunks()
    }

    /// Bytes per chunk in the payload file.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunking.chunk_elems() * self.dtype.size() as u64
    }

    /// Total payload file size in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.total_chunks() * self.chunk_bytes()
    }

    /// The valid element region `0..N_i` per dimension.
    pub fn element_region(&self) -> Region {
        Region::of_shape(&self.element_bounds).expect("bounds are a valid shape")
    }

    /// Extend dimension `dim` by `by` elements (paper §IV-B: "the array is
    /// expanded by extending any arbitrary dimension"). Allocates whole
    /// chunk-grid segments as needed; already-written chunks never move.
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<ExtendOutcome> {
        if dim >= self.rank() {
            return Err(DrxError::Invalid(format!(
                "dimension {dim} out of range for rank {}",
                self.rank()
            )));
        }
        if by == 0 {
            return Err(DrxError::ZeroExtent("extension amount"));
        }
        let new_bound = self.element_bounds[dim] + by;
        let needed = new_bound.div_ceil(self.chunking.shape()[dim]);
        let have = self.grid.bounds()[dim];
        let outcome = if needed > have {
            let before = self.grid.total_chunks();
            let first = self.grid.extend(dim, needed - have)?;
            ExtendOutcome {
                first_new_chunk: Some(first),
                new_chunk_count: self.grid.total_chunks() - before,
            }
        } else {
            ExtendOutcome { first_new_chunk: None, new_chunk_count: 0 }
        };
        self.element_bounds[dim] = new_bound;
        Ok(outcome)
    }

    /// Locate an element: (linear chunk address, element offset inside the
    /// chunk). This composes `F*` on the chunk index with the trivial
    /// row-major offset within the chunk (§II-A).
    pub fn locate_element(&self, element: &[usize]) -> Result<(u64, u64)> {
        for (j, (&e, &n)) in element.iter().zip(&self.element_bounds).enumerate() {
            if e >= n {
                let _ = j;
                return Err(DrxError::IndexOutOfBounds {
                    index: element.to_vec(),
                    bounds: self.element_bounds.clone(),
                });
            }
        }
        let (chunk, off) = self.chunking.locate(element)?;
        let addr = self.grid.address(&chunk)?;
        Ok((addr, off))
    }

    /// Byte offset of an element in the `.xta` payload file.
    pub fn element_byte_offset(&self, element: &[usize]) -> Result<u64> {
        let (addr, off) = self.locate_element(element)?;
        Ok(addr * self.chunk_bytes() + off * self.dtype.size() as u64)
    }

    // ------------------------------------------------------------------
    // .xmd codec
    // ------------------------------------------------------------------

    /// Serialize to the `.xmd` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let k = self.rank();
        let mut w = Vec::with_capacity(64 + 24 * k);
        w.extend_from_slice(&XMD_MAGIC);
        w.extend_from_slice(&XMD_VERSION.to_le_bytes());
        w.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
        w.push(self.dtype.code());
        w.push(k as u8);
        w.extend_from_slice(&[0u8; 2]); // reserved
        for &c in self.chunking.shape() {
            w.extend_from_slice(&(c as u64).to_le_bytes());
        }
        for &n in &self.element_bounds {
            w.extend_from_slice(&(n as u64).to_le_bytes());
        }
        for &g in self.grid.bounds() {
            w.extend_from_slice(&(g as u64).to_le_bytes());
        }
        let last = self.grid.last_extended().map(|d| d as i16).unwrap_or(-1);
        w.extend_from_slice(&last.to_le_bytes());
        for dim in 0..k {
            let recs = self.grid.axial(dim).records();
            w.extend_from_slice(&(recs.len() as u32).to_le_bytes());
            for r in recs {
                w.extend_from_slice(&(r.start_index as u64).to_le_bytes());
                w.extend_from_slice(&r.start_addr.to_le_bytes());
                for &c in &r.coeffs {
                    w.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        let crc = crc32(&w);
        w.extend_from_slice(&crc.to_le_bytes());
        w
    }

    /// Decode and validate an `.xmd` byte buffer.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != XMD_MAGIC {
            return Err(DrxError::CorruptMeta("bad magic".into()));
        }
        let version = r.u16()?;
        if version != XMD_VERSION {
            return Err(DrxError::CorruptMeta(format!("unsupported version {version}")));
        }
        let _flags = r.u16()?;
        let dtype = DType::from_code(r.u8()?)?;
        let k = r.u8()? as usize;
        if k == 0 || k > MAX_RANK {
            return Err(DrxError::CorruptMeta(format!("bad rank {k}")));
        }
        r.take(2)?; // reserved
        let chunk_shape = r.usize_vec(k)?;
        let element_bounds = r.usize_vec(k)?;
        let grid_bounds = r.usize_vec(k)?;
        let last = r.i16()?;
        let last_extended = if last < 0 {
            None
        } else if (last as usize) < k {
            Some(last as usize)
        } else {
            return Err(DrxError::CorruptMeta(format!("last_extended {last} out of range")));
        };
        let mut axial = Vec::with_capacity(k);
        for _ in 0..k {
            let n = r.u32()? as usize;
            let mut v = AxialVector::new();
            for _ in 0..n {
                let start_index = r.u64()? as usize;
                let start_addr = r.u64()?;
                let coeffs = r.u64_vec(k)?;
                v.push(AxialRecord { start_index, start_addr, coeffs })
                    .map_err(|e| DrxError::CorruptMeta(e.to_string()))?;
            }
            axial.push(v);
        }
        let body_len = r.pos();
        let crc_stored = r.u32()?;
        if !r.at_end() {
            return Err(DrxError::CorruptMeta("trailing bytes".into()));
        }
        if crc32(&bytes[..body_len]) != crc_stored {
            return Err(DrxError::CorruptMeta("checksum mismatch".into()));
        }

        let chunking =
            Chunking::new(&chunk_shape).map_err(|e| DrxError::CorruptMeta(e.to_string()))?;
        let grid = ExtendibleShape::from_parts(grid_bounds, axial, last_extended)
            .map_err(|e| DrxError::CorruptMeta(e.to_string()))?;
        // Cross-validate: the grid must be exactly the chunk cover of the
        // element bounds.
        let expected_grid =
            chunking.grid_for(&element_bounds).map_err(|e| DrxError::CorruptMeta(e.to_string()))?;
        if expected_grid != grid.bounds() {
            return Err(DrxError::CorruptMeta(format!(
                "grid bounds {:?} do not cover element bounds {:?} with chunks {:?}",
                grid.bounds(),
                element_bounds,
                chunk_shape
            )));
        }
        Ok(ArrayMeta { dtype, chunking, element_bounds, grid })
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise implementation —
/// metadata is small, so table-free simplicity wins.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Bounded little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(DrxError::CorruptMeta(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn i16(&mut self) -> Result<i16> {
        let b = self.take(2)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>> {
        (0..n).map(|_| self.u64()).collect()
    }

    fn usize_vec(&mut self, n: usize) -> Result<Vec<usize>> {
        (0..n)
            .map(|_| {
                let v = self.u64()?;
                usize::try_from(v)
                    .map_err(|_| DrxError::CorruptMeta(format!("value {v} exceeds usize")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> ArrayMeta {
        // Figure 1: A[10][12] with chunks 2×3, grown element-wise.
        let mut m = ArrayMeta::new(DType::Float64, &[2, 3], &[2, 3]).unwrap();
        m.extend(1, 3).unwrap();
        m.extend(0, 4).unwrap();
        m.extend(1, 4).unwrap();
        m.extend(0, 4).unwrap();
        m.extend(1, 2).unwrap();
        m
    }

    #[test]
    fn extend_allocates_chunks_only_when_needed() {
        let mut m = ArrayMeta::new(DType::Int32, &[2, 3], &[2, 3]).unwrap();
        assert_eq!(m.total_chunks(), 1);
        // Growing dim 1 from 3 to 4 elements needs a second chunk column.
        let out = m.extend(1, 1).unwrap();
        assert_eq!(out.first_new_chunk, Some(1));
        assert_eq!(out.new_chunk_count, 1);
        // Growing from 4 to 6 elements stays inside the same chunk column.
        let out = m.extend(1, 2).unwrap();
        assert_eq!(out.first_new_chunk, None);
        assert_eq!(out.new_chunk_count, 0);
        assert_eq!(m.element_bounds(), &[2, 6]);
        assert_eq!(m.total_chunks(), 2);
    }

    #[test]
    fn locate_element_composes_fstar_and_within_offset() {
        let m = sample_meta();
        assert_eq!(m.element_bounds(), &[10, 12]);
        assert_eq!(m.grid().bounds(), &[5, 4]);
        // Element (9,7): chunk [4,2], within (1,1) → offset 4.
        let (addr, off) = m.locate_element(&[9, 7]).unwrap();
        assert_eq!(addr, m.grid().address(&[4, 2]).unwrap());
        assert_eq!(off, 4);
        assert!(m.locate_element(&[10, 0]).is_err());
    }

    #[test]
    fn element_byte_offset_scales_by_dtype() {
        let m = sample_meta();
        let (addr, off) = m.locate_element(&[3, 4]).unwrap();
        assert_eq!(m.element_byte_offset(&[3, 4]).unwrap(), addr * 6 * 8 + off * 8);
    }

    #[test]
    fn codec_round_trip() {
        let m = sample_meta();
        let bytes = m.encode();
        let back = ArrayMeta::decode(&bytes).unwrap();
        assert_eq!(back, m);
        // Behavioural equality too: same addresses, same next extension.
        let mut a = m.clone();
        let mut b = back;
        assert_eq!(a.extend(0, 2).unwrap(), b.extend(0, 2).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn codec_rejects_corruption() {
        let m = sample_meta();
        let good = m.encode();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(ArrayMeta::decode(&bad), Err(DrxError::CorruptMeta(_))));
        // Truncation at every prefix length must error, never panic.
        for cut in 0..good.len() {
            assert!(ArrayMeta::decode(&good[..cut]).is_err());
        }
        // Single-byte corruption in the body is caught by the CRC (flip a
        // byte in the middle).
        let mut bad = good.clone();
        bad[20] ^= 0xFF;
        assert!(ArrayMeta::decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(ArrayMeta::decode(&bad).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn shell_order_initial_layout() {
        // A 4×4 chunk grid in shell order: growth 1×1 → 2×2 → 3×3 → 4×4 via
        // cyclic single extensions. The (i,j) chunk addresses must match the
        // symmetric shell family: cell (0,0)=0 and every shell m occupies
        // addresses m²..(m+1)².
        let m =
            ArrayMeta::new_with_layout(DType::Int32, &[2, 2], &[8, 8], InitialLayout::ShellOrder)
                .unwrap();
        assert_eq!(m.grid().bounds(), &[4, 4]);
        for i in 0..4usize {
            for j in 0..4usize {
                let a = m.grid().address(&[i, j]).unwrap();
                let shell = i.max(j) as u64;
                assert!(
                    a >= shell * shell && a < (shell + 1) * (shell + 1),
                    "chunk ({i},{j}) at {a} not in shell {shell}"
                );
            }
        }
        // A row-major layout of the same grid differs (chunk (1,0) is 4 in
        // row-major, but in a shell in shell-order).
        let rm = ArrayMeta::new(DType::Int32, &[2, 2], &[8, 8]).unwrap();
        assert_eq!(rm.grid().address(&[1, 0]).unwrap(), 4);
        assert_ne!(m.grid().address(&[1, 0]).unwrap(), 4);
        // Codec round-trips the history; extension works as usual.
        let back = ArrayMeta::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        let mut grown = m.clone();
        grown.extend(1, 4).unwrap();
        assert_eq!(grown.grid().bounds(), &[4, 6]);
        assert_eq!(grown.grid().address(&[0, 0]).unwrap(), 0, "existing chunks stay put");
    }

    #[test]
    fn new_rejects_bad_arguments() {
        assert!(ArrayMeta::new(DType::Int32, &[2, 0], &[4, 4]).is_err());
        assert!(ArrayMeta::new(DType::Int32, &[2, 2], &[4]).is_err());
        assert!(ArrayMeta::new(DType::Int32, &[2, 2], &[0, 4]).is_err());
    }
}
