//! Property tests for the wire protocol: every `Request` / `Response`
//! variant survives an encode → decode roundtrip, and every *strict prefix*
//! of a valid body is rejected (the codec reads deterministically and
//! `finish()` demands full consumption, so truncation can never be
//! silently accepted).

use drx_mp::PoolStats;
use drx_server::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ArrayInfo, StatReply,
};
use drx_server::{Request, Response};
use proptest::prelude::*;

/// Characters for generated names/messages; includes multi-byte UTF-8 so
/// string length prefixes (byte counts) are exercised against char counts.
const PALETTE: &[char] = &['a', 'Z', '0', '_', '/', ' ', 'é', 'π', '€'];

fn short_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

/// Dimension vectors: rank 0..5 (the wire format caps rank at u8).
fn dims() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..5)
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..40)
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        short_string().prop_map(|name| Request::Open { name }),
        (any::<u32>(), dims(), dims()).prop_map(|(handle, lo, hi)| Request::ReadRegion {
            handle,
            lo,
            hi
        }),
        (any::<u32>(), dims(), dims(), payload())
            .prop_map(|(handle, lo, hi, data)| Request::WriteRegion { handle, lo, hi, data }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(handle, dim, by)| Request::Extend {
            handle,
            dim,
            by
        }),
        any::<u32>().prop_map(|handle| Request::Stat { handle }),
        any::<u32>().prop_map(|handle| Request::Close { handle }),
    ]
}

fn stat_reply() -> impl Strategy<Value = StatReply> {
    (any::<u8>(), dims(), dims(), prop::collection::vec(any::<u64>(), 14)).prop_map(
        |(dtype, bounds, chunk_shape, v)| StatReply {
            dtype,
            bounds,
            chunk_shape,
            total_chunks: v[0],
            payload_bytes: v[1],
            session_cache: PoolStats {
                hits: v[2],
                misses: v[3],
                evictions: v[4],
                writebacks: v[5],
            },
            global_cache: PoolStats { hits: v[6], misses: v[7], evictions: v[8], writebacks: v[9] },
            pfs_requests: v[10],
            pfs_bytes: v[11],
            coalesced_batches: v[12],
            lock_waits: v[13],
        },
    )
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u32>(), any::<u8>(), dims(), dims()).prop_map(|(handle, dtype, bounds, cs)| {
            Response::Opened { handle, info: ArrayInfo { dtype, bounds, chunk_shape: cs } }
        }),
        payload().prop_map(|data| Response::Data { data }),
        Just(Response::Written),
        dims().prop_map(|bounds| Response::Extended { bounds }),
        stat_reply().prop_map(Response::Stat),
        Just(Response::Closed),
        (any::<u16>(), short_string())
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

/// Every strict prefix of a valid body must fail to decode.
fn assert_prefixes_rejected<T: std::fmt::Debug>(
    body: &[u8],
    decode: impl Fn(&[u8]) -> drx_server::Result<T>,
) -> Result<(), proptest::test_runner::CaseError> {
    for cut in 0..body.len() {
        prop_assert!(
            decode(&body[..cut]).is_err(),
            "strict prefix of {cut}/{} bytes decoded successfully",
            body.len()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_roundtrip_and_truncation(req in request()) {
        let body = encode_request(&req);
        prop_assert_eq!(decode_request(&body).unwrap(), req);
        assert_prefixes_rejected(&body, decode_request)?;
    }

    #[test]
    fn response_roundtrip_and_truncation(resp in response()) {
        let body = encode_response(&resp);
        prop_assert_eq!(decode_response(&body).unwrap(), resp);
        assert_prefixes_rejected(&body, decode_response)?;
    }
}

/// Deterministic per-variant coverage, independent of RNG draws: one
/// roundtrip for each `Request` and `Response` variant.
#[test]
fn every_variant_roundtrips() {
    let requests = [
        Request::Open { name: "grid/é".into() },
        Request::ReadRegion { handle: 9, lo: vec![], hi: vec![] },
        Request::WriteRegion { handle: 1, lo: vec![0], hi: vec![u64::MAX], data: vec![0xAB; 3] },
        Request::Extend { handle: 2, dim: 3, by: u64::MAX },
        Request::Stat { handle: 0 },
        Request::Close { handle: u32::MAX },
    ];
    for req in requests {
        let body = encode_request(&req);
        assert_eq!(decode_request(&body).unwrap(), req);
    }
    let responses = [
        Response::Opened {
            handle: 5,
            info: ArrayInfo { dtype: 2, bounds: vec![4, 4], chunk_shape: vec![2, 2] },
        },
        Response::Data { data: vec![1, 2, 3] },
        Response::Written,
        Response::Extended { bounds: vec![6, 4] },
        Response::Stat(StatReply { dtype: 1, bounds: vec![8], ..StatReply::default() }),
        Response::Closed,
        Response::Error { code: 404, message: "no such array".into() },
    ];
    for resp in responses {
        let body = encode_response(&resp);
        assert_eq!(decode_response(&body).unwrap(), resp);
    }
}

/// Frame-level truncation: a frame cut anywhere inside its body is a
/// protocol error, and a cut inside the length header never yields a frame.
#[test]
fn truncated_frames_are_rejected() {
    let body = encode_request(&Request::Open { name: "payload".into() });
    let mut stream = Vec::new();
    write_frame(&mut stream, &body, drx_server::proto::MAX_FRAME).unwrap();
    assert_eq!(stream.len(), 4 + body.len());

    // Complete stream: one frame, then clean EOF.
    let mut r = &stream[..];
    assert_eq!(read_frame(&mut r, drx_server::proto::MAX_FRAME).unwrap(), Some(body.clone()));
    assert_eq!(read_frame(&mut r, drx_server::proto::MAX_FRAME).unwrap(), None);

    for cut in 0..stream.len() {
        let mut r = &stream[..cut];
        let got = read_frame(&mut r, drx_server::proto::MAX_FRAME);
        if cut < 4 {
            // Inside the length header: indistinguishable from EOF at a
            // frame boundary (cut 0) or reported as an error — but never a
            // successfully decoded frame.
            assert!(!matches!(got, Ok(Some(_))), "cut {cut} produced a frame");
        } else {
            assert!(got.is_err(), "cut {cut} inside the body must be a protocol error");
        }
    }
}
