//! Bounded exhaustive schedule exploration of the locking and cache layer.
//!
//! Compiled only under `RUSTFLAGS="--cfg drx_sched"` (use a separate
//! `CARGO_TARGET_DIR` so the cfg change does not thrash the main build
//! cache):
//!
//! ```sh
//! RUSTFLAGS="--cfg drx_sched" CARGO_TARGET_DIR=target/sched \
//!     cargo test -p drx-server --test sched_explore
//! ```
//!
//! Under that cfg, `RangeLockManager` and `SharedChunkCache` are built on
//! `drx_sched::sync` primitives, and the explorer enumerates *every*
//! bounded interleaving of the scenario threads, checking on each one:
//!
//! * deadlock freedom (all-or-nothing acquisition admits no hold-and-wait),
//! * mutual exclusion between conflicting lock holders,
//! * writer priority: once a writer has registered on a chunk, no reader
//!   that requests afterwards is granted before the writer.

#![cfg(drx_sched)]

use drx_sched::{explore, Event, Options, RunTrace};
use drx_server::{LockMode, RangeLockManager, SharedChunkCache};
use std::sync::Arc;

type Body = Box<dyn FnOnce() + Send>;

/// Probe labels emitted by `drx-server/src/lock.rs`.
const REQ_READ: &str = "lock:request-read";
const REQ_WRITE: &str = "lock:request-write";
const REGISTER: &str = "lock:register-writer";
const GRANT_READ: &str = "lock:grant-read";
const GRANT_WRITE: &str = "lock:grant-write";
const RELEASE: &str = "lock:release";

/// Flatten a trace to its probe events.
fn probes(trace: &RunTrace) -> Vec<(usize, &'static str)> {
    trace
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Probe(tid, label) => Some((*tid, *label)),
            Event::Schedule(_) => None,
        })
        .collect()
}

/// First position of `(tid, label)` in the probe list, if any.
fn pos(probes: &[(usize, &'static str)], tid: usize, label: &str) -> Option<usize> {
    probes.iter().position(|&(t, l)| t == tid && l == label)
}

/// Assert that the grant..release windows of the given threads are pairwise
/// disjoint — valid whenever every pair of threads conflicts on some chunk.
fn assert_disjoint_holds(probes: &[(usize, &'static str)], tids: &[usize]) {
    let mut holder: Option<usize> = None;
    for &(t, l) in probes {
        if !tids.contains(&t) {
            continue;
        }
        match l {
            GRANT_READ | GRANT_WRITE => {
                assert!(holder.is_none(), "thread {t} granted while {holder:?} still holds");
                holder = Some(t);
            }
            RELEASE => {
                assert_eq!(holder, Some(t), "release by a thread that was not the holder");
                holder = None;
            }
            _ => {}
        }
    }
    assert!(holder.is_none(), "a guard was never released");
}

/// The paper's conflict scenario, exhaustively: two writers with
/// overlapping chunk sets plus one reader on the contended chunk. Every
/// schedule must complete (no deadlock), hold conflicting locks disjointly,
/// and respect writer priority on chunk 2.
#[test]
fn lock_two_writers_one_reader_exhaustive() {
    let mut grant_orders = std::collections::BTreeSet::new();
    let mut priority_cases = 0u64;
    let stats = explore(
        Options::default(),
        || {
            let m = Arc::new(RangeLockManager::new());
            let (m1, m2, m3) = (Arc::clone(&m), Arc::clone(&m), Arc::clone(&m));
            vec![
                Box::new(move || drop(m1.acquire(&[1, 2], LockMode::Write))) as Body,
                Box::new(move || drop(m2.acquire(&[2, 3], LockMode::Write))) as Body,
                Box::new(move || drop(m3.acquire(&[2], LockMode::Read))) as Body,
            ]
        },
        |trace| {
            assert!(
                trace.panic.is_none(),
                "panic in schedule {:?}: {:?}",
                trace.schedule,
                trace.panic
            );
            assert!(!trace.deadlock, "deadlock in schedule {:?}", trace.schedule);
            let p = probes(trace);

            // Every thread requested, was granted exactly once, and released.
            for (tid, req, grant) in [
                (0, REQ_WRITE, GRANT_WRITE),
                (1, REQ_WRITE, GRANT_WRITE),
                (2, REQ_READ, GRANT_READ),
            ] {
                assert!(pos(&p, tid, req).is_some(), "thread {tid} never requested");
                let grants = p.iter().filter(|&&(t, l)| t == tid && l == grant).count();
                assert_eq!(grants, 1, "thread {tid} granted {grants} times");
                assert!(pos(&p, tid, RELEASE).is_some(), "thread {tid} never released");
            }

            // All three sets pairwise overlap on chunk 2, so no two holds
            // may coexist.
            assert_disjoint_holds(&p, &[0, 1, 2]);

            // Writer priority: a writer registered before the reader even
            // *requested* must be granted before the reader.
            for w in [0usize, 1] {
                if let (Some(reg), Some(req_r)) = (pos(&p, w, REGISTER), pos(&p, 2, REQ_READ)) {
                    if reg < req_r {
                        priority_cases += 1;
                        let gw = pos(&p, w, GRANT_WRITE).unwrap();
                        let gr = pos(&p, 2, GRANT_READ).unwrap();
                        assert!(
                            gw < gr,
                            "writer {w} registered before the reader requested but was \
                             granted after it (schedule {:?})",
                            trace.schedule
                        );
                    }
                }
            }

            // Record which thread got chunk 2 first, to prove the explorer
            // actually reaches different outcomes.
            let first = p
                .iter()
                .find(|&&(_, l)| l == GRANT_READ || l == GRANT_WRITE)
                .map(|&(t, _)| t)
                .expect("someone must be granted first");
            grant_orders.insert(first);
        },
    );
    assert_eq!(stats.deadlocks, 0, "{stats:?}");
    assert_eq!(stats.complete, stats.runs, "{stats:?}");
    assert!(!stats.truncated, "exploration must be exhaustive: {stats:?}");
    assert!(stats.runs >= 6, "too few interleavings explored: {stats:?}");
    assert_eq!(
        grant_orders.len(),
        3,
        "every thread should win the race in some schedule: {grant_orders:?}"
    );
    assert!(priority_cases > 0, "no schedule exercised the writer-priority path");
}

/// Two readers of disjoint chunk sets must be grantable concurrently in at
/// least one schedule, and writers must never deadlock with them.
#[test]
fn lock_readers_share_while_writer_waits() {
    let mut overlapping_reads = 0u64;
    let stats = explore(
        Options::default(),
        || {
            let m = Arc::new(RangeLockManager::new());
            let (m1, m2, m3) = (Arc::clone(&m), Arc::clone(&m), Arc::clone(&m));
            vec![
                Box::new(move || drop(m1.acquire(&[4], LockMode::Read))) as Body,
                Box::new(move || drop(m2.acquire(&[4], LockMode::Read))) as Body,
                Box::new(move || drop(m3.acquire(&[4], LockMode::Write))) as Body,
            ]
        },
        |trace| {
            assert!(trace.panic.is_none(), "panic: {:?}", trace.panic);
            assert!(!trace.deadlock, "deadlock in schedule {:?}", trace.schedule);
            let p = probes(trace);
            // The writer conflicts with both readers: its hold window must
            // be disjoint from each reader's.
            assert_disjoint_holds(&p, &[0, 2]);
            assert_disjoint_holds(&p, &[1, 2]);
            // Detect schedules where both readers hold chunk 4 at once.
            let (g0, r0) = (pos(&p, 0, GRANT_READ), pos(&p, 0, RELEASE));
            let (g1, r1) = (pos(&p, 1, GRANT_READ), pos(&p, 1, RELEASE));
            if let (Some(g0), Some(r0), Some(g1), Some(r1)) = (g0, r0, g1, r1) {
                if g0 < r1 && g1 < r0 {
                    overlapping_reads += 1;
                }
            }
        },
    );
    assert_eq!(stats.deadlocks, 0, "{stats:?}");
    assert_eq!(stats.complete, stats.runs, "{stats:?}");
    assert!(!stats.truncated);
    assert!(overlapping_reads > 0, "readers never shared the chunk in any schedule");
}

/// Cache layer: two sessions faulting overlapping chunk sets through the
/// group-commit queue. Every schedule must terminate with both sessions
/// served (no lost wakeup on the `fetched` condvar) and correct data.
#[test]
fn cache_coalesced_fetch_never_loses_wakeups() {
    use drx_pfs::Pfs;
    const CB: usize = 16;
    let mut parked_somewhere = false;
    let stats = explore(
        Options::default(),
        || {
            let pfs = Pfs::memory(2, 4096).expect("memory pfs");
            let f = pfs.create("payload").expect("create payload");
            f.set_len((8 * CB) as u64).expect("set_len");
            for a in 0..8u64 {
                f.write_at(a * CB as u64, &[a as u8; CB]).expect("seed chunk");
            }
            let cache = Arc::new(SharedChunkCache::new(f, CB, 8).expect("cache"));
            let (c1, c2) = (Arc::clone(&cache), Arc::clone(&cache));
            // Keep the PFS alive for the duration of the run.
            let hold = pfs;
            vec![
                Box::new(move || {
                    let _hold = &hold;
                    let got = c1.read_chunks(1, &[0, 1]).expect("session 1 read");
                    assert_eq!(got[0], vec![0u8; CB]);
                    assert_eq!(got[1], vec![1u8; CB]);
                }) as Body,
                Box::new(move || {
                    let got = c2.read_chunks(2, &[1, 2]).expect("session 2 read");
                    assert_eq!(got[0], vec![1u8; CB]);
                    assert_eq!(got[1], vec![2u8; CB]);
                }) as Body,
            ]
        },
        |trace| {
            assert!(
                trace.panic.is_none(),
                "panic in schedule {:?}: {:?}",
                trace.schedule,
                trace.panic
            );
            assert!(!trace.deadlock, "lost wakeup in schedule {:?}", trace.schedule);
            let p = probes(trace);
            // Someone always leads a batch; every schedule fetches.
            assert!(
                p.iter().any(|&(_, l)| l == "cache:lead"),
                "no leader elected in schedule {:?}",
                trace.schedule
            );
            if p.iter().any(|&(_, l)| l == "cache:park") {
                parked_somewhere = true;
            }
        },
    );
    assert_eq!(stats.deadlocks, 0, "{stats:?}");
    assert_eq!(stats.complete, stats.runs, "{stats:?}");
    assert!(!stats.truncated, "cache exploration must be exhaustive: {stats:?}");
    assert!(stats.runs >= 2, "{stats:?}");
    assert!(parked_somewhere, "no schedule exercised the park-and-ride-next-batch path");
}
