//! Socket-deadline eviction: a wedged client — connected but never
//! completing a handshake or frame — must be dropped when the configured
//! `io_timeout` expires, freeing its worker for healthy clients. Without
//! deadlines a handful of silent connections pins the whole worker pool
//! forever.

use drx_mp::DrxFile;
use drx_pfs::Pfs;
use drx_server::{serve_with, ServeConfig, Server, ServerConfig, TcpClient};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[test]
fn wedged_clients_are_evicted_and_workers_freed() {
    let pfs = Pfs::memory(2, 1024).expect("pfs");
    DrxFile::<f64>::create(&pfs, "grid", &[2, 2], &[4, 4]).expect("create array");
    let server = Server::new(pfs, ServerConfig::default());
    let timeout = Duration::from_millis(250);
    let handle = serve_with(
        &server,
        "127.0.0.1:0",
        ServeConfig { threads: 2, io_timeout: Some(timeout), ..ServeConfig::default() },
    )
    .expect("serve");
    let addr = handle.addr();

    // Wedge the entire worker pool: one connection that says nothing at
    // all, one that stalls mid-handshake. Both hold their sockets open.
    let silent = TcpStream::connect(addr).expect("wedge 1 connects");
    let mut partial = TcpStream::connect(addr).expect("wedge 2 connects");
    partial.write_all(b"DR").expect("partial handshake bytes");
    partial.flush().expect("flush");

    // A healthy client must still get service: its connection sits in the
    // accept backlog until a deadline fires and frees a worker, which must
    // happen within ~io_timeout — not hang indefinitely.
    let t0 = Instant::now();
    let mut client = TcpClient::connect(addr).expect("healthy client served after eviction");
    let (h, info) = client.open("grid").expect("open");
    assert_eq!(info.bounds, vec![4, 4]);
    client.write_region_from::<f64>(h, &[0, 0], &[1, 2], &[1.5, 2.5]).expect("write");
    assert_eq!(client.read_region_as::<f64>(h, &[0, 0], &[1, 2]).expect("read"), vec![1.5, 2.5]);
    client.close(h).expect("close");
    let waited = t0.elapsed();
    assert!(
        waited < timeout * 20,
        "healthy client waited {waited:?}; wedged clients were not evicted"
    );

    // The wedged sockets must have been closed by the server (EOF / reset),
    // proving eviction rather than a lucky third worker.
    for (name, mut sock) in [("silent", silent), ("partial", partial)] {
        sock.set_read_timeout(Some(timeout * 20)).expect("read timeout");
        let mut buf = [0u8; 16];
        match sock.read(&mut buf) {
            Ok(0) => {} // clean EOF: dropped
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Ok(n) => panic!("{name} wedge received {n} unexpected bytes"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("{name} wedge still open after deadline — not evicted")
            }
            Err(e) => panic!("{name} wedge read failed oddly: {e}"),
        }
    }

    handle.shutdown().expect("shutdown");
}
