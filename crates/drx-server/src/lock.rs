//! Chunk-aligned range locking.
//!
//! Every region operation resolves to a set of linear chunk addresses (via
//! the `F*` mapping); the lock manager grants shared (read) or exclusive
//! (write) ownership of that whole set *atomically* — a request either
//! holds every chunk it needs or none, waiting otherwise. Because no
//! waiter ever holds a partial set, there is no hold-and-wait and therefore
//! no deadlock, regardless of how requests overlap.
//!
//! Writers get priority: while a writer is queued on a chunk, new readers
//! of that chunk wait. This bounds writer starvation under a steady reader
//! stream; readers admitted before the writer arrived finish normally
//! (their locks are already held).
//!
//! `Extend` does not take chunk locks at all — it is serialized by the
//! array's metadata `RwLock` (see `server.rs`). Extension is append-only
//! (the paper's defining property: existing chunk addresses never move),
//! so in-flight reads and writes against already-allocated chunks stay
//! valid while the array grows.

#[cfg(drx_sched)]
use drx_sched::sync::{Condvar, Mutex};
#[cfg(not(drx_sched))]
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// Sharing mode of one acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Read,
    Write,
}

#[derive(Default)]
struct ChunkLock {
    readers: u32,
    writer: bool,
    /// Writers blocked wanting this chunk; readers defer to them.
    waiting_writers: u32,
}

impl ChunkLock {
    fn is_free(&self) -> bool {
        self.readers == 0 && !self.writer && self.waiting_writers == 0
    }
}

#[derive(Default)]
struct LockTable {
    chunks: HashMap<u64, ChunkLock>,
    /// Number of times any acquisition had to block.
    waits: u64,
}

/// Lock manager for one array's chunk address space.
#[derive(Default)]
pub struct RangeLockManager {
    // lock-class: table => LockTable
    table: Mutex<LockTable>,
    cond: Condvar,
}

impl RangeLockManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of acquisitions that had to block so far.
    pub fn wait_count(&self) -> u64 {
        self.table.lock().waits
    }

    /// Number of chunks currently locked (for tests/introspection).
    pub fn locked_chunks(&self) -> usize {
        self.table.lock().chunks.len()
    }

    /// Acquire `mode` locks on every chunk in `addrs`, blocking until the
    /// entire set can be granted at once. The guard releases on drop.
    pub fn acquire(&self, addrs: &[u64], mode: LockMode) -> RangeGuard<'_> {
        let mut addrs: Vec<u64> = addrs.to_vec();
        addrs.sort_unstable();
        addrs.dedup();
        match mode {
            LockMode::Read => sched_probe!("lock:request-read"),
            LockMode::Write => sched_probe!("lock:request-write"),
        }
        let mut t = self.table.lock();
        let mut registered = false;
        loop {
            let grantable = addrs.iter().all(|a| {
                let c = t.chunks.get(a);
                match mode {
                    // `registered` means the queued writer is *this* call,
                    // which should not defer to itself.
                    LockMode::Read => {
                        c.is_none_or(|c| !c.writer && (c.waiting_writers == 0 || registered))
                    }
                    LockMode::Write => c.is_none_or(|c| {
                        c.readers == 0 && !c.writer && (c.waiting_writers == 0 || registered)
                    }),
                }
            });
            if grantable {
                for &a in &addrs {
                    let c = t.chunks.entry(a).or_default();
                    if registered {
                        c.waiting_writers -= 1;
                    }
                    match mode {
                        LockMode::Read => c.readers += 1,
                        LockMode::Write => c.writer = true,
                    }
                }
                match mode {
                    LockMode::Read => sched_probe!("lock:grant-read"),
                    LockMode::Write => sched_probe!("lock:grant-write"),
                }
                return RangeGuard { mgr: self, addrs, mode };
            }
            if mode == LockMode::Write && !registered {
                for &a in &addrs {
                    t.chunks.entry(a).or_default().waiting_writers += 1;
                }
                registered = true;
                sched_probe!("lock:register-writer");
            }
            t.waits += 1;
            self.cond.wait(&mut t);
        }
    }
}

/// Holds `mode` locks on a set of chunks; releases (and wakes waiters) on
/// drop.
pub struct RangeGuard<'a> {
    mgr: &'a RangeLockManager,
    addrs: Vec<u64>,
    mode: LockMode,
}

impl RangeGuard<'_> {
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }
}

impl Drop for RangeGuard<'_> {
    fn drop(&mut self) {
        let mut t = self.mgr.table.lock();
        for &a in &self.addrs {
            // A missing entry means the table was corrupted; releasing the
            // rest of the guard is still the best recovery, and panicking
            // in Drop would abort the process mid-unwind.
            let Some(c) = t.chunks.get_mut(&a) else {
                debug_assert!(false, "held chunk {a} lost its lock entry");
                continue;
            };
            match self.mode {
                LockMode::Read => c.readers -= 1,
                LockMode::Write => c.writer = false,
            }
            if c.is_free() {
                t.chunks.remove(&a);
            }
        }
        sched_probe!("lock:release");
        drop(t);
        self.mgr.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn readers_share_writers_exclude() {
        let m = RangeLockManager::new();
        let r1 = m.acquire(&[1, 2, 3], LockMode::Read);
        let r2 = m.acquire(&[2, 3, 4], LockMode::Read);
        assert_eq!(m.locked_chunks(), 4);
        drop(r1);
        drop(r2);
        assert_eq!(m.locked_chunks(), 0);
        let w = m.acquire(&[1, 2], LockMode::Write);
        drop(w);
        assert_eq!(m.locked_chunks(), 0);
    }

    #[test]
    fn writer_blocks_until_readers_release() {
        let m = Arc::new(RangeLockManager::new());
        let r = m.acquire(&[5], LockMode::Read);
        let m2 = Arc::clone(&m);
        let acquired = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&acquired);
        let t = thread::spawn(move || {
            let _w = m2.acquire(&[5, 6], LockMode::Write);
            a2.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(30));
        assert_eq!(acquired.load(Ordering::SeqCst), 0, "writer must wait for reader");
        drop(r);
        t.join().unwrap();
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
        assert!(m.wait_count() >= 1);
    }

    #[test]
    fn queued_writer_defers_new_readers() {
        let m = Arc::new(RangeLockManager::new());
        let r = m.acquire(&[7], LockMode::Read);
        let m2 = Arc::clone(&m);
        let w = thread::spawn(move || {
            let _w = m2.acquire(&[7], LockMode::Write);
            // Hold briefly so the deferred reader observably waits.
            thread::sleep(Duration::from_millis(20));
        });
        // Let the writer queue up.
        while m.wait_count() == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        let m3 = Arc::clone(&m);
        let got_read = Arc::new(AtomicU32::new(0));
        let g2 = Arc::clone(&got_read);
        let rd = thread::spawn(move || {
            let _r = m3.acquire(&[7], LockMode::Read);
            g2.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(10));
        // New reader defers to the queued writer even though only a read
        // lock is held right now.
        assert_eq!(got_read.load(Ordering::SeqCst), 0);
        drop(r);
        w.join().unwrap();
        rd.join().unwrap();
        assert_eq!(got_read.load(Ordering::SeqCst), 1);
        assert_eq!(m.locked_chunks(), 0);
    }

    #[test]
    fn overlapping_writers_make_progress() {
        // A classic deadlock shape under two-phase locking: W1 wants {1,2},
        // W2 wants {2,3}, interleaved. All-or-nothing acquisition means
        // both always finish.
        let m = Arc::new(RangeLockManager::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let set = [i % 4, (i + 1) % 4, (i + 2) % 4];
                    let _g = m.acquire(&set, LockMode::Write);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.locked_chunks(), 0);
    }

    #[test]
    fn duplicate_addresses_are_collapsed() {
        let m = RangeLockManager::new();
        let g = m.acquire(&[9, 9, 9], LockMode::Write);
        assert_eq!(g.addrs(), &[9]);
        drop(g);
        assert_eq!(m.locked_chunks(), 0);
    }
}
