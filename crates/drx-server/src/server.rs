//! The array service: sessions, open arrays, and request execution.
//!
//! A [`Server`] owns one [`Pfs`] namespace and any number of DRX arrays
//! (`.xmd` + `.xta` pairs) inside it. Clients talk to it through sessions
//! — either in-process ([`crate::Client`]) or over TCP ([`crate::serve`],
//! [`crate::TcpClient`]); both funnel into [`Server::handle`], so the two
//! transports have identical semantics.
//!
//! Concurrency model, per array:
//!
//! * **Region reads/writes** take shared/exclusive chunk-range locks on
//!   exactly the chunks the region touches (all-or-nothing; see
//!   [`crate::lock`]). Disjoint regions proceed in parallel; overlapping
//!   writes serialize; a region operation is atomic with respect to any
//!   other operation whose chunk set overlaps it.
//! * **Extend** never takes chunk locks. It holds the array's metadata
//!   `RwLock` exclusively, which serializes extends against each other and
//!   against the bounds snapshot every region operation starts with.
//!   Because DRX extension is append-only — the axial-vector mapping `F*`
//!   never relocates an existing chunk — readers and writers working from
//!   a pre-extend snapshot remain correct while the array grows.
//! * **Chunk I/O** goes through one [`SharedChunkCache`] per array, which
//!   merges concurrent misses into coalesced PFS reads.

use crate::cache::SharedChunkCache;
use crate::error::{ErrorCode, Result, ServerError};
use crate::lock::{LockMode, RangeLockManager};
use crate::proto::{ArrayInfo, Request, Response, StatReply};
use drx_core::{index, ArrayMeta, Region};
use drx_mp::{XMD_SUFFIX, XTA_SUFFIX};
use drx_pfs::{Pfs, PfsFile};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Capacity, in chunks, of each array's shared cache.
    pub cache_chunks: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { cache_chunks: 64 }
    }
}

/// One open array: metadata, payload file, lock manager, shared cache.
pub(crate) struct ArrayState {
    name: String,
    // lock-class: meta => ArrayMeta
    meta: RwLock<ArrayMeta>,
    xmd: PfsFile,
    xta: PfsFile,
    locks: RangeLockManager,
    cache: SharedChunkCache,
}

struct Session {
    handles: HashMap<u32, Arc<ArrayState>>,
}

// The canonical DRX lock-order DAG (DESIGN.md §9): a thread may only
// acquire downward along these declared edges, and `drx-analyze` fails the
// build on any observed nesting that is not listed here.
//
// lock-order: ServerArrays -> PfsMeta
// lock-order: ServerArrays -> PfsFiles
// lock-order: ServerArrays -> PfsStats
// lock-order: ServerArrays -> PfsBacking
// lock-order: ServerArrays -> PfsFault
// lock-order: ArrayMeta -> LockTable
// lock-order: ArrayMeta -> CacheQueue
// lock-order: ArrayMeta -> ChunkPool
// lock-order: ArrayMeta -> PfsMeta
// lock-order: ArrayMeta -> PfsFiles
// lock-order: ArrayMeta -> PfsStats
// lock-order: ArrayMeta -> PfsBacking
// lock-order: ArrayMeta -> PfsFault
// lock-order: LockTable -> CacheQueue
// lock-order: CacheQueue -> ChunkPool
// lock-order: ChunkPool -> PfsMeta
// lock-order: ChunkPool -> PfsFiles
// lock-order: ChunkPool -> PfsStats
// lock-order: ChunkPool -> PfsBacking
// lock-order: ChunkPool -> PfsFault
struct Inner {
    pfs: Pfs,
    config: ServerConfig,
    // lock-class: arrays => ServerArrays
    arrays: Mutex<HashMap<String, Arc<ArrayState>>>,
    // lock-class: inner.sessions => ServerSessions
    sessions: Mutex<HashMap<u64, Session>>,
    next_session: AtomicU64,
    next_handle: AtomicU32,
}

/// An embeddable multi-client DRX array service. Cheap to clone (shared
/// state behind an `Arc`); clones serve the same arrays and sessions.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

fn to_usize_dims(v: &[u64]) -> Result<Vec<usize>> {
    v.iter()
        .map(|&x| {
            usize::try_from(x)
                .map_err(|_| ServerError::bad_request(format!("dimension value {x} too large")))
        })
        .collect()
}

fn to_u64_dims(v: &[usize]) -> Vec<u64> {
    v.iter().map(|&x| x as u64).collect()
}

impl Server {
    pub fn new(pfs: Pfs, config: ServerConfig) -> Self {
        Server {
            inner: Arc::new(Inner {
                pfs,
                config,
                arrays: Mutex::new(HashMap::new()),
                sessions: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(1),
                next_handle: AtomicU32::new(1),
            }),
        }
    }

    pub fn pfs(&self) -> &Pfs {
        &self.inner.pfs
    }

    /// Begin a session. Every transport connection maps to one session.
    pub fn open_session(&self) -> u64 {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        self.inner.sessions.lock().insert(id, Session { handles: HashMap::new() });
        id
    }

    /// End a session: drops its handles, flushes the touched arrays, and
    /// retires its cache statistics.
    pub fn close_session(&self, session: u64) {
        let Some(state) = self.inner.sessions.lock().remove(&session) else { return };
        for array in state.handles.values() {
            // allow-discard: teardown flush is best-effort; session is going away
            let _ = array.cache.flush();
            array.cache.drop_session(session);
        }
    }

    pub fn session_count(&self) -> usize {
        self.inner.sessions.lock().len()
    }

    /// Flush every open array's cache to storage.
    pub fn flush_all(&self) -> Result<()> {
        let arrays: Vec<Arc<ArrayState>> = self.inner.arrays.lock().values().cloned().collect();
        for a in arrays {
            a.cache.flush()?;
        }
        Ok(())
    }

    /// Execute one request on behalf of `session`. Never panics on bad
    /// input; failures come back as [`Response::Error`].
    pub fn handle(&self, session: u64, req: Request) -> Response {
        match self.try_handle(session, req) {
            Ok(resp) => resp,
            Err(e) => Response::Error { code: e.code as u16, message: e.message },
        }
    }

    fn try_handle(&self, session: u64, req: Request) -> Result<Response> {
        match req {
            Request::Open { name } => {
                let array = self.open_array(&name)?;
                let handle = self.inner.next_handle.fetch_add(1, Ordering::Relaxed);
                let info = {
                    let meta = array.meta.read();
                    ArrayInfo {
                        dtype: meta.dtype().code(),
                        bounds: to_u64_dims(meta.element_bounds()),
                        chunk_shape: to_u64_dims(meta.chunking().shape()),
                    }
                };
                self.session_mut(session, |s| {
                    s.handles.insert(handle, Arc::clone(&array));
                })?;
                Ok(Response::Opened { handle, info })
            }
            Request::ReadRegion { handle, lo, hi } => {
                let array = self.resolve(session, handle)?;
                let data = read_region(&array, session, &lo, &hi)?;
                Ok(Response::Data { data })
            }
            Request::WriteRegion { handle, lo, hi, data } => {
                let array = self.resolve(session, handle)?;
                write_region(&array, session, &lo, &hi, &data)?;
                Ok(Response::Written)
            }
            Request::Extend { handle, dim, by } => {
                let array = self.resolve(session, handle)?;
                let bounds = extend(&array, dim, by)?;
                Ok(Response::Extended { bounds })
            }
            Request::Stat { handle } => {
                let array = self.resolve(session, handle)?;
                Ok(Response::Stat(self.stat(&array, session)))
            }
            Request::Close { handle } => {
                let array =
                    self.session_mut(session, |s| s.handles.remove(&handle))?.ok_or_else(|| {
                        ServerError::new(ErrorCode::BadHandle, format!("unknown handle {handle}"))
                    })?;
                array.cache.flush()?;
                array.cache.drop_session(session);
                Ok(Response::Closed)
            }
        }
    }

    fn session_mut<R>(&self, session: u64, f: impl FnOnce(&mut Session) -> R) -> Result<R> {
        let mut sessions = self.inner.sessions.lock();
        let s = sessions.get_mut(&session).ok_or_else(|| {
            ServerError::new(ErrorCode::BadHandle, format!("unknown session {session}"))
        })?;
        Ok(f(s))
    }

    fn resolve(&self, session: u64, handle: u32) -> Result<Arc<ArrayState>> {
        self.session_mut(session, |s| s.handles.get(&handle).cloned())?.ok_or_else(|| {
            ServerError::new(ErrorCode::BadHandle, format!("unknown handle {handle}"))
        })
    }

    fn open_array(&self, name: &str) -> Result<Arc<ArrayState>> {
        let mut arrays = self.inner.arrays.lock();
        if let Some(a) = arrays.get(name) {
            return Ok(Arc::clone(a));
        }
        let pfs = &self.inner.pfs;
        let xmd = pfs.open(&format!("{name}{XMD_SUFFIX}")).map_err(|_| {
            ServerError::new(ErrorCode::NoSuchArray, format!("no array named '{name}'"))
        })?;
        let meta = ArrayMeta::decode(&xmd.read_vec(0, xmd.len() as usize)?)
            .map_err(|e| ServerError::new(ErrorCode::Internal, e.to_string()))?;
        let xta = pfs.open(&format!("{name}{XTA_SUFFIX}")).map_err(|_| {
            ServerError::new(ErrorCode::NoSuchArray, format!("array '{name}' has no payload"))
        })?;
        let cache = SharedChunkCache::new(
            xta.clone(),
            meta.chunk_bytes() as usize,
            self.inner.config.cache_chunks,
        )?;
        let state = Arc::new(ArrayState {
            name: name.to_string(),
            meta: RwLock::new(meta),
            xmd,
            xta,
            locks: RangeLockManager::new(),
            cache,
        });
        arrays.insert(name.to_string(), Arc::clone(&state));
        Ok(state)
    }

    fn stat(&self, array: &ArrayState, session: u64) -> StatReply {
        // Snapshot the metadata fields and release the read guard before
        // querying the cache, lock and PFS layers: stat is a diagnostic
        // and must not nest ArrayMeta over the stats locks.
        let (dtype, bounds, chunk_shape, total_chunks, payload_bytes) = {
            let meta = array.meta.read();
            (
                meta.dtype().code(),
                to_u64_dims(meta.element_bounds()),
                to_u64_dims(meta.chunking().shape()),
                meta.total_chunks(),
                meta.payload_bytes(),
            )
        };
        let pfs_stats = self.inner.pfs.stats();
        StatReply {
            dtype,
            bounds,
            chunk_shape,
            total_chunks,
            payload_bytes,
            session_cache: array.cache.session_stats(session),
            global_cache: array.cache.global_stats(),
            pfs_requests: pfs_stats.total_requests(),
            pfs_bytes: pfs_stats.total_bytes(),
            coalesced_batches: array.cache.coalesced_batches(),
            lock_waits: array.locks.wait_count(),
        }
    }
}

/// The chunk plan of a region under a metadata snapshot: the covered
/// chunks' grid indices and linear addresses, sorted by address.
fn plan(meta: &ArrayMeta, region: &Region) -> Result<Vec<(Vec<usize>, u64)>> {
    let chunk_region = meta.chunking().chunks_covering(region)?;
    let mut pairs = meta.grid().region_addresses(&chunk_region)?;
    pairs.sort_by_key(|&(_, a)| a);
    Ok(pairs)
}

/// Validate `[lo, hi)` against a metadata snapshot and build the region.
fn checked_region(meta: &ArrayMeta, lo: &[u64], hi: &[u64]) -> Result<Region> {
    let lo = to_usize_dims(lo)?;
    let hi = to_usize_dims(hi)?;
    if lo.len() != meta.rank() || hi.len() != meta.rank() {
        return Err(ServerError::new(
            ErrorCode::OutOfBounds,
            format!("region rank {} does not match array rank {}", lo.len(), meta.rank()),
        ));
    }
    let region = Region::new(lo, hi)?;
    let bounds = meta.element_bounds();
    for d in 0..meta.rank() {
        if region.hi()[d] > bounds[d] {
            return Err(ServerError::new(
                ErrorCode::OutOfBounds,
                format!("region upper corner {:?} exceeds bounds {:?}", region.hi(), bounds),
            ));
        }
    }
    Ok(region)
}

fn read_region(array: &ArrayState, session: u64, lo: &[u64], hi: &[u64]) -> Result<Vec<u8>> {
    // Bounds snapshot: extends are serialized against this read lock, and
    // append-only extension keeps every address in the snapshot valid
    // afterwards.
    let meta = array.meta.read().clone();
    let region = checked_region(&meta, lo, hi)?;
    if region.is_empty() {
        return Ok(Vec::new());
    }
    let esize = meta.dtype().size();
    let pairs = plan(&meta, &region)?;
    let addrs: Vec<u64> = pairs.iter().map(|&(_, a)| a).collect();

    let _guard = array.locks.acquire(&addrs, LockMode::Read);
    let chunks = array.cache.read_chunks(session, &addrs)?;

    let extents = region.extents();
    let strides = index::row_major_strides(&extents);
    let chunking = meta.chunking();
    let mut out = vec![0u8; region.volume() as usize * esize];
    for ((chunk_idx, _), bytes) in pairs.iter().zip(&chunks) {
        let chunk_elems = chunking.chunk_elements(chunk_idx)?;
        let Some(valid) = chunk_elems.intersect(&region) else { continue };
        index::for_each_offset_pair(
            &valid,
            chunk_elems.lo(),
            chunking.strides(),
            region.lo(),
            &strides,
            |src, dst| {
                let s = src as usize * esize;
                let d = dst as usize * esize;
                out[d..d + esize].copy_from_slice(&bytes[s..s + esize]);
            },
        );
    }
    Ok(out)
}

fn write_region(
    array: &ArrayState,
    session: u64,
    lo: &[u64],
    hi: &[u64],
    data: &[u8],
) -> Result<()> {
    let meta = array.meta.read().clone();
    let region = checked_region(&meta, lo, hi)?;
    let esize = meta.dtype().size();
    let expected = region.volume() as usize * esize;
    if data.len() != expected {
        return Err(ServerError::bad_request(format!(
            "write payload of {} bytes does not cover region ({expected} bytes)",
            data.len()
        )));
    }
    if region.is_empty() {
        return Ok(());
    }
    let pairs = plan(&meta, &region)?;
    let addrs: Vec<u64> = pairs.iter().map(|&(_, a)| a).collect();
    let chunking = meta.chunking();
    let cb = meta.chunk_bytes() as usize;

    let _guard = array.locks.acquire(&addrs, LockMode::Write);

    // Chunks only partially covered by the region need their current
    // contents first (read-modify-write); fetch them as one coalesced
    // batch. A chunk counts as fully covered only when the region contains
    // its *entire* allocated extent — including slack beyond the current
    // element bounds, which must be preserved for future extends.
    let mut partial_addrs = Vec::new();
    let mut full = vec![false; pairs.len()];
    for (i, (chunk_idx, addr)) in pairs.iter().enumerate() {
        let chunk_elems = chunking.chunk_elements(chunk_idx)?;
        let covered =
            chunk_elems.intersect(&region).is_some_and(|v| v.volume() == chunk_elems.volume());
        full[i] = covered;
        if !covered {
            partial_addrs.push(*addr);
        }
    }
    let partial_bytes = array.cache.read_chunks(session, &partial_addrs)?;
    let mut partial: HashMap<u64, Vec<u8>> = partial_addrs.into_iter().zip(partial_bytes).collect();

    let extents = region.extents();
    let strides = index::row_major_strides(&extents);
    for (i, (chunk_idx, addr)) in pairs.iter().enumerate() {
        let chunk_elems = chunking.chunk_elements(chunk_idx)?;
        let Some(valid) = chunk_elems.intersect(&region) else { continue };
        let mut bytes = if full[i] {
            vec![0u8; cb]
        } else {
            partial.remove(addr).ok_or_else(|| {
                ServerError::new(
                    ErrorCode::Internal,
                    format!("partial chunk {addr} missing from fetch batch"),
                )
            })?
        };
        index::for_each_offset_pair(
            &valid,
            chunk_elems.lo(),
            chunking.strides(),
            region.lo(),
            &strides,
            |dst, src| {
                let d = dst as usize * esize;
                let s = src as usize * esize;
                bytes[d..d + esize].copy_from_slice(&data[s..s + esize]);
            },
        );
        array.cache.put_chunk(session, *addr, &bytes)?;
    }
    Ok(())
}

fn extend(array: &ArrayState, dim: u32, by: u64) -> Result<Vec<u64>> {
    // The metadata write lock is the extend serialization point: no other
    // extend, and no region operation's bounds snapshot, can interleave
    // with the axial-vector update. Chunk locks are not needed — existing
    // chunk addresses are immutable under `F*`'s append-only growth.
    let mut meta = array.meta.write();
    let by = usize::try_from(by)
        .map_err(|_| ServerError::bad_request(format!("extend amount {by} too large")))?;
    // Flush before growing so the payload file is never left with dirty
    // cached chunks beyond a stale length.
    array.cache.flush()?;
    let outcome = meta.extend(dim as usize, by)?;
    if outcome.new_chunk_count > 0 {
        array.xta.set_len(meta.payload_bytes())?;
    }
    let bytes = meta.encode();
    array.xmd.write_at(0, &bytes)?;
    array.xmd.set_len(bytes.len() as u64)?;
    // Extend-commit durability barrier: the axial vectors must be on disk
    // before any payload lands in the extended region, otherwise a crash
    // leaves `.xta` bytes that no `.xmd` mapping can address.
    array.xmd.sync()?;
    Ok(to_u64_dims(meta.element_bounds()))
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Collect the names and drop the arrays guard before touching the
        // sessions lock: Debug must not nest ServerArrays over
        // ServerSessions.
        let names = {
            let arrays = self.inner.arrays.lock();
            arrays.values().map(|a| a.name.clone()).collect::<Vec<_>>()
        };
        f.debug_struct("Server")
            .field("arrays", &names)
            .field("sessions", &self.session_count())
            .finish()
    }
}
