//! Shared chunk cache with cross-session fetch coalescing.
//!
//! One [`SharedChunkCache`] sits in front of each array's `.xta` payload
//! file, wrapping a `drx_mp::ChunkPool` (the Mpool stand-in) behind a
//! mutex so every session of the server shares one set of frames.
//!
//! Misses are gathered with a *group-commit* scheme: a session wanting
//! chunks enqueues the addresses and the first session to find no fetch in
//! flight becomes the **leader**, draining the queue and faulting the whole
//! batch in with `ChunkPool::prefetch` — which coalesces runs of
//! consecutive chunk addresses into single PFS reads. Sessions that arrive
//! while a fetch is in flight park on a condvar; their addresses ride in
//! the *next* batch, merged with whatever else accumulated. Under
//! concurrent load, adjacent reads from different sessions therefore
//! collapse into far fewer `drx-pfs` requests than one-request-per-chunk
//! naive I/O (observable via `PfsStats::total_requests`).
//!
//! Statistics: the pool's cumulative counters are the *global* view;
//! per-session views are accumulated from the stat deltas of each
//! operation the session performs. Misses incurred by a coalesced batch
//! are attributed to the session that led the batch.

use crate::error::Result;
use drx_mp::{ChunkPool, PoolStats};
use drx_pfs::PfsFile;
#[cfg(drx_sched)]
use drx_sched::sync::{Condvar, Mutex};
#[cfg(not(drx_sched))]
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
struct FetchQueue {
    /// Chunk addresses wanted by parked sessions (deduplicated, sorted).
    wanted: BTreeSet<u64>,
    /// Whether a leader is currently fetching.
    in_flight: bool,
    /// Bumped when a batch completes, so waiters can detect progress.
    generation: u64,
}

/// A `ChunkPool` shared by all sessions of one array, with coalesced miss
/// handling and per-session statistics.
pub struct SharedChunkCache {
    // lock-class: pool => ChunkPool
    pool: Mutex<ChunkPool>,
    // lock-class: queue => CacheQueue
    queue: Mutex<FetchQueue>,
    fetched: Condvar,
    // lock-class: sessions => SessionStats
    sessions: Mutex<HashMap<u64, PoolStats>>,
    batches: AtomicU64,
    batched_chunks: AtomicU64,
}

impl SharedChunkCache {
    pub fn new(file: PfsFile, chunk_bytes: usize, capacity: usize) -> Result<Self> {
        Ok(SharedChunkCache {
            pool: Mutex::new(ChunkPool::new(file, chunk_bytes, capacity)?),
            queue: Mutex::new(FetchQueue::default()),
            fetched: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            batches: AtomicU64::new(0),
            batched_chunks: AtomicU64::new(0),
        })
    }

    pub fn chunk_bytes(&self) -> usize {
        self.pool.lock().chunk_bytes()
    }

    /// Coalesced fetch batches executed so far.
    pub fn coalesced_batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Chunks faulted in via coalesced batches.
    pub fn batched_chunks(&self) -> u64 {
        self.batched_chunks.load(Ordering::Relaxed)
    }

    pub fn global_stats(&self) -> PoolStats {
        self.pool.lock().stats()
    }

    pub fn session_stats(&self, session: u64) -> PoolStats {
        self.sessions.lock().get(&session).copied().unwrap_or_default()
    }

    pub fn drop_session(&self, session: u64) {
        self.sessions.lock().remove(&session);
    }

    fn credit(&self, session: u64, delta: PoolStats) {
        self.sessions.lock().entry(session).or_default().merge(&delta);
    }

    /// Ensure `addrs` are resident, merging the faults of concurrent
    /// sessions into coalesced batches (see module docs). Purely an
    /// optimization: chunks evicted again before use are simply refaulted
    /// one at a time by the subsequent reads.
    fn ensure_resident(&self, session: u64, addrs: &[u64]) -> Result<()> {
        let mut q = self.queue.lock();
        q.wanted.extend(addrs.iter().copied());
        loop {
            if q.in_flight {
                // A batch is being fetched; our addresses ride in the next
                // one. Park until the current batch completes.
                let gen = q.generation;
                sched_probe!("cache:park");
                while q.in_flight && q.generation == gen {
                    self.fetched.wait(&mut q);
                }
                continue;
            }
            if q.wanted.is_empty() {
                // Someone else's batch covered everything we asked for.
                return Ok(());
            }
            // Become the leader: drain the queue and fetch it all.
            sched_probe!("cache:lead");
            q.in_flight = true;
            let batch: Vec<u64> = std::mem::take(&mut q.wanted).into_iter().collect();
            drop(q);

            // Credit the leader's per-session stats after the pool guard
            // is released: SessionStats is ordered after ChunkPool only in
            // the canonical DAG's absence — not nesting them at all keeps
            // the leader's critical section minimal.
            let (outcome, delta) = {
                let mut pool = self.pool.lock();
                let before = pool.stats();
                let out = pool.prefetch(&batch);
                let delta = pool.stats().delta_since(&before);
                (out, delta)
            };
            self.credit(session, delta);

            let mut q2 = self.queue.lock();
            q2.in_flight = false;
            q2.generation = q2.generation.wrapping_add(1);
            drop(q2);
            self.fetched.notify_all();

            let outcome = outcome?;
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.batched_chunks.fetch_add(outcome.fetched as u64, Ordering::Relaxed);
            return Ok(());
        }
    }

    /// Read whole chunks, faulting misses in as one coalesced batch.
    /// Returns the chunks' bytes in the order of `addrs`.
    pub fn read_chunks(&self, session: u64, addrs: &[u64]) -> Result<Vec<Vec<u8>>> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_resident(session, addrs)?;
        let mut pool = self.pool.lock();
        let before = pool.stats();
        let cb = pool.chunk_bytes();
        let mut out = Vec::with_capacity(addrs.len());
        for &a in addrs {
            let mut buf = vec![0u8; cb];
            pool.read(a, 0, &mut buf)?;
            out.push(buf);
        }
        let delta = pool.stats().delta_since(&before);
        drop(pool);
        self.credit(session, delta);
        Ok(out)
    }

    /// Replace one whole chunk (write-back; no read-modify-write).
    pub fn put_chunk(&self, session: u64, addr: u64, data: &[u8]) -> Result<()> {
        let mut pool = self.pool.lock();
        let before = pool.stats();
        pool.put(addr, data)?;
        let delta = pool.stats().delta_since(&before);
        drop(pool);
        self.credit(session, delta);
        Ok(())
    }

    /// Write all dirty frames back to the payload file.
    pub fn flush(&self) -> Result<()> {
        self.pool.lock().flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drx_pfs::Pfs;
    use std::sync::Arc;
    use std::thread;

    const CB: usize = 64;

    fn cache(chunks: usize, capacity: usize) -> (Pfs, Arc<SharedChunkCache>) {
        let pfs = Pfs::memory(2, 4096).unwrap();
        let f = pfs.create("payload").unwrap();
        f.set_len((chunks * CB) as u64).unwrap();
        for a in 0..chunks {
            f.write_at((a * CB) as u64, &[a as u8; CB]).unwrap();
        }
        let cache = Arc::new(SharedChunkCache::new(f, CB, capacity).unwrap());
        (pfs, cache)
    }

    #[test]
    fn adjacent_chunks_fetch_as_one_request() {
        let (pfs, cache) = cache(16, 16);
        pfs.reset_stats();
        let got = cache.read_chunks(1, &[3, 4, 5, 6]).unwrap();
        assert_eq!(got.len(), 4);
        for (i, chunk) in got.iter().enumerate() {
            assert_eq!(chunk[0], 3 + i as u8);
        }
        // One coalesced read for the run of four, not four requests.
        assert_eq!(pfs.stats().total_requests(), 1);
        assert_eq!(cache.coalesced_batches(), 1);
        assert_eq!(cache.batched_chunks(), 4);
        // All four subsequent copies were pool hits.
        let st = cache.global_stats();
        assert_eq!(st.misses, 4);
        assert_eq!(st.hits, 4);
    }

    #[test]
    fn per_session_stats_are_separated() {
        let (_pfs, cache) = cache(8, 8);
        cache.read_chunks(1, &[0, 1]).unwrap();
        cache.read_chunks(2, &[0, 1]).unwrap(); // all hits
        let s1 = cache.session_stats(1);
        let s2 = cache.session_stats(2);
        assert_eq!(s1.misses, 2);
        assert_eq!(s2.misses, 0);
        assert_eq!(s2.hits, 2);
        let g = cache.global_stats();
        assert_eq!(g.hits + g.misses, s1.accesses() + s2.accesses());
        cache.drop_session(1);
        assert_eq!(cache.session_stats(1), PoolStats::default());
    }

    #[test]
    fn put_then_flush_persists() {
        let (_pfs, cache) = cache(4, 4);
        cache.put_chunk(1, 2, &[0xAA; CB]).unwrap();
        cache.flush().unwrap();
        let got = cache.read_chunks(1, &[2]).unwrap();
        assert_eq!(got[0], vec![0xAA; CB]);
    }

    #[test]
    fn concurrent_sessions_all_see_correct_data() {
        // Capacity comfortably above the 32-chunk file: a prefetch batch
        // may transiently hold (resident + incoming) frames, and headroom
        // keeps that from evicting chunks another session is about to read.
        let (pfs, cache) = cache(32, 64);
        pfs.reset_stats();
        let mut handles = Vec::new();
        for s in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(thread::spawn(move || {
                for round in 0..10 {
                    let base = (s + round) % 28;
                    let addrs = [base, base + 1, base + 2, base + 3];
                    let got = cache.read_chunks(s, &addrs).unwrap();
                    for (i, chunk) in got.iter().enumerate() {
                        assert!(chunk.iter().all(|&b| b == (base as u8) + i as u8));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 8 sessions × 10 rounds × 4 chunks = 320 chunk reads. The bases
        // s+round span 0..=16, so the distinct chunks touched are exactly
        // 0..=19: twenty faults total, and nothing is ever evicted.
        let naive = 320;
        assert!(
            pfs.stats().total_requests() < naive,
            "coalescing should beat one request per chunk read: {} vs {naive}",
            pfs.stats().total_requests()
        );
        let g = cache.global_stats();
        assert_eq!(g.misses, 20);
        assert_eq!(g.evictions, 0);
    }
}
