//! # drx-server — a concurrent multi-client array service over DRX files
//!
//! The serial DRX library ([`drx_mp::DrxFile`]) is single-owner: one
//! process, one handle, no sharing. This crate turns a set of DRX arrays
//! into a *service* many clients use at once:
//!
//! * **Sessions** issue `Open` / `ReadRegion` / `WriteRegion` / `Extend` /
//!   `Stat` / `Close` requests ([`proto`]), over an in-process [`Client`]
//!   or the versioned binary TCP protocol ([`serve`] / [`TcpClient`]).
//! * **Chunk-range locking** ([`lock`]) gives region operations
//!   reader-shared / writer-exclusive access to exactly the chunks they
//!   touch, acquired all-or-nothing (deadlock-free by construction).
//! * **Extends serialize on the array metadata**, not on chunks: the
//!   axial-vector mapping `F*` is append-only (Otoo & Rotem's defining
//!   property), so growing the array never invalidates the address of any
//!   chunk an in-flight operation holds.
//! * **A shared chunk cache** ([`cache`]) backed by `drx_mp::ChunkPool`
//!   serves all sessions, with per-session and global hit/miss statistics.
//! * **Request batching**: concurrent misses are merged group-commit style
//!   and runs of adjacent chunks are fetched with single `drx-pfs`
//!   requests, so multi-client traffic costs fewer PFS round trips than
//!   naive per-session chunk I/O.
//!
//! ```
//! use drx_mp::DrxFile;
//! use drx_pfs::Pfs;
//! use drx_server::{Client, Server, ServerConfig};
//!
//! let pfs = Pfs::memory(4, 4096).unwrap();
//! DrxFile::<f64>::create(&pfs, "grid", &[2, 2], &[4, 4]).unwrap();
//!
//! let server = Server::new(pfs, ServerConfig::default());
//! let mut client = Client::connect(&server);
//! let (h, info) = client.open("grid").unwrap();
//! assert_eq!(info.bounds, vec![4, 4]);
//! client.write_region_from::<f64>(h, &[0, 0], &[1, 4], &[1.0, 2.0, 3.0, 4.0]).unwrap();
//! let row = client.read_region_as::<f64>(h, &[0, 0], &[1, 4]).unwrap();
//! assert_eq!(row, vec![1.0, 2.0, 3.0, 4.0]);
//! let bounds = client.extend(h, 0, 2).unwrap();
//! assert_eq!(bounds, vec![6, 4]);
//! client.close(h).unwrap();
//! ```

/// Trace hook for the drx-sched schedule explorer; compiles away entirely
/// outside `--cfg drx_sched` test builds. Defined before the modules so its
/// textual scope covers all of them.
macro_rules! sched_probe {
    ($label:literal) => {{
        #[cfg(drx_sched)]
        drx_sched::probe($label);
    }};
}

pub mod cache;
pub mod client;
pub mod error;
pub mod lock;
pub mod proto;
pub mod server;
pub mod tcp;

pub use cache::SharedChunkCache;
pub use client::{Client, Conn, TcpClient, Transport};
pub use error::{ErrorCode, Result, ServerError};
pub use lock::{LockMode, RangeGuard, RangeLockManager};
pub use proto::{ArrayInfo, Request, Response, StatReply};
pub use server::{Server, ServerConfig};
pub use tcp::{serve, serve_with, ServeConfig, ServeHandle};
