//! TCP transport: a listener plus a fixed pool of worker threads, each
//! accepting connections and running the frame loop. One connection is one
//! session; a connection is served entirely by the worker that accepted
//! it (requests within a session execute in order, matching the
//! in-process client's semantics).

use crate::error::{Result, ServerError};
use crate::proto::{
    decode_request, encode_response, error_response, read_frame, read_handshake, write_frame,
    write_handshake, MAX_FRAME,
};
use crate::server::Server;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport tuning for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Acceptor/worker threads (one connection is served by one worker).
    pub threads: usize,
    /// Socket read/write deadline. A connection that neither completes a
    /// frame nor drains our writes within this window is dropped, freeing
    /// its worker — a wedged or dead client cannot stall the pool forever.
    /// `None` disables deadlines (a worker then trusts the peer's TCP
    /// stack to report disconnects).
    pub io_timeout: Option<Duration>,
    /// Largest frame body this server accepts, advertised in the
    /// handshake.
    pub max_frame: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { threads: 4, io_timeout: Some(Duration::from_secs(30)), max_frame: MAX_FRAME }
    }
}

/// A running TCP server. Dropping the handle (or calling
/// [`ServeHandle::shutdown`]) stops the workers and flushes the server.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    server: Server,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Each blocked accept needs one wake-up connection.
        for _ in 0..self.workers.len() {
            // allow-discard: wake-up connection; failure means the worker already exited
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers.drain(..) {
            // allow-discard: a panicked worker is already dead; shutdown proceeds
            let _ = w.join();
        }
    }

    /// Stop accepting, join the workers, and flush all arrays.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop_workers();
        self.server.flush_all()
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_workers();
            // allow-discard: Drop cannot propagate; explicit shutdown paths report flush errors
            let _ = self.server.flush_all();
        }
    }
}

/// Serve `server` on `addr` with `threads` acceptor/worker threads and the
/// default transport tuning.
pub fn serve(server: &Server, addr: impl ToSocketAddrs, threads: usize) -> Result<ServeHandle> {
    serve_with(server, addr, ServeConfig { threads, ..ServeConfig::default() })
}

/// Serve `server` on `addr` with explicit transport tuning.
pub fn serve_with(
    server: &Server,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let threads = config.threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for i in 0..threads {
        let listener = listener.try_clone()?;
        let server = server.clone();
        let stop = Arc::clone(&stop);
        let config = config.clone();
        let worker = std::thread::Builder::new()
            .name(format!("drx-server-{i}"))
            .spawn(move || worker_loop(listener, server, stop, config))
            .map_err(ServerError::from)?;
        workers.push(worker);
    }
    Ok(ServeHandle { addr, stop, workers, server: server.clone() })
}

fn worker_loop(listener: TcpListener, server: Server, stop: Arc<AtomicBool>, config: ServeConfig) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // allow-discard: per-connection errors are isolated; keep accepting
                let _ = serve_connection(&server, stream, &config);
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Run one connection's handshake and frame loop to completion.
fn serve_connection(server: &Server, stream: TcpStream, config: &ServeConfig) -> Result<()> {
    stream.set_nodelay(true).ok();
    // Deadlines cover the handshake too: a client that connects and then
    // never speaks cannot pin this worker.
    stream.set_read_timeout(config.io_timeout)?;
    stream.set_write_timeout(config.io_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let theirs = read_handshake(&mut reader)?;
    write_handshake(&mut writer, config.max_frame.min(u32::MAX as usize) as u32)?;
    let limit = config.max_frame.min(theirs as usize);
    let session = server.open_session();
    let result = connection_loop(server, session, &mut reader, &mut writer, limit);
    server.close_session(session);
    result
}

fn connection_loop(
    server: &Server,
    session: u64,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    limit: usize,
) -> Result<()> {
    loop {
        let body = match read_frame(reader, limit) {
            Ok(Some(body)) => body,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => {
                // Report, then drop the connection: after a framing error
                // (or a read deadline expiring mid-frame) the stream
                // position is unreliable.
                // allow-discard: best-effort error report on an already-broken stream
                let _ = write_frame(writer, &encode_response(&error_response(&e)), limit);
                return Err(e);
            }
        };
        let resp = match decode_request(&body) {
            Ok(req) => server.handle(session, req),
            Err(e) => error_response(&e),
        };
        match write_frame(writer, &encode_response(&resp), limit) {
            Ok(()) => {}
            Err(e) if e.code == crate::error::ErrorCode::FrameTooLarge => {
                // The *response* outgrew the negotiated limit (e.g. a huge
                // region read over a small client cap): report the typed
                // error in-band and keep the connection alive.
                write_frame(writer, &encode_response(&error_response(&e)), limit)?;
            }
            Err(e) => return Err(e),
        }
    }
}
