//! TCP transport: a listener plus a fixed pool of worker threads, each
//! accepting connections and running the frame loop. One connection is one
//! session; a connection is served entirely by the worker that accepted
//! it (requests within a session execute in order, matching the
//! in-process client's semantics).

use crate::error::{Result, ServerError};
use crate::proto::{
    decode_request, encode_response, error_response, read_frame, read_handshake, write_frame,
    write_handshake,
};
use crate::server::Server;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server. Dropping the handle (or calling
/// [`ServeHandle::shutdown`]) stops the workers and flushes the server.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    server: Server,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Each blocked accept needs one wake-up connection.
        for _ in 0..self.workers.len() {
            // allow-discard: wake-up connection; failure means the worker already exited
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers.drain(..) {
            // allow-discard: a panicked worker is already dead; shutdown proceeds
            let _ = w.join();
        }
    }

    /// Stop accepting, join the workers, and flush all arrays.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop_workers();
        self.server.flush_all()
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_workers();
            // allow-discard: Drop cannot propagate; explicit shutdown paths report flush errors
            let _ = self.server.flush_all();
        }
    }
}

/// Serve `server` on `addr` with `threads` acceptor/worker threads.
pub fn serve(server: &Server, addr: impl ToSocketAddrs, threads: usize) -> Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let threads = threads.max(1);
    let mut workers = Vec::with_capacity(threads);
    for i in 0..threads {
        let listener = listener.try_clone()?;
        let server = server.clone();
        let stop = Arc::clone(&stop);
        let worker = std::thread::Builder::new()
            .name(format!("drx-server-{i}"))
            .spawn(move || worker_loop(listener, server, stop))
            .map_err(ServerError::from)?;
        workers.push(worker);
    }
    Ok(ServeHandle { addr, stop, workers, server: server.clone() })
}

fn worker_loop(listener: TcpListener, server: Server, stop: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // allow-discard: per-connection errors are isolated; keep accepting
                let _ = serve_connection(&server, stream);
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Run one connection's handshake and frame loop to completion.
fn serve_connection(server: &Server, stream: TcpStream) -> Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    read_handshake(&mut reader)?;
    write_handshake(&mut writer)?;
    let session = server.open_session();
    let result = connection_loop(server, session, &mut reader, &mut writer);
    server.close_session(session);
    result
}

fn connection_loop(
    server: &Server,
    session: u64,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> Result<()> {
    loop {
        let body = match read_frame(reader) {
            Ok(Some(body)) => body,
            Ok(None) => return Ok(()), // clean disconnect
            Err(e) => {
                // Report, then drop the connection: after a framing error
                // the stream position is unreliable.
                // allow-discard: best-effort error report on an already-broken stream
                let _ = write_frame(writer, &encode_response(&error_response(&e)));
                return Err(e);
            }
        };
        let resp = match decode_request(&body) {
            Ok(req) => server.handle(session, req),
            Err(e) => error_response(&e),
        };
        write_frame(writer, &encode_response(&resp))?;
    }
}
