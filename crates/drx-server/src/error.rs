//! Server-side error type and the stable wire error codes it maps to.

use std::fmt;

/// Stable error codes carried in `Response::Error` frames. Codes are part
/// of the wire protocol: new codes may be appended, existing values never
/// change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed frame or field (protocol-level).
    Protocol = 1,
    /// No array with the requested name.
    NoSuchArray = 2,
    /// Unknown or already-closed handle.
    BadHandle = 3,
    /// Region or index outside the array bounds, or rank mismatch.
    OutOfBounds = 4,
    /// Request is well-formed but invalid (bad dimension, zero extent,
    /// payload length mismatch, ...).
    BadRequest = 5,
    /// Underlying storage or metadata failure.
    Internal = 6,
    /// Part of the requested range lives on a stripe server that is down;
    /// retry later or read a range the surviving servers hold (degraded
    /// mode).
    Unavailable = 7,
    /// The frame body exceeds the negotiated frame-size limit; the frame
    /// was never sent (nothing is truncated on the wire).
    FrameTooLarge = 8,
}

impl ErrorCode {
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::NoSuchArray,
            3 => ErrorCode::BadHandle,
            4 => ErrorCode::OutOfBounds,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Unavailable,
            8 => ErrorCode::FrameTooLarge,
            _ => return None,
        })
    }
}

/// Error type for everything in this crate.
#[derive(Debug)]
pub struct ServerError {
    pub code: ErrorCode,
    pub message: String,
}

impl ServerError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServerError { code, message: message.into() }
    }

    pub fn protocol(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Protocol, message)
    }

    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    pub fn frame_too_large(len: usize, limit: usize) -> Self {
        Self::new(
            ErrorCode::FrameTooLarge,
            format!("frame body of {len} bytes exceeds the negotiated limit {limit}"),
        )
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

impl From<drx_core::DrxError> for ServerError {
    fn from(e: drx_core::DrxError) -> Self {
        let code = match &e {
            drx_core::DrxError::IndexOutOfBounds { .. }
            | drx_core::DrxError::AddressOutOfBounds { .. }
            | drx_core::DrxError::RankMismatch { .. } => ErrorCode::OutOfBounds,
            _ => ErrorCode::BadRequest,
        };
        ServerError::new(code, e.to_string())
    }
}

impl From<drx_pfs::PfsError> for ServerError {
    fn from(e: drx_pfs::PfsError) -> Self {
        let code = match &e {
            drx_pfs::PfsError::NoSuchFile(_) => ErrorCode::NoSuchArray,
            drx_pfs::PfsError::Unavailable { .. } => ErrorCode::Unavailable,
            _ => ErrorCode::Internal,
        };
        ServerError::new(code, e.to_string())
    }
}

impl From<drx_mp::MpError> for ServerError {
    fn from(e: drx_mp::MpError) -> Self {
        // A down stripe server keeps its typed code through the MpError
        // wrapper so remote clients can distinguish degraded-mode misses
        // from genuine storage corruption.
        let code = match &e {
            drx_mp::MpError::Pfs(drx_pfs::PfsError::Unavailable { .. }) => ErrorCode::Unavailable,
            drx_mp::MpError::Pfs(drx_pfs::PfsError::NoSuchFile(_)) => ErrorCode::NoSuchArray,
            _ => ErrorCode::Internal,
        };
        ServerError::new(code, e.to_string())
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::new(ErrorCode::Internal, e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, ServerError>;
