//! Client handles: one typed request API over two transports.
//!
//! [`Client`] talks to an in-process [`Server`] directly (no serialization
//! — ideal for tests and embedding); [`TcpClient`] speaks the
//! length-prefixed wire protocol of [`crate::proto`] over a socket. Both
//! are the same [`Conn`] type over different [`Transport`]s, so they expose
//! the identical API and cannot drift apart.

use crate::error::{ErrorCode, Result, ServerError};
use crate::proto::{self, encode_request, ArrayInfo, Request, Response, StatReply};
use crate::server::Server;
use drx_core::{dtype, Element};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// How requests reach the server.
pub trait Transport {
    fn call(&mut self, req: Request) -> Result<Response>;
}

/// In-process transport: requests go straight to [`Server::handle`].
pub struct Local {
    server: Server,
    session: u64,
}

impl Transport for Local {
    fn call(&mut self, req: Request) -> Result<Response> {
        Ok(self.server.handle(self.session, req))
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.server.close_session(self.session);
    }
}

/// TCP transport: frames over a socket per [`crate::proto`].
pub struct Tcp {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Negotiated frame-body cap: `min(ours, server's)`.
    limit: usize,
}

impl Transport for Tcp {
    fn call(&mut self, req: Request) -> Result<Response> {
        proto::write_frame(&mut self.writer, &encode_request(&req), self.limit)?;
        let body = proto::read_frame(&mut self.reader, self.limit)?
            .ok_or_else(|| ServerError::protocol("server closed the connection"))?;
        proto::decode_response(&body)
    }
}

/// A connection to an array server. `T` picks the transport; the request
/// API is transport-independent.
pub struct Conn<T: Transport> {
    transport: T,
}

/// In-process client handle.
pub type Client = Conn<Local>;

/// Remote client handle over TCP.
pub type TcpClient = Conn<Tcp>;

impl Client {
    /// Open a session against an in-process server. The session closes
    /// when the client drops.
    pub fn connect(server: &Server) -> Client {
        let session = server.open_session();
        Conn { transport: Local { server: server.clone(), session } }
    }
}

impl TcpClient {
    /// Connect and handshake with a TCP server, accepting frames up to the
    /// protocol default ([`proto::MAX_FRAME`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpClient> {
        Self::connect_with_max_frame(addr, proto::MAX_FRAME)
    }

    /// Connect advertising a custom frame cap; the effective limit for
    /// both directions is `min(max_frame, server's advertised limit)`.
    pub fn connect_with_max_frame(addr: impl ToSocketAddrs, max_frame: usize) -> Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        proto::write_handshake(&mut writer, max_frame.min(u32::MAX as usize) as u32)?;
        let theirs = proto::read_handshake(&mut reader)?;
        let limit = max_frame.min(theirs as usize);
        Ok(Conn { transport: Tcp { reader, writer, limit } })
    }
}

fn fail(resp: Response, wanted: &str) -> ServerError {
    match resp {
        Response::Error { code, message } => proto::response_error(code, message),
        other => ServerError::protocol(format!("expected {wanted}, got {other:?}")),
    }
}

impl<T: Transport> Conn<T> {
    /// Open an array by name; returns a handle plus its shape.
    pub fn open(&mut self, name: &str) -> Result<(u32, ArrayInfo)> {
        match self.transport.call(Request::Open { name: name.into() })? {
            Response::Opened { handle, info } => Ok((handle, info)),
            other => Err(fail(other, "Opened")),
        }
    }

    /// Read `[lo, hi)` as raw little-endian element bytes, row-major.
    pub fn read_region(&mut self, handle: u32, lo: &[u64], hi: &[u64]) -> Result<Vec<u8>> {
        let req = Request::ReadRegion { handle, lo: lo.to_vec(), hi: hi.to_vec() };
        match self.transport.call(req)? {
            Response::Data { data } => Ok(data),
            other => Err(fail(other, "Data")),
        }
    }

    /// Read `[lo, hi)` decoded as elements of type `E`.
    pub fn read_region_as<E: Element>(
        &mut self,
        handle: u32,
        lo: &[u64],
        hi: &[u64],
    ) -> Result<Vec<E>> {
        let bytes = self.read_region(handle, lo, hi)?;
        dtype::decode_slice(&bytes)
            .map_err(|e| ServerError::new(ErrorCode::BadRequest, e.to_string()))
    }

    /// Overwrite `[lo, hi)` with raw little-endian element bytes.
    pub fn write_region(&mut self, handle: u32, lo: &[u64], hi: &[u64], data: &[u8]) -> Result<()> {
        let req =
            Request::WriteRegion { handle, lo: lo.to_vec(), hi: hi.to_vec(), data: data.to_vec() };
        match self.transport.call(req)? {
            Response::Written => Ok(()),
            other => Err(fail(other, "Written")),
        }
    }

    /// Overwrite `[lo, hi)` with typed elements.
    pub fn write_region_from<E: Element>(
        &mut self,
        handle: u32,
        lo: &[u64],
        hi: &[u64],
        elems: &[E],
    ) -> Result<()> {
        self.write_region(handle, lo, hi, &dtype::encode_slice(elems))
    }

    /// Grow dimension `dim` by `by` elements; returns the new bounds.
    pub fn extend(&mut self, handle: u32, dim: u32, by: u64) -> Result<Vec<u64>> {
        match self.transport.call(Request::Extend { handle, dim, by })? {
            Response::Extended { bounds } => Ok(bounds),
            other => Err(fail(other, "Extended")),
        }
    }

    /// Shape and server-side statistics for the array.
    pub fn stat(&mut self, handle: u32) -> Result<StatReply> {
        match self.transport.call(Request::Stat { handle })? {
            Response::Stat(reply) => Ok(reply),
            other => Err(fail(other, "Stat")),
        }
    }

    /// Release the handle (flushes the array's cache).
    pub fn close(&mut self, handle: u32) -> Result<()> {
        match self.transport.call(Request::Close { handle })? {
            Response::Closed => Ok(()),
            other => Err(fail(other, "Closed")),
        }
    }
}
