//! Versioned binary wire protocol for the DRX array service.
//!
//! A connection starts with a 10-byte handshake in each direction — the
//! magic `b"DRXS"`, the little-endian `u16` protocol version, and the
//! little-endian `u32` largest frame body the sender will accept. Each
//! side uses the *minimum* of the two advertised limits for everything it
//! sends, so neither peer can be made to allocate more than it offered.
//! After the handshake, each direction carries *frames*: a little-endian
//! `u32` body length followed by the body. A request body is an opcode
//! byte plus fields; a response body is a status byte plus fields. All
//! integers are little-endian, matching the `.xmd` metadata codec.
//!
//! The format is versioned through [`PROTO_VERSION`]: a server refuses a
//! handshake carrying a version it does not speak, and opcode/error-code
//! values are append-only. Version 2 added the max-frame field to the
//! handshake (a v1 handshake is 6 bytes and is rejected).

use crate::error::{ErrorCode, Result, ServerError};
use drx_mp::PoolStats;
use std::io::{Read, Write};

/// Connection magic, sent by both sides before any frame.
pub const PROTO_MAGIC: [u8; 4] = *b"DRXS";
/// Current protocol version.
pub const PROTO_VERSION: u16 = 2;
/// Default upper bound on a frame body, advertised in the handshake;
/// length prefixes above the negotiated limit are rejected as protocol
/// errors rather than allocated.
pub const MAX_FRAME: usize = 1 << 30;

const OP_OPEN: u8 = 1;
const OP_READ_REGION: u8 = 2;
const OP_WRITE_REGION: u8 = 3;
const OP_EXTEND: u8 = 4;
const OP_STAT: u8 = 5;
const OP_CLOSE: u8 = 6;

const RESP_OPENED: u8 = 0x80;
const RESP_DATA: u8 = 0x81;
const RESP_WRITTEN: u8 = 0x82;
const RESP_EXTENDED: u8 = 0x83;
const RESP_STAT: u8 = 0x84;
const RESP_CLOSED: u8 = 0x85;
const RESP_ERROR: u8 = 0xFF;

/// A client request. Regions are half-open `[lo, hi)` boxes in element
/// coordinates; region payloads are raw little-endian element bytes in
/// row-major (C) order of the region extents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open the named array, returning a handle.
    Open { name: String },
    /// Read a region of the array as row-major element bytes.
    ReadRegion { handle: u32, lo: Vec<u64>, hi: Vec<u64> },
    /// Overwrite a region with row-major element bytes.
    WriteRegion { handle: u32, lo: Vec<u64>, hi: Vec<u64>, data: Vec<u8> },
    /// Grow dimension `dim` by `by` elements (append-only).
    Extend { handle: u32, dim: u32, by: u64 },
    /// Array shape plus server-side cache / I/O / lock statistics.
    Stat { handle: u32 },
    /// Release the handle.
    Close { handle: u32 },
}

/// Static description of an open array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// `DType::code()` of the element type.
    pub dtype: u8,
    pub bounds: Vec<u64>,
    pub chunk_shape: Vec<u64>,
}

impl ArrayInfo {
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }
}

/// Payload of a `Stat` response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatReply {
    pub dtype: u8,
    pub bounds: Vec<u64>,
    pub chunk_shape: Vec<u64>,
    pub total_chunks: u64,
    pub payload_bytes: u64,
    /// Chunk-cache counters attributed to the requesting session.
    pub session_cache: PoolStats,
    /// Chunk-cache counters for the whole array (all sessions).
    pub global_cache: PoolStats,
    /// Cumulative PFS request count across the server's file system.
    pub pfs_requests: u64,
    /// Cumulative PFS bytes moved.
    pub pfs_bytes: u64,
    /// Coalesced fetch batches executed for this array.
    pub coalesced_batches: u64,
    /// Times a session blocked waiting for a chunk-range lock.
    pub lock_waits: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Opened { handle: u32, info: ArrayInfo },
    Data { data: Vec<u8> },
    Written,
    Extended { bounds: Vec<u64> },
    Stat(StatReply),
    Closed,
    Error { code: u16, message: String },
}

// ---------------------------------------------------------------------------
// Body codec
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_dims(out: &mut Vec<u8>, dims: &[u64]) {
    out.push(dims.len() as u8);
    for &d in dims {
        put_u64(out, d);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_pool_stats(out: &mut Vec<u8>, s: &PoolStats) {
    put_u64(out, s.hits);
    put_u64(out, s.misses);
    put_u64(out, s.evictions);
    put_u64(out, s.writebacks);
}

/// Truncation-checked reader over a frame body.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Body { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(ServerError::protocol(format!(
                "truncated frame: wanted {n} bytes at {}, body is {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        // `take(N)` yields exactly `N` bytes, so the conversion only fails
        // if that invariant is broken — surface it as a protocol error
        // rather than a panic in the decode path.
        self.take(N)?
            .try_into()
            .map_err(|_| ServerError::protocol("internal: slice length mismatch".to_string()))
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn dims(&mut self) -> Result<Vec<u64>> {
        let k = self.u8()? as usize;
        (0..k).map(|_| self.u64()).collect()
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServerError::protocol("string field is not UTF-8"))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn pool_stats(&mut self) -> Result<PoolStats> {
        Ok(PoolStats {
            hits: self.u64()?,
            misses: self.u64()?,
            evictions: self.u64()?,
            writebacks: self.u64()?,
        })
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(ServerError::protocol(format!(
                "{} trailing bytes after frame body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encode a request body (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Open { name } => {
            out.push(OP_OPEN);
            put_str(&mut out, name);
        }
        Request::ReadRegion { handle, lo, hi } => {
            out.push(OP_READ_REGION);
            put_u32(&mut out, *handle);
            put_dims(&mut out, lo);
            put_dims(&mut out, hi);
        }
        Request::WriteRegion { handle, lo, hi, data } => {
            out.push(OP_WRITE_REGION);
            put_u32(&mut out, *handle);
            put_dims(&mut out, lo);
            put_dims(&mut out, hi);
            put_bytes(&mut out, data);
        }
        Request::Extend { handle, dim, by } => {
            out.push(OP_EXTEND);
            put_u32(&mut out, *handle);
            put_u32(&mut out, *dim);
            put_u64(&mut out, *by);
        }
        Request::Stat { handle } => {
            out.push(OP_STAT);
            put_u32(&mut out, *handle);
        }
        Request::Close { handle } => {
            out.push(OP_CLOSE);
            put_u32(&mut out, *handle);
        }
    }
    out
}

/// Decode a request body.
pub fn decode_request(body: &[u8]) -> Result<Request> {
    let mut b = Body::new(body);
    let req = match b.u8()? {
        OP_OPEN => Request::Open { name: b.string()? },
        OP_READ_REGION => Request::ReadRegion { handle: b.u32()?, lo: b.dims()?, hi: b.dims()? },
        OP_WRITE_REGION => Request::WriteRegion {
            handle: b.u32()?,
            lo: b.dims()?,
            hi: b.dims()?,
            data: b.bytes()?,
        },
        OP_EXTEND => Request::Extend { handle: b.u32()?, dim: b.u32()?, by: b.u64()? },
        OP_STAT => Request::Stat { handle: b.u32()? },
        OP_CLOSE => Request::Close { handle: b.u32()? },
        op => return Err(ServerError::protocol(format!("unknown request opcode {op:#04x}"))),
    };
    b.finish()?;
    Ok(req)
}

/// Encode a response body (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Opened { handle, info } => {
            out.push(RESP_OPENED);
            put_u32(&mut out, *handle);
            out.push(info.dtype);
            put_dims(&mut out, &info.bounds);
            put_dims(&mut out, &info.chunk_shape);
        }
        Response::Data { data } => {
            out.push(RESP_DATA);
            put_bytes(&mut out, data);
        }
        Response::Written => out.push(RESP_WRITTEN),
        Response::Extended { bounds } => {
            out.push(RESP_EXTENDED);
            put_dims(&mut out, bounds);
        }
        Response::Stat(s) => {
            out.push(RESP_STAT);
            out.push(s.dtype);
            put_dims(&mut out, &s.bounds);
            put_dims(&mut out, &s.chunk_shape);
            put_u64(&mut out, s.total_chunks);
            put_u64(&mut out, s.payload_bytes);
            put_pool_stats(&mut out, &s.session_cache);
            put_pool_stats(&mut out, &s.global_cache);
            put_u64(&mut out, s.pfs_requests);
            put_u64(&mut out, s.pfs_bytes);
            put_u64(&mut out, s.coalesced_batches);
            put_u64(&mut out, s.lock_waits);
        }
        Response::Closed => out.push(RESP_CLOSED),
        Response::Error { code, message } => {
            out.push(RESP_ERROR);
            put_u16(&mut out, *code);
            put_str(&mut out, message);
        }
    }
    out
}

/// Decode a response body.
pub fn decode_response(body: &[u8]) -> Result<Response> {
    let mut b = Body::new(body);
    let resp = match b.u8()? {
        RESP_OPENED => {
            let handle = b.u32()?;
            let dtype = b.u8()?;
            let bounds = b.dims()?;
            let chunk_shape = b.dims()?;
            Response::Opened { handle, info: ArrayInfo { dtype, bounds, chunk_shape } }
        }
        RESP_DATA => Response::Data { data: b.bytes()? },
        RESP_WRITTEN => Response::Written,
        RESP_EXTENDED => Response::Extended { bounds: b.dims()? },
        RESP_STAT => Response::Stat(StatReply {
            dtype: b.u8()?,
            bounds: b.dims()?,
            chunk_shape: b.dims()?,
            total_chunks: b.u64()?,
            payload_bytes: b.u64()?,
            session_cache: b.pool_stats()?,
            global_cache: b.pool_stats()?,
            pfs_requests: b.u64()?,
            pfs_bytes: b.u64()?,
            coalesced_batches: b.u64()?,
            lock_waits: b.u64()?,
        }),
        RESP_CLOSED => Response::Closed,
        RESP_ERROR => Response::Error { code: b.u16()?, message: b.string()? },
        op => return Err(ServerError::protocol(format!("unknown response opcode {op:#04x}"))),
    };
    b.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Framing and handshake over a byte stream
// ---------------------------------------------------------------------------

/// Write the handshake preamble: magic + version + the largest frame body
/// this side will accept.
pub fn write_handshake(w: &mut impl Write, max_frame: u32) -> std::io::Result<()> {
    w.write_all(&PROTO_MAGIC)?;
    w.write_all(&PROTO_VERSION.to_le_bytes())?;
    w.write_all(&max_frame.to_le_bytes())?;
    w.flush()
}

/// Read and validate the peer's handshake preamble; returns the peer's
/// advertised frame limit. The caller must cap everything it *sends* at
/// `min(own limit, returned limit)`.
pub fn read_handshake(r: &mut impl Read) -> Result<u32> {
    let mut buf = [0u8; 10];
    r.read_exact(&mut buf).map_err(|e| ServerError::protocol(format!("handshake: {e}")))?;
    if buf[..4] != PROTO_MAGIC {
        return Err(ServerError::protocol("bad magic in handshake"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != PROTO_VERSION {
        return Err(ServerError::protocol(format!(
            "protocol version {version} not supported (expected {PROTO_VERSION})"
        )));
    }
    Ok(u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]))
}

/// Write one length-prefixed frame. Bodies longer than `limit` (the
/// negotiated frame cap) fail with [`ErrorCode::FrameTooLarge`] before any
/// bytes hit the wire — in particular a body of 4 GiB or more, whose
/// length a `u32` prefix cannot represent, can never be silently
/// truncated.
pub fn write_frame(w: &mut impl Write, body: &[u8], limit: usize) -> Result<()> {
    if body.len() > limit || u32::try_from(body.len()).is_err() {
        return Err(ServerError::frame_too_large(body.len(), limit));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame, rejecting length prefixes above the
/// negotiated `limit` *before* allocating the body buffer (the length
/// field is untrusted input). Returns `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read, limit: usize) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ServerError::protocol(format!("frame header: {e}"))),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > limit {
        return Err(ServerError::protocol(format!("frame of {n} bytes exceeds limit {limit}")));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body).map_err(|e| ServerError::protocol(format!("frame body: {e}")))?;
    Ok(Some(body))
}

/// Convenience: a `ServerError` rendered as an error response.
pub fn error_response(e: &ServerError) -> Response {
    Response::Error { code: e.code as u16, message: e.message.clone() }
}

/// Convenience: rebuild a `ServerError` from an error response.
pub fn response_error(code: u16, message: String) -> ServerError {
    ServerError::new(ErrorCode::from_u16(code).unwrap_or(ErrorCode::Internal), message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let body = encode_request(&req);
        assert_eq!(decode_request(&body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let body = encode_response(&resp);
        assert_eq!(decode_response(&body).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Open { name: "matrix".into() });
        roundtrip_request(Request::ReadRegion { handle: 7, lo: vec![0, 2, 4], hi: vec![1, 3, 9] });
        roundtrip_request(Request::WriteRegion {
            handle: 1,
            lo: vec![5],
            hi: vec![6],
            data: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
        roundtrip_request(Request::Extend { handle: 2, dim: 1, by: 12 });
        roundtrip_request(Request::Stat { handle: 3 });
        roundtrip_request(Request::Close { handle: u32::MAX });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Opened {
            handle: 9,
            info: ArrayInfo { dtype: 4, bounds: vec![10, 12], chunk_shape: vec![2, 3] },
        });
        roundtrip_response(Response::Data { data: vec![0xAB; 100] });
        roundtrip_response(Response::Written);
        roundtrip_response(Response::Extended { bounds: vec![10, 16] });
        roundtrip_response(Response::Stat(StatReply {
            dtype: 2,
            bounds: vec![4, 4],
            chunk_shape: vec![2, 2],
            total_chunks: 4,
            payload_bytes: 128,
            session_cache: PoolStats { hits: 1, misses: 2, evictions: 3, writebacks: 4 },
            global_cache: PoolStats { hits: 5, misses: 6, evictions: 7, writebacks: 8 },
            pfs_requests: 9,
            pfs_bytes: 10,
            coalesced_batches: 11,
            lock_waits: 12,
        }));
        roundtrip_response(Response::Closed);
        roundtrip_response(Response::Error { code: 4, message: "out of bounds".into() });
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        // Empty body.
        assert!(decode_request(&[]).is_err());
        // Unknown opcode.
        assert!(decode_request(&[0x77]).is_err());
        assert!(decode_response(&[0x00]).is_err());
        // Truncated string length.
        assert!(decode_request(&[OP_OPEN, 5, 0, b'a']).is_err());
        // Trailing garbage.
        let mut body = encode_request(&Request::Stat { handle: 1 });
        body.push(0);
        assert!(decode_request(&body).is_err());
        // Non-UTF-8 name.
        assert!(decode_request(&[OP_OPEN, 2, 0, 0xFF, 0xFE]).is_err());
    }

    #[test]
    fn framing_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_handshake(&mut buf, MAX_FRAME as u32).unwrap();
        write_frame(&mut buf, b"hello", MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", MAX_FRAME).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_handshake(&mut r).unwrap(), MAX_FRAME as u32);
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn handshake_rejects_bad_magic_and_version() {
        let mut r: &[u8] = b"NOPE\x01\x00\0\0\0\x01";
        assert!(read_handshake(&mut r).is_err());
        let mut r: &[u8] = &[b'D', b'R', b'X', b'S', 0xEE, 0xEE, 0, 0, 0, 1];
        assert!(read_handshake(&mut r).is_err());
        // A v1 (6-byte) handshake truncates and is rejected.
        let mut r: &[u8] = &[b'D', b'R', b'X', b'S', 1, 0];
        assert!(read_handshake(&mut r).is_err());
        let mut r: &[u8] = b"D";
        assert!(read_handshake(&mut r).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // Regression: a hostile length prefix must not drive `vec![0; n]`.
        // With the cap checked first, even `u32::MAX` never allocates.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        // The negotiated limit, not the compile-time default, is enforced.
        let mut small = Vec::new();
        write_frame(&mut small, &[0u8; 64], MAX_FRAME).unwrap();
        assert!(read_frame(&mut &small[..], 16).is_err());
        assert!(read_frame(&mut &small[..], 64).unwrap().is_some());
    }

    #[test]
    fn frame_too_large_is_a_typed_error_not_truncation() {
        // Regression: `body.len() as u32` used to truncate silently for
        // bodies of 4 GiB and more; now any body over the negotiated limit
        // is refused with a typed error and nothing is written.
        let mut out = Vec::new();
        let err = write_frame(&mut out, &[0u8; 100], 64).unwrap_err();
        assert_eq!(err.code, ErrorCode::FrameTooLarge);
        assert!(err.message.contains("100"));
        assert!(out.is_empty(), "no partial frame may reach the wire");
        // At the limit is fine.
        write_frame(&mut out, &[0u8; 64], 64).unwrap();
        assert_eq!(read_frame(&mut &out[..], 64).unwrap().unwrap().len(), 64);
    }
}
