//! # drx-bench — figure regeneration and evaluation harness
//!
//! * [`figures`] rebuilds the paper's Figures 1–3 (deterministic address
//!   layouts, asserted against the paper's numbers).
//! * [`experiments`] implements the evaluation suite E1–E9 described in
//!   DESIGN.md §2, reporting deterministic simulated-time tables.
//! * `benches/` wraps the same kernels in Criterion for wall-clock numbers.
//! * Binaries: `figures` (print the figures) and `harness` (run E1–E6 and
//!   print the tables recorded in EXPERIMENTS.md).

pub mod experiments;
pub mod figures;
pub mod table;

pub use table::Table;
