//! **E2 — extension cost along a non-primary dimension** (paper §I/§II).
//!
//! Claim: DRX extends *any* dimension by appending a segment of chunks —
//! zero bytes of existing data move — while a conventional row-major array
//! file must reorganize (move nearly every element) and a netCDF-style
//! record file must redefine-and-copy. Expected shape: DRX and the
//! HDF5-like chunked store flat at ~0 moved bytes; row-major and
//! netCDF-like growing linearly with the array size.

use crate::table::{fmt_bytes, fmt_ns, Table};
use drx_baselines::{DraLikeFile, Hdf5LikeFile, NetcdfLikeFile, RowMajorFile};
use drx_core::{Layout, Region};
use drx_mp::DrxFile;
use drx_pfs::Pfs;

#[derive(Debug, Clone)]
pub struct Params {
    /// Square array sides to sweep (elements, f64).
    pub sides: Vec<usize>,
    /// Chunk side for the chunked formats.
    pub chunk: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { sides: vec![64, 128, 256], chunk: 32 }
    }
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    pub format: &'static str,
    pub side: usize,
    pub bytes_moved: u64,
    pub pfs_bytes: u64,
    pub sim_ns: u64,
}

/// Extend dimension 1 (a non-record, non-primary dimension) of an N×N f64
/// array by `chunk` indices in every format and account the costs.
pub fn measure(params: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &params.sides {
        let region = Region::new(vec![0, 0], vec![n, n]).expect("valid");
        let data: Vec<f64> = (0..(n * n) as u64).map(|x| x as f64).collect();

        // DRX: chunked + F* → append-only.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let mut f: DrxFile<f64> =
                DrxFile::create(&pfs, "drx", &[params.chunk, params.chunk], &[n, n])
                    .expect("valid");
            f.write_region(&region, Layout::C, &data).expect("seed");
            pfs.reset_stats();
            f.extend(1, params.chunk).expect("extend");
            let st = pfs.stats();
            rows.push(Row {
                format: "DRX (F*)",
                side: n,
                bytes_moved: 0,
                pfs_bytes: st.total_bytes(),
                sim_ns: st.sim_time_parallel_ns(),
            });
        }
        // HDF5-like: chunked + B-tree → metadata-only extension.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let mut f: Hdf5LikeFile<f64> =
                Hdf5LikeFile::create(&pfs, "h5", &[params.chunk, params.chunk], &[n, n], 4096)
                    .expect("valid");
            f.write_region(&region, Layout::C, &data).expect("seed");
            pfs.reset_stats();
            f.extend(1, params.chunk).expect("extend");
            let st = pfs.stats();
            rows.push(Row {
                format: "HDF5-like (B-tree)",
                side: n,
                bytes_moved: 0,
                pfs_bytes: st.total_bytes(),
                sim_ns: st.sim_time_parallel_ns(),
            });
        }
        // DRA-like: chunked with row-major chunk addressing — reorganizes
        // at chunk granularity for any dimension but 0.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let mut f: DraLikeFile<f64> =
                DraLikeFile::create(&pfs, "dra", &[params.chunk, params.chunk], &[n, n])
                    .expect("valid");
            f.write_region(&region, Layout::C, &data).expect("seed");
            pfs.reset_stats();
            let cost = f.extend(1, params.chunk).expect("extend");
            let st = pfs.stats();
            rows.push(Row {
                format: "DRA-like (row-major chunks)",
                side: n,
                bytes_moved: cost.bytes_moved,
                pfs_bytes: st.total_bytes(),
                sim_ns: st.sim_time_parallel_ns(),
            });
        }
        // Conventional row-major: full reorganization.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let mut f: RowMajorFile<f64> =
                RowMajorFile::create(&pfs, "rm", &[n, n]).expect("valid");
            f.write_region(&region, Layout::C, &data).expect("seed");
            pfs.reset_stats();
            let cost = f.extend(1, params.chunk).expect("extend");
            let st = pfs.stats();
            rows.push(Row {
                format: "row-major file",
                side: n,
                bytes_moved: cost.bytes_moved,
                pfs_bytes: st.total_bytes(),
                sim_ns: st.sim_time_parallel_ns(),
            });
        }
        // NetCDF-like: redefine + copy.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let mut f: NetcdfLikeFile<f64> =
                NetcdfLikeFile::create(&pfs, "nc", &[n, n]).expect("valid");
            f.write_region(&region, Layout::C, &data).expect("seed");
            pfs.reset_stats();
            let cost = f.extend_fixed(1, params.chunk).expect("extend");
            let st = pfs.stats();
            rows.push(Row {
                format: "netCDF-like",
                side: n,
                bytes_moved: cost.bytes_moved,
                pfs_bytes: st.total_bytes(),
                sim_ns: st.sim_time_parallel_ns(),
            });
        }
        // NetCDF-like record-dimension append for contrast (the one cheap
        // direction a record file has).
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let mut f: NetcdfLikeFile<f64> =
                NetcdfLikeFile::create(&pfs, "nc", &[n, n]).expect("valid");
            f.write_region(&region, Layout::C, &data).expect("seed");
            pfs.reset_stats();
            let cost = f.append_records(params.chunk).expect("extend");
            let st = pfs.stats();
            rows.push(Row {
                format: "netCDF-like (record dim)",
                side: n,
                bytes_moved: cost.bytes_moved,
                pfs_bytes: st.total_bytes(),
                sim_ns: st.sim_time_parallel_ns(),
            });
        }
    }
    rows
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        "E2 — cost of extending dimension 1 of an N×N f64 array by one chunk width",
        &["format", "N", "bytes moved", "PFS bytes", "simulated time"],
    );
    for r in measure(&params) {
        table.row(vec![
            r.format.to_string(),
            r.side.to_string(),
            fmt_bytes(r.bytes_moved),
            fmt_bytes(r.pfs_bytes),
            fmt_ns(r.sim_ns),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drx_moves_nothing_rowmajor_moves_everything() {
        let rows = measure(&Params { sides: vec![32], chunk: 8 });
        let drx = rows.iter().find(|r| r.format.starts_with("DRX")).unwrap();
        let rm = rows.iter().find(|r| r.format == "row-major file").unwrap();
        let nc = rows.iter().find(|r| r.format == "netCDF-like").unwrap();
        let rec = rows.iter().find(|r| r.format == "netCDF-like (record dim)").unwrap();
        let dra = rows.iter().find(|r| r.format.starts_with("DRA-like")).unwrap();
        assert_eq!(drx.bytes_moved, 0);
        assert!(
            dra.bytes_moved >= (32 * 32 * 8) / 2,
            "DRA must move most chunks, got {}",
            dra.bytes_moved
        );
        assert!(rm.bytes_moved >= (32 * 32 * 8) as u64, "row-major must move ~the whole array");
        assert!(nc.bytes_moved >= (32 * 32 * 8) as u64);
        assert_eq!(rec.bytes_moved, 0, "record-dim append is the cheap direction");
        assert!(drx.sim_ns < rm.sim_ns, "DRX extension must be cheaper in simulated time");
    }

    #[test]
    fn reorganization_grows_with_n() {
        let rows = measure(&Params { sides: vec![16, 64], chunk: 8 });
        let rm16 = rows.iter().find(|r| r.format == "row-major file" && r.side == 16).unwrap();
        let rm64 = rows.iter().find(|r| r.format == "row-major file" && r.side == 64).unwrap();
        assert!(rm64.bytes_moved > rm16.bytes_moved * 8);
        let drx64 = rows.iter().find(|r| r.format.starts_with("DRX") && r.side == 64).unwrap();
        assert_eq!(drx64.bytes_moved, 0);
    }
}
