//! **E4 — parallel zone reads: independent vs two-phase collective I/O**
//! (paper §II-A, §IV-B).
//!
//! Claim: distributing the principal array as BLOCK zones and reading them
//! with collective I/O (irregular indexed file views + `read_all`)
//! aggregates the many small chunk requests into few large contiguous PFS
//! requests. Expected shape: collective mode needs far fewer requests, and
//! aggregate simulated bandwidth scales with the number of ranks until the
//! I/O servers saturate.

use crate::table::{fmt_bytes, fmt_ns, Table};
use drx_core::{Layout, Region};
use drx_mp::{DistSpec, DrxFile, DrxmpHandle};
use drx_msg::run_spmd;
use drx_pfs::Pfs;

#[derive(Debug, Clone)]
pub struct Params {
    pub side: usize,
    pub chunk: usize,
    pub ranks: Vec<usize>,
    pub servers: usize,
    pub stripe: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params { side: 256, chunk: 16, ranks: vec![1, 2, 4, 8], servers: 4, stripe: 64 * 1024 }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub ranks: usize,
    pub mode: &'static str,
    pub requests: u64,
    pub bytes: u64,
    pub sim_ns: u64,
    /// Aggregate simulated bandwidth (bytes / parallel simulated second).
    pub mb_per_s: f64,
}

pub fn measure(params: &Params) -> Vec<Row> {
    let n = params.side;
    let mut rows = Vec::new();
    for &p in &params.ranks {
        for (collective, mode) in [(false, "independent"), (true, "collective (two-phase)")] {
            let pfs = Pfs::memory(params.servers, params.stripe).expect("valid");
            {
                let mut f: DrxFile<f64> =
                    DrxFile::create(&pfs, "arr", &[params.chunk, params.chunk], &[n, n])
                        .expect("valid");
                let region = Region::new(vec![0, 0], vec![n, n]).expect("valid");
                let data: Vec<f64> = (0..(n * n) as u64).map(|x| x as f64).collect();
                f.write_region(&region, Layout::C, &data).expect("seed");
            }
            pfs.reset_stats();
            let fs = pfs.clone();
            run_spmd(p, move |comm| {
                let dist = DistSpec::auto(comm.size(), 2);
                let mut h: DrxmpHandle<f64> =
                    DrxmpHandle::open(comm, &fs, "arr", dist).map_err(drx_mp::error::to_msg)?;
                if collective {
                    let _ = h.read_my_zone(Layout::C).map_err(drx_mp::error::to_msg)?;
                } else if let Some(zone) = h.my_zone() {
                    let _ = h.read_region(&zone, Layout::C).map_err(drx_mp::error::to_msg)?;
                }
                h.close().map_err(drx_mp::error::to_msg)?;
                Ok(())
            })
            .expect("spmd run");
            let st = pfs.stats();
            let sim = st.sim_time_parallel_ns().max(1);
            rows.push(Row {
                ranks: p,
                mode,
                requests: st.total_requests(),
                bytes: st.total_bytes(),
                sim_ns: sim,
                mb_per_s: st.total_bytes() as f64 / (sim as f64 / 1e9) / 1e6,
            });
        }
    }
    rows
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        format!(
            "E4 — reading BLOCK zones of a {0}×{0} f64 array ({1}×{1} chunks) over P ranks, {2} I/O servers",
            params.side, params.chunk, params.servers
        ),
        &["P", "mode", "PFS requests", "bytes", "simulated time", "agg. MB/s"],
    );
    for r in measure(&params) {
        table.row(vec![
            r.ranks.to_string(),
            r.mode.to_string(),
            r.requests.to_string(),
            fmt_bytes(r.bytes),
            fmt_ns(r.sim_ns),
            format!("{:.1}", r.mb_per_s),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_beats_independent_on_requests() {
        let rows =
            measure(&Params { side: 64, chunk: 8, ranks: vec![4], servers: 4, stripe: 16 * 1024 });
        let ind = rows.iter().find(|r| r.mode == "independent").unwrap();
        let coll = rows.iter().find(|r| r.mode.starts_with("collective")).unwrap();
        assert!(
            coll.requests < ind.requests,
            "two-phase should coalesce: {} vs {}",
            coll.requests,
            ind.requests
        );
        assert!(coll.sim_ns <= ind.sim_ns);
    }

    #[test]
    fn zone_reads_cover_each_byte_once_independently() {
        let rows = measure(&Params {
            side: 32,
            chunk: 8,
            ranks: vec![1, 4],
            servers: 2,
            stripe: 8 * 1024,
        });
        let payload = 32u64 * 32 * 8;
        for r in rows.iter().filter(|r| r.mode == "independent") {
            // Zone reads cover each payload byte exactly once; the only
            // extra traffic is the (few-hundred-byte) metadata file read on
            // open.
            assert!(
                r.bytes >= payload && r.bytes < payload + 4096,
                "P={}: read {} bytes for a {payload}-byte payload",
                r.ranks,
                r.bytes
            );
        }
    }
}
