//! **E1 — mapping-function cost** (paper §III / §V).
//!
//! Claim: computing a chunk address with `F*` costs `O(k)` binary searches
//! over the axial vectors (`O(k·log E)`, with the merged directory `O(k +
//! log E)` for the inverse) — "a computed access function in a manner
//! similar to hashing" — while an HDF5-style chunk B-tree pays real page
//! reads per lookup. Expected shape: `F*` within a small factor of the
//! conventional row-major `F`, nearly flat in `E`; B-tree lookups orders of
//! magnitude more expensive and growing with the tree depth.

use super::{time_per_op, Lcg};
use crate::table::Table;
use drx_baselines::Btree;
use drx_core::alloc::MortonK;
use drx_core::index::row_major_offset;
use drx_core::ExtendibleShape;
use drx_pfs::Pfs;

#[derive(Debug, Clone)]
pub struct Params {
    /// Ranks to sweep.
    pub ranks: Vec<usize>,
    /// Expansion counts to sweep.
    pub expansions: Vec<usize>,
    /// Timed iterations per cell.
    pub iters: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { ranks: vec![2, 3, 4], expansions: vec![4, 32, 256], iters: 20_000 }
    }
}

/// Build a shape of rank `k` grown by `e` cyclic single-index extensions.
pub fn grown_shape(k: usize, e: usize) -> ExtendibleShape {
    let mut s = ExtendibleShape::new(&vec![2; k]).expect("valid");
    for i in 0..e {
        // Cycle dimensions with a stride that avoids long uninterrupted runs
        // (which would merge records and shrink E).
        s.extend(i % k, 1).expect("valid");
    }
    s
}

/// Sample valid chunk indices of a shape.
fn sample_indices(s: &ExtendibleShape, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| s.bounds().iter().map(|&b| rng.below(b)).collect()).collect()
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        "E1 — chunk address computation cost (ns/op) and B-tree lookup pages",
        &[
            "rank k",
            "expansions E",
            "records",
            "F* ns/op",
            "F*⁻¹ ns/op",
            "row-major F ns/op",
            "Morton ns/op",
            "B-tree ns/op",
            "B-tree pages/lookup",
        ],
    );
    for &k in &params.ranks {
        for &e in &params.expansions {
            let shape = grown_shape(k, e);
            let indices = sample_indices(&shape, 256, (k * 1000 + e) as u64);
            let addrs: Vec<u64> =
                indices.iter().map(|i| shape.address(i).expect("valid")).collect();

            let mut cursor = 0usize;
            let fstar = time_per_op(params.iters, || {
                cursor = (cursor + 1) % indices.len();
                std::hint::black_box(shape.address_unchecked(&indices[cursor]));
            });
            let mut cursor = 0usize;
            let finv = time_per_op(params.iters, || {
                cursor = (cursor + 1) % addrs.len();
                std::hint::black_box(shape.index_of(addrs[cursor]).expect("valid"));
            });
            // Conventional row-major F over the final bounds (the static
            // baseline that cannot extend).
            let bounds = shape.bounds().to_vec();
            let mut cursor = 0usize;
            let frow = time_per_op(params.iters, || {
                cursor = (cursor + 1) % indices.len();
                std::hint::black_box(row_major_offset(&indices[cursor], &bounds).expect("valid"));
            });
            // Morton over the same rank (power-of-two bits covering bounds).
            let bits = bounds.iter().map(|&b| 64 - (b as u64).leading_zeros()).max().unwrap_or(1);
            let morton = MortonK::new(k, bits.min(63 / k as u32).max(1)).expect("valid");
            let morton_indices: Vec<Vec<usize>> = indices
                .iter()
                .map(|idx| idx.iter().map(|&i| i.min((1 << (63 / k)) - 1)).collect())
                .collect();
            let mut cursor = 0usize;
            let mort = time_per_op(params.iters, || {
                cursor = (cursor + 1) % morton_indices.len();
                std::hint::black_box(morton.encode(&morton_indices[cursor]).expect("valid"));
            });
            // B-tree over all chunk addresses (HDF5-style chunk index).
            let pfs = Pfs::memory(1, 1 << 20).expect("valid");
            let mut tree =
                Btree::create(pfs.create("idx").expect("fresh"), k, 4096).expect("valid");
            // Insert a bounded number of chunk keys: enough for realistic
            // depth without an O(total) harness.
            let total = shape.total_chunks().min(20_000);
            for a in 0..total {
                let idx = shape.index_of(a).expect("valid");
                let key: Vec<u64> = idx.iter().map(|&i| i as u64).collect();
                tree.insert(&key, a).expect("insert");
            }
            let keys: Vec<Vec<u64>> =
                indices.iter().map(|idx| idx.iter().map(|&i| i as u64).collect()).collect();
            tree.reset_stats();
            let mut cursor = 0usize;
            let bt = time_per_op(params.iters.min(5_000), || {
                cursor = (cursor + 1) % keys.len();
                std::hint::black_box(tree.get(&keys[cursor]).expect("lookup"));
            });
            let lookups = params.iters.min(5_000) as u64;
            let pages = tree.stats().page_reads as f64 / lookups as f64;

            table.row(vec![
                k.to_string(),
                e.to_string(),
                shape.record_count().to_string(),
                fstar.to_string(),
                finv.to_string(),
                frow.to_string(),
                mort.to_string(),
                bt.to_string(),
                format!("{pages:.1}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grown_shape_has_expected_records() {
        let s = grown_shape(3, 30);
        // Cyclic extensions never merge: initial record + 30.
        assert_eq!(s.record_count(), 31);
        assert_eq!(s.bounds(), &[12, 12, 12]);
    }

    #[test]
    fn runs_at_tiny_scale() {
        let t = run(Params { ranks: vec![2], expansions: vec![4], iters: 200 });
        assert_eq!(t.rows.len(), 1);
        // F* must be in the same order of magnitude as row-major F (not
        // thousands of times slower) — the "computed access" claim. Allow a
        // generous factor for timer noise at tiny iteration counts.
        let fstar: f64 = t.rows[0][3].parse().unwrap();
        let btree: f64 = t.rows[0][7].parse().unwrap();
        assert!(btree > fstar, "B-tree lookup should cost more than F*");
    }
}
