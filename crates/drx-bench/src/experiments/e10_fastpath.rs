//! **E10 — fast-path access pipeline** (run-coalesced planning, memcpy
//! scatter kernels, parallel extent I/O).
//!
//! Three claims, one per pipeline layer:
//!
//! 1. **Planning**: turning a region into a ready-to-issue request list
//!    via [`ChunkRun`]s (`region_runs` + flat entry sort + merged byte
//!    extents) beats the pre-kernel pipeline (`region_addresses` + sort +
//!    per-chunk indexed filetype) because the owner lookup is paid per
//!    *run*, not per chunk, and the request list is built from merged
//!    extents instead of one displacement per chunk.
//! 2. **Scatter**: the memcpy row kernel moves same-order (C→C) chunk
//!    data at copy bandwidth, versus one little-endian decode per element.
//! 3. **Parallel extent I/O**: a cold whole-file read speeds up with
//!    `io_workers`, because fragments on distinct stripe servers are
//!    issued concurrently. The memory backend emulates a per-request
//!    server service latency (`PfsConfig::request_latency`) so the read is
//!    latency-bound — the remote-I/O-server regime the paper assumes —
//!    rather than bound by single-core memcpy bandwidth.
//!
//! `harness --json [PATH]` serializes the measurements (BENCH_PR4.json).
//!
//! [`ChunkRun`]: drx_core::plan::ChunkRun

use super::time_per_op;
use crate::table::Table;
use drx_core::{Element, ExtendibleShape, Layout, Region};
use drx_pfs::{Pfs, PfsConfig};
use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Params {
    /// Cyclic single-dim extensions applied to the planning shape (more
    /// extensions → more axial records → more expensive per-chunk `F*`).
    pub plan_extensions: usize,
    /// Timed iterations of each planning variant.
    pub plan_iters: usize,
    /// Chunk side (f64 elements) for the scatter kernels.
    pub scatter_side: usize,
    /// Timed iterations of each scatter variant.
    pub scatter_iters: usize,
    /// Cold-read payload in MiB.
    pub io_mib: usize,
    /// Emulated per-request server service latency in microseconds.
    pub io_latency_us: u64,
    /// Worker counts to sweep.
    pub io_workers: Vec<usize>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            plan_extensions: 40,
            plan_iters: 20,
            scatter_side: 128,
            scatter_iters: 512,
            io_mib: 8,
            io_latency_us: 500,
            io_workers: vec![1, 2, 4, 8],
        }
    }
}

/// Reduced-size parameters for smoke runs.
pub fn quick_params() -> Params {
    Params {
        plan_extensions: 20,
        plan_iters: 5,
        scatter_side: 64,
        scatter_iters: 100,
        io_mib: 2,
        io_latency_us: 150,
        io_workers: vec![1, 2],
    }
}

/// The measurements, plus their JSON serialization.
pub struct Report {
    pub table: Table,
    pub json: String,
}

/// Per-element reference scatter (the pre-kernel access path): one
/// little-endian decode per element.
fn scatter_reference(
    bytes: &[u8],
    chunk_strides: &[u64],
    out: &mut [f64],
    out_strides: &[u64],
    region: &Region,
) {
    let zero = vec![0usize; region.rank()];
    drx_core::index::for_each_offset_pair(
        region,
        &zero,
        chunk_strides,
        &zero,
        out_strides,
        |src, dst| {
            let sb = src as usize * 8;
            out[dst as usize] = f64::read_le(&bytes[sb..sb + 8]);
        },
    );
}

pub fn run(p: Params) -> Report {
    // --- 1. Planning: per-chunk F* vs run-coalesced --------------------
    let mut shape = ExtendibleShape::new(&[4, 4]).expect("valid");
    for i in 0..p.plan_extensions {
        shape.extend(i % 2, 8).expect("extend");
    }
    let region = shape.full_region();
    let chunks = region.volume();
    // Both variants are measured plan-to-request-list: the work a read pays
    // between "here is a region" and "issue the I/O". Chunk payload size
    // only scales the displacement math, not the comparison.
    let chunk_bytes = 8 * 1024u64;
    let base_ty = drx_msg::Datatype::contiguous(chunk_bytes);
    let base_plan_ns = time_per_op(p.plan_iters, || {
        let mut pairs = shape.region_addresses(&region).expect("plan");
        pairs.sort_by_key(|&(_, a)| a);
        // The pre-kernel fetch path viewed the file through an indexed
        // filetype with one displacement per chunk.
        let displs: Vec<usize> = pairs.iter().map(|&(_, a)| a as usize).collect();
        let lens = vec![1usize; displs.len()];
        let ft = drx_msg::Datatype::indexed(&lens, &displs, &base_ty).expect("filetype");
        black_box((&pairs, &ft));
    });
    // The run variant pays the full ChunkPlan cost: run decomposition, the
    // address-sorted flat entry list, and the merged byte extents the
    // vectored I/O layer consumes.
    let runs_plan_ns = time_per_op(p.plan_iters, || {
        let runs = shape.region_runs(&region).expect("plan");
        let entries = drx_core::sorted_run_entries(&runs);
        let mut extents: Vec<(u64, u64)> = Vec::new();
        for &(a, _, _) in &entries {
            let start = a * chunk_bytes;
            match extents.last_mut() {
                Some((s, l)) if *s + *l == start => *l += chunk_bytes,
                _ => extents.push((start, chunk_bytes)),
            }
        }
        black_box((&entries, &extents));
    });
    let base_ns_chunk = base_plan_ns as f64 / chunks as f64;
    let runs_ns_chunk = runs_plan_ns as f64 / chunks as f64;
    let plan_speedup = base_ns_chunk / runs_ns_chunk.max(1e-9);

    // --- 2. Scatter: per-element decode vs memcpy rows -----------------
    let side = p.scatter_side;
    let chunk_strides = Layout::C.strides(&[side, side]);
    let out_strides = Layout::C.strides(&[side, side]);
    let scatter_region = Region::new(vec![0, 0], vec![side, side]).expect("region");
    let vals: Vec<f64> = (0..side * side).map(|i| i as f64 * 0.5).collect();
    let bytes = drx_core::dtype::encode_slice(&vals);
    let mut out = vec![0f64; side * side];
    let per_iter_bytes = (side * side * 8) as u64;
    let base_scatter_ns = time_per_op(p.scatter_iters, || {
        scatter_reference(&bytes, &chunk_strides, &mut out, &out_strides, &scatter_region);
        black_box(&out);
    });
    assert_eq!(out, vals, "reference scatter must reproduce the data");
    out.fill(0.0);
    let before = drx_mp::kernel_stats();
    let kern_scatter_ns = time_per_op(p.scatter_iters, || {
        drx_mp::scatter_chunk(
            &bytes,
            &[0, 0],
            &chunk_strides,
            &mut out,
            &[0, 0],
            &out_strides,
            &scatter_region,
        );
        black_box(&out);
    });
    assert_eq!(out, vals, "kernel scatter must reproduce the data");
    let kd = drx_mp::kernel_stats().delta_since(&before);
    let gbps = |ns: u64| per_iter_bytes as f64 / ns.max(1) as f64; // bytes/ns == GB/s
    let scatter_speedup = gbps(kern_scatter_ns) / gbps(base_scatter_ns).max(1e-9);

    // --- 3. Parallel extent I/O: cold read vs io_workers ---------------
    let total = p.io_mib << 20;
    let servers = 8;
    let stripe: u64 = 128 * 1024;
    let mut io_rows: Vec<(usize, f64)> = Vec::new();
    for &w in &p.io_workers {
        let pfs = Pfs::new(PfsConfig {
            n_servers: servers,
            stripe_size: stripe,
            io_workers: w,
            request_latency: Some(std::time::Duration::from_micros(p.io_latency_us)),
            ..PfsConfig::default()
        })
        .expect("pfs");
        let f = pfs.create("cold").expect("create");
        let mib = vec![0xA5u8; 1 << 20];
        for i in 0..p.io_mib {
            f.write_at((i as u64) << 20, &mib).expect("populate");
        }
        let mut buf = vec![0u8; total];
        let mut best = u64::MAX;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            f.read_at(0, &mut buf).expect("cold read");
            best = best.min(t.elapsed().as_nanos() as u64);
        }
        assert!(buf.iter().all(|&b| b == 0xA5), "read back wrong data");
        let mbps = total as f64 / (best.max(1) as f64 / 1e9) / (1u64 << 20) as f64;
        io_rows.push((w, mbps));
    }

    // --- Report --------------------------------------------------------
    let mut table = Table::new(
        "E10: fast-path pipeline (planning ns/chunk, scatter GB/s, cold read MiB/s)",
        &["measure", "baseline", "fast path", "speedup"],
    );
    table.row(vec![
        format!("plan {} chunks (ns/chunk)", chunks),
        format!("{base_ns_chunk:.1}"),
        format!("{runs_ns_chunk:.1}"),
        format!("{plan_speedup:.1}x"),
    ]);
    table.row(vec![
        format!("scatter {side}x{side} f64 (GB/s)"),
        format!("{:.2}", gbps(base_scatter_ns)),
        format!("{:.2}", gbps(kern_scatter_ns)),
        format!("{scatter_speedup:.1}x"),
    ]);
    let w0 = io_rows.first().map(|&(_, m)| m).unwrap_or(1.0);
    for &(w, mbps) in &io_rows {
        table.row(vec![
            format!("cold read {} MiB, {} workers (MiB/s)", p.io_mib, w),
            format!("{w0:.0}"),
            format!("{mbps:.0}"),
            format!("{:.2}x", mbps / w0.max(1e-9)),
        ]);
    }

    let io_json: Vec<String> = io_rows
        .iter()
        .map(|&(w, mbps)| format!("    {{ \"workers\": {w}, \"mib_per_s\": {mbps:.1} }}"))
        .collect();
    let json = format!(
        "{{\n\
         \x20 \"bench\": \"pr4_fastpath\",\n\
         \x20 \"planning\": {{\n\
         \x20   \"chunks\": {chunks},\n\
         \x20   \"baseline_ns_per_chunk\": {base_ns_chunk:.2},\n\
         \x20   \"runs_ns_per_chunk\": {runs_ns_chunk:.2},\n\
         \x20   \"speedup\": {plan_speedup:.2}\n\
         \x20 }},\n\
         \x20 \"scatter\": {{\n\
         \x20   \"chunk\": [{side}, {side}],\n\
         \x20   \"bytes_per_iter\": {per_iter_bytes},\n\
         \x20   \"baseline_gb_per_s\": {base_gb:.3},\n\
         \x20   \"kernel_gb_per_s\": {kern_gb:.3},\n\
         \x20   \"speedup\": {scatter_speedup:.2},\n\
         \x20   \"memcpy_calls\": {memcpy_calls},\n\
         \x20   \"memcpy_bytes\": {memcpy_bytes}\n\
         \x20 }},\n\
         \x20 \"parallel_io\": {{\n\
         \x20   \"servers\": {servers},\n\
         \x20   \"stripe_kib\": {stripe_kib},\n\
         \x20   \"request_latency_us\": {latency_us},\n\
         \x20   \"total_mib\": {io_mib},\n\
         \x20   \"cold_read\": [\n{io_list}\n\x20   ]\n\
         \x20 }}\n\
         }}\n",
        base_gb = gbps(base_scatter_ns),
        kern_gb = gbps(kern_scatter_ns),
        memcpy_calls = kd.memcpy_calls,
        memcpy_bytes = kd.memcpy_bytes,
        stripe_kib = stripe / 1024,
        latency_us = p.io_latency_us,
        io_mib = p.io_mib,
        io_list = io_json.join(",\n"),
    );
    Report { table, json }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_report() {
        let r = run(quick_params());
        assert!(r.table.rows.len() >= 4);
        assert!(r.json.contains("\"bench\": \"pr4_fastpath\""));
        // The same-order scatter must have gone through the memcpy kernel.
        assert!(r.json.contains("\"memcpy_calls\""));
        assert!(!r.json.contains("\"memcpy_calls\": 0,"));
    }
}
