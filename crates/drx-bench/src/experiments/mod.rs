//! The evaluation experiments (E1–E9) of the reproduction.
//!
//! The CLUSTER 2007 paper reports no numeric tables; each experiment here
//! implements a *claim* the paper makes (or the §V future-work comparison it
//! announces), with deterministic simulated-time results so EXPERIMENTS.md
//! can record paper-claim vs measured-shape. Criterion benches in
//! `benches/` wrap the same kernels for wall-clock numbers.

pub mod e10_fastpath;
pub mod e1_mapping;
pub mod e2_extension;
pub mod e3_access_order;
pub mod e4_parallel;
pub mod e5_chunk_stripe;
pub mod e6_ga;
pub mod e7_ablation;
pub mod e8_cache;
pub mod e9_balance;

use crate::table::Table;

/// Run every experiment at harness scale and collect the tables.
pub fn all_tables() -> Vec<Table> {
    vec![
        e1_mapping::run(e1_mapping::Params::default()),
        e2_extension::run(e2_extension::Params::default()),
        e3_access_order::run(e3_access_order::Params::default()),
        e4_parallel::run(e4_parallel::Params::default()),
        e5_chunk_stripe::run(e5_chunk_stripe::Params::default()),
        e6_ga::run(e6_ga::Params::default()),
        e7_ablation::run(e7_ablation::Params::default()),
        e8_cache::run(e8_cache::Params::default()),
        e9_balance::run(e9_balance::Params::default()),
        e10_fastpath::run(e10_fastpath::Params::default()).table,
    ]
}

/// Time `f` over `iters` iterations and return ns/op (monotonic clock).
pub(crate) fn time_per_op(iters: usize, mut f: impl FnMut()) -> u64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / iters.max(1) as u128) as u64
}

/// Simple deterministic index-stream generator (LCG) so experiments do not
/// depend on `rand` at the library layer.
pub(crate) struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        // Numerical Recipes LCG constants.
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `0..n`. Uses the high bits — the low bits of a
    /// power-of-two-modulus LCG are short-period and would make small
    /// moduli cyclic rather than uniform.
    pub fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() >> 33) % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            let x = a.below(10);
            assert_eq!(x, b.below(10));
            assert!(x < 10);
        }
    }

    #[test]
    fn time_per_op_returns_something_positive() {
        let ns = time_per_op(100, || {
            std::hint::black_box(3u64.pow(7));
        });
        // Can be 0 on a very fast machine for trivial ops, but must not
        // panic; do a sanity call with real work.
        let ns2 = time_per_op(10, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        let _ = (ns, ns2);
    }
}
