//! **E9 — data-distribution balance** (paper §V future work: "we intend to
//! explore how the array distribution method can be generalized to ensure
//! relative balanced data distribution and how to distribute the array by
//! BLOCK Cyclic(K) methods").
//!
//! For a set of chunk-grid shapes (including awkward, non-divisible ones and
//! grids produced by growth), measure how evenly BLOCK and BLOCK_CYCLIC
//! spread chunks over the ranks. Balance metric: `max/mean` chunks per rank
//! (1.0 = perfect). Expected shape: BLOCK degrades on grids that divide the
//! process grid badly; BLOCK_CYCLIC with small blocks stays near 1 at the
//! cost of non-contiguous zones.

use crate::table::Table;
use drx_mp::DistSpec;

#[derive(Debug, Clone)]
pub struct Params {
    pub nprocs: usize,
    /// Chunk-grid shapes to evaluate.
    pub grids: Vec<Vec<usize>>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nprocs: 4,
            grids: vec![
                vec![8, 8],  // divides evenly
                vec![5, 4],  // the Figure-1 grid
                vec![9, 7],  // awkward primes
                vec![3, 17], // long and thin
                vec![2, 2],  // fewer chunks than... exactly nprocs
            ],
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub grid: Vec<usize>,
    pub dist: String,
    pub per_rank: Vec<usize>,
    /// max / mean chunks per rank (1.0 = perfectly balanced).
    pub imbalance: f64,
}

fn imbalance(per_rank: &[usize]) -> f64 {
    let total: usize = per_rank.iter().sum();
    let mean = total as f64 / per_rank.len() as f64;
    let max = *per_rank.iter().max().unwrap_or(&0) as f64;
    if mean == 0.0 {
        0.0
    } else {
        max / mean
    }
}

pub fn measure(params: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for grid in &params.grids {
        let specs: Vec<(String, DistSpec)> = vec![
            ("BLOCK (auto grid)".into(), DistSpec::auto(params.nprocs, grid.len())),
            (
                "BLOCK_CYCLIC(1)".into(),
                DistSpec::block_cyclic(
                    DistSpec::auto(params.nprocs, grid.len()).proc_grid().to_vec(),
                    vec![1; grid.len()],
                ),
            ),
            (
                "BLOCK_CYCLIC(2)".into(),
                DistSpec::block_cyclic(
                    DistSpec::auto(params.nprocs, grid.len()).proc_grid().to_vec(),
                    vec![2; grid.len()],
                ),
            ),
        ];
        for (name, spec) in specs {
            let per_rank: Vec<usize> =
                (0..params.nprocs).map(|r| spec.chunks_of(r, grid).len()).collect();
            rows.push(Row {
                grid: grid.clone(),
                dist: name,
                imbalance: imbalance(&per_rank),
                per_rank,
            });
        }
    }
    rows
}

/// Ownership churn under growth: starting from `initial` chunks, apply the
/// extension history and count how many *pre-existing* chunks change owner
/// at each step. BLOCK zones are recomputed from the instantaneous bounds
/// (self-balancing but churning — data must migrate between ranks to keep
/// in-memory views consistent); BLOCK_CYCLIC ownership depends only on the
/// chunk index, so it never churns.
pub fn measure_churn(
    nprocs: usize,
    initial: &[usize],
    history: &[(usize, usize)],
) -> Vec<(String, u64, f64)> {
    let specs: Vec<(String, DistSpec)> = vec![
        ("BLOCK (auto grid)".into(), DistSpec::auto(nprocs, initial.len())),
        (
            "BLOCK_CYCLIC(1)".into(),
            DistSpec::block_cyclic(
                DistSpec::auto(nprocs, initial.len()).proc_grid().to_vec(),
                vec![1; initial.len()],
            ),
        ),
    ];
    specs
        .into_iter()
        .map(|(name, spec)| {
            let mut grid = initial.to_vec();
            let mut churned = 0u64;
            let mut final_imbalance = 0.0;
            for &(dim, by) in history {
                // Owner of each existing chunk before and after the step.
                let old_grid = grid.clone();
                grid[dim] += by;
                let region = drx_core::Region::of_shape(&old_grid).expect("valid");
                for chunk in region.iter() {
                    let o1 = spec.owner_of_chunk(&chunk, &old_grid);
                    let o2 = spec.owner_of_chunk(&chunk, &grid);
                    if o1 != o2 {
                        churned += 1;
                    }
                }
                let per_rank: Vec<usize> =
                    (0..nprocs).map(|r| spec.chunks_of(r, &grid).len()).collect();
                final_imbalance = imbalance(&per_rank);
            }
            (name, churned, final_imbalance)
        })
        .collect()
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        format!(
            "E9 — distribution balance over {} ranks (imbalance = max/mean, 1.00 = perfect) and \
             ownership churn under growth ([4,4] grid, +1 chunk per dim alternating ×6)",
            params.nprocs
        ),
        &["chunk grid", "distribution", "chunks per rank", "imbalance", "churn under growth"],
    );
    let churn =
        measure_churn(params.nprocs, &[4, 4], &[(0, 1), (1, 1), (0, 1), (1, 1), (0, 1), (1, 1)]);
    for r in measure(&params) {
        let churn_cell = churn
            .iter()
            .find(|(name, _, _)| *name == r.dist)
            .map(|&(_, c, _)| format!("{c} chunks"))
            .unwrap_or_else(|| "—".into());
        table.row(vec![
            format!("{:?}", r.grid),
            r.dist,
            format!("{:?}", r.per_rank),
            format!("{:.2}", r.imbalance),
            churn_cell,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_distribution_covers_all_chunks() {
        let params = Params::default();
        for r in measure(&params) {
            let total: usize = r.per_rank.iter().sum();
            let grid_total: usize = r.grid.iter().product();
            assert_eq!(total, grid_total, "{} on {:?}", r.dist, r.grid);
            assert!(r.imbalance >= 1.0 || total == 0);
        }
    }

    #[test]
    fn cyclic_ownership_is_growth_stable_block_churns() {
        let churn = measure_churn(4, &[4, 4], &[(0, 1), (1, 1), (0, 2), (1, 3)]);
        let block = churn.iter().find(|(n, _, _)| n.starts_with("BLOCK (")).unwrap();
        let cyc = churn.iter().find(|(n, _, _)| n == "BLOCK_CYCLIC(1)").unwrap();
        assert_eq!(cyc.1, 0, "cyclic ownership must never churn");
        assert!(block.1 > 0, "BLOCK zones must churn as bounds grow");
        // Both end reasonably balanced.
        assert!(block.2 < 1.7 && cyc.2 < 1.7);
    }

    #[test]
    fn cyclic_1_balances_awkward_grids_better_than_block() {
        let params = Params { nprocs: 4, grids: vec![vec![9, 7]] };
        let rows = measure(&params);
        let block = rows.iter().find(|r| r.dist.starts_with("BLOCK (")).unwrap();
        let cyc1 = rows.iter().find(|r| r.dist == "BLOCK_CYCLIC(1)").unwrap();
        assert!(
            cyc1.imbalance <= block.imbalance,
            "cyclic(1) {:.2} should not be worse than block {:.2}",
            cyc1.imbalance,
            block.imbalance
        );
    }
}
