//! **E3 — access-order sensitivity** (paper §I).
//!
//! Claim: "an array file that is organized in say row-major order causes
//! applications that subsequently access the data in column-major order to
//! have abysmal performance", while the chunked DRX layout serves either
//! order with "no significant performance degradation" (transposition
//! happens on the fly in memory).
//!
//! Workload: stream an N×N f64 array through memory in `panels` slabs,
//! either row panels (`N/panels × N`) or column panels (`N × N/panels`) —
//! the classic out-of-core traversal where memory holds one panel at a
//! time. Metrics: PFS requests, seeks and simulated time.

use crate::table::{fmt_ns, Table};
use drx_baselines::RowMajorFile;
use drx_core::{Layout, Region};
use drx_mp::DrxFile;
use drx_pfs::{Pfs, PfsStats};

#[derive(Debug, Clone)]
pub struct Params {
    pub side: usize,
    pub chunk: usize,
    pub panels: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { side: 256, chunk: 32, panels: 8 }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub format: &'static str,
    pub orientation: &'static str,
    pub requests: u64,
    pub bytes: u64,
    pub seeks: u64,
    pub sim_ns: u64,
    /// Request-size histogram (buckets per `drx_pfs::SIZE_BUCKETS`).
    pub histogram: [u64; 4],
}

fn panel_regions(side: usize, panels: usize, by_rows: bool) -> Vec<Region> {
    let width = side / panels;
    (0..panels)
        .map(|p| {
            if by_rows {
                Region::new(vec![p * width, 0], vec![(p + 1) * width, side]).expect("valid")
            } else {
                Region::new(vec![0, p * width], vec![side, (p + 1) * width]).expect("valid")
            }
        })
        .collect()
}

fn stats_row(format: &'static str, orientation: &'static str, st: &PfsStats) -> Row {
    Row {
        format,
        orientation,
        requests: st.total_requests(),
        bytes: st.total_bytes(),
        seeks: st.total_seeks(),
        sim_ns: st.sim_time_parallel_ns(),
        histogram: st.size_histogram(),
    }
}

pub fn measure(params: &Params) -> Vec<Row> {
    let n = params.side;
    let region = Region::new(vec![0, 0], vec![n, n]).expect("valid");
    let data: Vec<f64> = (0..(n * n) as u64).map(|x| x as f64).collect();
    let mut rows = Vec::new();

    // Row-major file.
    {
        let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
        let mut f: RowMajorFile<f64> = RowMajorFile::create(&pfs, "rm", &[n, n]).expect("valid");
        f.write_region(&region, Layout::C, &data).expect("seed");
        for (by_rows, orientation) in [(true, "row panels"), (false, "column panels")] {
            pfs.reset_stats();
            for panel in panel_regions(n, params.panels, by_rows) {
                std::hint::black_box(f.read_region(&panel, Layout::C).expect("read"));
            }
            rows.push(stats_row("row-major file", orientation, &pfs.stats()));
        }
    }
    // DRX chunked file.
    {
        let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
        let mut f: DrxFile<f64> =
            DrxFile::create(&pfs, "drx", &[params.chunk, params.chunk], &[n, n]).expect("valid");
        f.write_region(&region, Layout::C, &data).expect("seed");
        for (by_rows, orientation) in [(true, "row panels"), (false, "column panels")] {
            pfs.reset_stats();
            for panel in panel_regions(n, params.panels, by_rows) {
                std::hint::black_box(f.read_region(&panel, Layout::C).expect("read"));
            }
            rows.push(stats_row("DRX chunked file", orientation, &pfs.stats()));
        }
    }
    rows
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        format!(
            "E3 — streaming a {0}×{0} f64 array in {1} panels, row vs column orientation",
            params.side, params.panels
        ),
        &[
            "format",
            "orientation",
            "PFS requests",
            "seeks",
            "request sizes (<4K/64K/1M/more)",
            "simulated time",
            "slowdown vs rows",
        ],
    );
    let rows = measure(&params);
    for pair in rows.chunks(2) {
        let base = pair[0].sim_ns.max(1);
        for r in pair {
            table.row(vec![
                r.format.to_string(),
                r.orientation.to_string(),
                r.requests.to_string(),
                r.seeks.to_string(),
                format!(
                    "{}/{}/{}/{}",
                    r.histogram[0], r.histogram[1], r.histogram[2], r.histogram[3]
                ),
                fmt_ns(r.sim_ns),
                format!("{:.2}×", r.sim_ns as f64 / base as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_panels_punish_row_major_but_not_drx() {
        let rows = measure(&Params { side: 64, chunk: 8, panels: 4 });
        let rm_row = rows
            .iter()
            .find(|r| r.format == "row-major file" && r.orientation == "row panels")
            .unwrap();
        let rm_col = rows
            .iter()
            .find(|r| r.format == "row-major file" && r.orientation == "column panels")
            .unwrap();
        let dx_row = rows
            .iter()
            .find(|r| r.format == "DRX chunked file" && r.orientation == "row panels")
            .unwrap();
        let dx_col = rows
            .iter()
            .find(|r| r.format == "DRX chunked file" && r.orientation == "column panels")
            .unwrap();
        // Row-major: column panels generate `panels`× more (and much
        // smaller) requests, and far more simulated time.
        assert!(
            rm_col.requests >= rm_row.requests * 4,
            "row-major column panels should fragment: {} vs {}",
            rm_col.requests,
            rm_row.requests
        );
        assert!(rm_col.sim_ns > rm_row.sim_ns * 2);
        // DRX: both orientations read every chunk exactly once — identical
        // bytes moved (the structural order-neutrality of the layout).
        // Request counts differ: run coalescing merges the row-panel chunks
        // into fewer, larger extents than the column-panel ones.
        assert_eq!(dx_col.bytes, dx_row.bytes, "DRX reads each chunk once in either orientation");
        assert!(
            dx_row.requests <= dx_col.requests,
            "row panels coalesce at least as well as column panels: {} vs {}",
            dx_row.requests,
            dx_col.requests
        );
        // DRX's column-order degradation (extra seeks only) is far smaller
        // than row-major's (fragmented tiny requests + seeks).
        let dx_ratio = dx_col.sim_ns as f64 / dx_row.sim_ns.max(1) as f64;
        let rm_ratio = rm_col.sim_ns as f64 / rm_row.sim_ns.max(1) as f64;
        assert!(
            dx_ratio < rm_ratio / 2.0,
            "DRX degradation ({dx_ratio:.2}×) should be well below row-major's ({rm_ratio:.2}×)"
        );
        // And DRX column access beats row-major column access outright.
        assert!(dx_col.sim_ns < rm_col.sim_ns);
    }
}
