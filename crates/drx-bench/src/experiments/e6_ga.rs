//! **E6 — Global-Array-style element access** (paper §II-A).
//!
//! Claim: with replicated metadata, every process can locate any element's
//! owner zone and access it "either as a local array element or as a remote
//! array element" through RMA. Expected shape: local gets are cheap; remote
//! gets cost more (lock + copy across threads; on a real cluster, a network
//! round-trip); accumulates are atomic under concurrency.

use super::time_per_op;
use crate::table::Table;
use drx_core::{Layout, Region};
use drx_mp::{DistSpec, DrxFile, DrxmpHandle, GaView};
use drx_msg::run_spmd;
use drx_pfs::Pfs;

#[derive(Debug, Clone)]
pub struct Params {
    pub side: usize,
    pub chunk: usize,
    pub ranks: usize,
    pub ops: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { side: 128, chunk: 16, ranks: 4, ops: 20_000 }
    }
}

#[derive(Debug, Clone)]
pub struct Measurement {
    pub local_get_ns: u64,
    pub remote_get_ns: u64,
    pub accumulate_ns: u64,
    /// Value of the contended counter after all ranks accumulated — checks
    /// atomicity (must equal ranks × ops_accumulate).
    pub contended_total: f64,
    pub expected_total: f64,
}

pub fn measure(params: &Params) -> Measurement {
    let n = params.side;
    let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
    {
        let mut f: DrxFile<f64> =
            DrxFile::create(&pfs, "ga", &[params.chunk, params.chunk], &[n, n]).expect("valid");
        let region = Region::new(vec![0, 0], vec![n, n]).expect("valid");
        let data: Vec<f64> = (0..(n * n) as u64).map(|x| x as f64).collect();
        f.write_region(&region, Layout::C, &data).expect("seed");
    }
    let ops = params.ops;
    let acc_ops = 500usize;
    let results = run_spmd(params.ranks, move |comm| {
        let dist = DistSpec::auto(comm.size(), 2);
        let mut h: DrxmpHandle<f64> =
            DrxmpHandle::open(comm, &pfs, "ga", dist).map_err(drx_mp::error::to_msg)?;
        let ga = GaView::load(&mut h).map_err(drx_mp::error::to_msg)?;
        ga.fence().map_err(drx_mp::error::to_msg)?;
        // Pick one local and one remote element for this rank.
        let zones = ga.zones();
        let my_zone = zones[comm.rank()].clone().expect("zone");
        let local_idx = my_zone.lo().to_vec();
        let peer = (comm.rank() + 1) % comm.size();
        let remote_idx = zones[peer].clone().expect("zone").lo().to_vec();
        let local_ns = time_per_op(ops, || {
            std::hint::black_box(ga.get(&local_idx).expect("local get"));
        });
        let remote_ns = time_per_op(ops, || {
            std::hint::black_box(ga.get(&remote_idx).expect("remote get"));
        });
        ga.fence().map_err(drx_mp::error::to_msg)?;
        // Contended accumulate into element (0,0).
        let acc_ns = time_per_op(acc_ops, || {
            ga.accumulate(&[0, 0], 1.0).expect("accumulate");
        });
        ga.fence().map_err(drx_mp::error::to_msg)?;
        let total = ga.get(&[0, 0]).map_err(drx_mp::error::to_msg)?;
        h.close().map_err(drx_mp::error::to_msg)?;
        Ok((local_ns, remote_ns, acc_ns, total))
    })
    .expect("spmd run");

    let k = results.len() as u64;
    Measurement {
        local_get_ns: results.iter().map(|r| r.0).sum::<u64>() / k,
        remote_get_ns: results.iter().map(|r| r.1).sum::<u64>() / k,
        accumulate_ns: results.iter().map(|r| r.2).sum::<u64>() / k,
        contended_total: results[0].3,
        expected_total: (params.ranks * acc_ops) as f64,
    }
}

pub fn run(params: Params) -> Table {
    let m = measure(&params);
    let mut table = Table::new(
        format!(
            "E6 — GA-style element access over {} ranks ({}×{} f64 array)",
            params.ranks, params.side, params.side
        ),
        &["operation", "ns/op (mean over ranks)", "note"],
    );
    table.row(vec!["local get".into(), m.local_get_ns.to_string(), "owner == self".into()]);
    table.row(vec!["remote get".into(), m.remote_get_ns.to_string(), "owner == peer rank".into()]);
    table.row(vec![
        "contended accumulate".into(),
        m.accumulate_ns.to_string(),
        format!(
            "atomicity check: counter = {} (expected {} + initial value)",
            m.contended_total, m.expected_total
        ),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_are_atomic_under_contention() {
        let m = measure(&Params { side: 32, chunk: 8, ranks: 4, ops: 200 });
        // Element (0,0) starts at 0.0 and gets ranks × 500 increments.
        assert_eq!(m.contended_total, m.expected_total);
        assert!(m.local_get_ns > 0 || m.remote_get_ns > 0);
    }
}
