//! **E5 — reconciling chunk size with the stripe size** (paper §V future
//! work: "Optimizing the access by reconciling the chunk size with the
//! strip size of the parallel file system for optimal chunk accesses").
//!
//! A chunk whose byte size divides (or is a multiple of) the stripe size
//! and is stripe-aligned touches the minimum number of I/O servers per
//! request; misaligned chunk sizes split every chunk access across an extra
//! server boundary. Expected shape: requests/chunk minimized when
//! `chunk_bytes ≡ 0 (mod stripe)` or stripes per chunk is integral, with a
//! jump for odd sizes.

use crate::table::{fmt_bytes, fmt_ns, Table};
use drx_core::{Layout, Region};
use drx_mp::DrxFile;
use drx_pfs::Pfs;

#[derive(Debug, Clone)]
pub struct Params {
    /// Array side (elements, f64).
    pub side: usize,
    /// Chunk sides to sweep (elements).
    pub chunk_sides: Vec<usize>,
    pub servers: usize,
    pub stripe: u64,
}

impl Default for Params {
    fn default() -> Self {
        // stripe 16 KiB; chunk sides 16..64 give chunk bytes 2 KiB..32 KiB.
        Params {
            side: 256,
            chunk_sides: vec![16, 24, 32, 45, 48, 64],
            servers: 4,
            stripe: 16 * 1024,
        }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub chunk_side: usize,
    pub chunk_bytes: u64,
    pub aligned: bool,
    pub requests: u64,
    pub requests_per_chunk: f64,
    pub sim_ns: u64,
}

pub fn measure(params: &Params) -> Vec<Row> {
    let n = params.side;
    let mut rows = Vec::new();
    for &c in &params.chunk_sides {
        let pfs = Pfs::memory(params.servers, params.stripe).expect("valid");
        let mut f: DrxFile<f64> = DrxFile::create(&pfs, "arr", &[c, c], &[n, n]).expect("valid");
        let region = Region::new(vec![0, 0], vec![n, n]).expect("valid");
        let data: Vec<f64> = (0..(n * n) as u64).map(|x| x as f64).collect();
        f.write_region(&region, Layout::C, &data).expect("seed");
        // Read back chunk-by-chunk (the unit of access) and count requests.
        pfs.reset_stats();
        let total_chunks = f.meta().total_chunks();
        for addr in 0..total_chunks {
            std::hint::black_box(f.read_chunk_raw(addr).expect("read"));
        }
        let st = pfs.stats();
        let chunk_bytes = f.meta().chunk_bytes();
        rows.push(Row {
            chunk_side: c,
            chunk_bytes,
            aligned: chunk_bytes.is_multiple_of(params.stripe)
                || params.stripe.is_multiple_of(chunk_bytes),
            requests: st.total_requests(),
            requests_per_chunk: st.total_requests() as f64 / total_chunks as f64,
            sim_ns: st.sim_time_parallel_ns(),
        });
    }
    rows
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        format!(
            "E5 — chunk size vs stripe size ({} servers, {} stripes): full sequential chunk scan of a {}×{} f64 array",
            params.servers,
            fmt_bytes(params.stripe),
            params.side,
            params.side
        ),
        &["chunk side", "chunk bytes", "stripe-aligned", "PFS requests", "requests/chunk", "simulated time"],
    );
    for r in measure(&params) {
        table.row(vec![
            r.chunk_side.to_string(),
            fmt_bytes(r.chunk_bytes),
            if r.aligned { "yes" } else { "no" }.to_string(),
            r.requests.to_string(),
            format!("{:.2}", r.requests_per_chunk),
            fmt_ns(r.sim_ns),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_chunks_need_fewer_requests_per_chunk() {
        let params = Params {
            side: 96,
            chunk_sides: vec![16, 24], // 2 KiB vs 4.5 KiB chunks
            servers: 2,
            stripe: 2 * 1024, // 2 KiB stripes
        };
        let rows = measure(&params);
        let aligned = rows.iter().find(|r| r.chunk_side == 16).unwrap(); // 2 KiB = stripe
        let misaligned = rows.iter().find(|r| r.chunk_side == 24).unwrap(); // 4.5 KiB
        assert!(aligned.aligned);
        assert!(!misaligned.aligned);
        assert!(
            misaligned.requests_per_chunk > aligned.requests_per_chunk,
            "misaligned chunks must fragment: {:.2} vs {:.2}",
            misaligned.requests_per_chunk,
            aligned.requests_per_chunk
        );
        // Aligned chunks of exactly one stripe: exactly 1 request per chunk.
        assert!((aligned.requests_per_chunk - 1.0).abs() < 1e-9);
    }
}
