//! **E8 — Mpool chunk caching** (paper §I: the serial DRX library caches
//! I/O "using the BerkeleyDB Mpool sub-system").
//!
//! Element-granular access patterns against an out-of-core array, with and
//! without the chunk pool: a sequential row-major sweep (perfect spatial
//! locality), a chunk-local walk, and uniform random access (worst case).
//! Expected shape: cached sequential access costs one PFS read per chunk
//! (hit rate → 1 − 1/chunk_elems); random access beyond the pool capacity
//! degrades toward the uncached cost.

use super::Lcg;
use crate::table::{fmt_ns, Table};
use drx_core::{Layout, Region};
use drx_mp::{CachedDrxFile, DrxFile};
use drx_pfs::Pfs;

#[derive(Debug, Clone)]
pub struct Params {
    pub side: usize,
    pub chunk: usize,
    pub pool_chunks: usize,
    pub accesses: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { side: 128, chunk: 16, pool_chunks: 16, accesses: 50_000 }
    }
}

#[derive(Debug, Clone)]
pub struct Row {
    pub pattern: &'static str,
    pub cached: bool,
    pub pfs_requests: u64,
    pub sim_ns: u64,
    pub hit_rate: f64,
}

fn make_array(pfs: &Pfs, params: &Params) -> DrxFile<f64> {
    let mut f: DrxFile<f64> =
        DrxFile::create(pfs, "cache", &[params.chunk, params.chunk], &[params.side, params.side])
            .expect("valid");
    let region = Region::new(vec![0, 0], vec![params.side, params.side]).expect("valid");
    let data: Vec<f64> = (0..(params.side * params.side) as u64).map(|x| x as f64).collect();
    f.write_region(&region, Layout::C, &data).expect("seed");
    f
}

fn pattern_indices(params: &Params, pattern: &str) -> Vec<[usize; 2]> {
    let n = params.side;
    match pattern {
        "sequential sweep" => {
            let mut v = Vec::with_capacity(params.accesses);
            'outer: loop {
                for i in 0..n {
                    for j in 0..n {
                        v.push([i, j]);
                        if v.len() == params.accesses {
                            break 'outer;
                        }
                    }
                }
            }
            v
        }
        "uniform random" => {
            let mut rng = Lcg::new(99);
            (0..params.accesses).map(|_| [rng.below(n), rng.below(n)]).collect()
        }
        _ => unreachable!(),
    }
}

pub fn measure(params: &Params) -> Vec<Row> {
    let mut rows = Vec::new();
    for pattern in ["sequential sweep", "uniform random"] {
        let indices = pattern_indices(params, pattern);
        // Uncached.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let f = make_array(&pfs, params);
            pfs.reset_stats();
            for idx in &indices {
                std::hint::black_box(f.get(idx).expect("get"));
            }
            let st = pfs.stats();
            rows.push(Row {
                pattern,
                cached: false,
                pfs_requests: st.total_requests(),
                sim_ns: st.sim_time_parallel_ns(),
                hit_rate: 0.0,
            });
        }
        // Cached.
        {
            let pfs = Pfs::memory(4, 64 * 1024).expect("valid");
            let f = make_array(&pfs, params);
            let mut cached = CachedDrxFile::new(f, params.pool_chunks).expect("valid");
            pfs.reset_stats();
            for idx in &indices {
                std::hint::black_box(cached.get(idx).expect("get"));
            }
            let st = pfs.stats();
            rows.push(Row {
                pattern,
                cached: true,
                pfs_requests: st.total_requests(),
                sim_ns: st.sim_time_parallel_ns(),
                hit_rate: cached.pool_stats().hit_rate(),
            });
        }
    }
    rows
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        format!(
            "E8 — Mpool chunk cache: {} element reads of a {1}×{1} f64 array ({2}×{2} chunks, pool {3} chunks)",
            params.accesses, params.side, params.chunk, params.pool_chunks
        ),
        &["access pattern", "cache", "PFS requests", "simulated time", "hit rate"],
    );
    for r in measure(&params) {
        table.row(vec![
            r.pattern.to_string(),
            if r.cached { "Mpool" } else { "none" }.to_string(),
            r.pfs_requests.to_string(),
            fmt_ns(r.sim_ns),
            if r.cached { format!("{:.3}", r.hit_rate) } else { "—".to_string() },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_slashes_sequential_request_count() {
        let p = Params { side: 32, chunk: 8, pool_chunks: 4, accesses: 32 * 32 };
        let rows = measure(&p);
        let seq_un = rows.iter().find(|r| r.pattern == "sequential sweep" && !r.cached).unwrap();
        let seq_ca = rows.iter().find(|r| r.pattern == "sequential sweep" && r.cached).unwrap();
        // Uncached: one request per element; cached: roughly one per chunk
        // per sweep row-band (row-major sweep revisits chunk rows).
        assert_eq!(seq_un.pfs_requests, 1024);
        assert!(
            seq_ca.pfs_requests <= 4 * 16,
            "cached sweep should fault at chunk granularity, got {}",
            seq_ca.pfs_requests
        );
        assert!(seq_ca.hit_rate > 0.9);
        assert!(seq_ca.sim_ns < seq_un.sim_ns);
    }

    #[test]
    fn random_access_beyond_capacity_degrades() {
        let p = Params { side: 32, chunk: 8, pool_chunks: 2, accesses: 2000 };
        let rows = measure(&p);
        let rnd = rows.iter().find(|r| r.pattern == "uniform random" && r.cached).unwrap();
        let seq = rows.iter().find(|r| r.pattern == "sequential sweep" && r.cached).unwrap();
        assert!(
            rnd.hit_rate < seq.hit_rate,
            "random ({:.3}) must hit less than sequential ({:.3})",
            rnd.hit_rate,
            seq.hit_rate
        );
    }
}
