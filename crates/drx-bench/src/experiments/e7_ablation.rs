//! **E7 — ablations of the two design choices inside the mapping machinery**
//! (DESIGN.md §5).
//!
//! 1. *Uninterrupted-extension merging* (§III-B): repeated extensions of the
//!    same dimension share one axial record. Ablation: force a record per
//!    extension (`extend_unmerged`) and measure how `F*` slows as the
//!    per-dimension binary searches deepen.
//! 2. *Merged segment directory for `F*⁻¹`*: the paper computes the inverse
//!    with k independent binary searches (§III-C); we additionally keep one
//!    directory sorted by segment start. Ablation: compare
//!    `index_of_searches` (paper) vs `index_of` (directory).

use super::{time_per_op, Lcg};
use crate::table::Table;
use drx_core::ExtendibleShape;

#[derive(Debug, Clone)]
pub struct Params {
    /// Number of extensions, all of the same dimension (the merge-friendly
    /// worst case for the unmerged variant).
    pub extensions: Vec<usize>,
    pub iters: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { extensions: vec![16, 128, 1024], iters: 20_000 }
    }
}

fn sample_indices(s: &ExtendibleShape, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = Lcg::new(seed);
    (0..n).map(|_| s.bounds().iter().map(|&b| rng.below(b)).collect()).collect()
}

pub fn run(params: Params) -> Table {
    let mut table = Table::new(
        "E7 — ablations: record merging and the merged segment directory",
        &[
            "extensions (same dim)",
            "records merged",
            "records unmerged",
            "F* merged ns/op",
            "F* unmerged ns/op",
            "F*⁻¹ directory ns/op",
            "F*⁻¹ k-searches ns/op",
        ],
    );
    for &e in &params.extensions {
        // Alternate a little so the merged variant still has a few records,
        // but extend dimension 0 overwhelmingly (uninterrupted runs).
        let mut merged = ExtendibleShape::new(&[2, 2, 2]).expect("valid");
        let mut unmerged = ExtendibleShape::new(&[2, 2, 2]).expect("valid");
        for i in 0..e {
            let dim = if i % 64 == 63 { 1 } else { 0 };
            merged.extend(dim, 1).expect("valid");
            unmerged.extend_unmerged(dim, 1).expect("valid");
        }
        let indices = sample_indices(&merged, 256, e as u64);
        let addrs: Vec<u64> = indices.iter().map(|i| merged.address(i).expect("valid")).collect();

        let mut c = 0usize;
        let f_merged = time_per_op(params.iters, || {
            c = (c + 1) % indices.len();
            std::hint::black_box(merged.address_unchecked(&indices[c]));
        });
        let mut c = 0usize;
        let f_unmerged = time_per_op(params.iters, || {
            c = (c + 1) % indices.len();
            std::hint::black_box(unmerged.address_unchecked(&indices[c]));
        });
        let mut c = 0usize;
        let inv_dir = time_per_op(params.iters, || {
            c = (c + 1) % addrs.len();
            std::hint::black_box(merged.index_of(addrs[c]).expect("valid"));
        });
        let mut c = 0usize;
        let inv_search = time_per_op(params.iters, || {
            c = (c + 1) % addrs.len();
            std::hint::black_box(merged.index_of_searches(addrs[c]).expect("valid"));
        });
        table.row(vec![
            e.to_string(),
            merged.record_count().to_string(),
            unmerged.record_count().to_string(),
            f_merged.to_string(),
            f_unmerged.to_string(),
            inv_dir.to_string(),
            inv_search.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_record_count_small() {
        let t = run(Params { extensions: vec![128], iters: 500 });
        let merged: usize = t.rows[0][1].parse().unwrap();
        let unmerged: usize = t.rows[0][2].parse().unwrap();
        assert!(merged < 10, "merged records should be a handful, got {merged}");
        assert_eq!(unmerged, 129, "one record per extension plus the initial");
    }
}
