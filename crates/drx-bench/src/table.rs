//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A titled table of string cells, printed in aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        let _ = ncols;
        Ok(())
    }
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }
}
