//! Regeneration of the paper's three figures (experiments F1–F3).
//!
//! The figures are deterministic address layouts, so they are *asserted*,
//! not just printed: the integration tests compare every value against the
//! numbers visible in the paper.

use crate::table::Table;
use drx_core::alloc::{
    address_table, AllocScheme2, AxialScheme, Morton2, RowMajor, SymmetricShell2,
};
use drx_core::{ExtendibleShape, Region};

/// Figure 1 state: the 2-D extendible array of the paper grown to a 5×4
/// chunk grid, plus its 2×2 BLOCK zone decomposition.
pub struct Figure1 {
    pub shape: ExtendibleShape,
    /// Chunk address grid, `grid[i][j] = F*(i, j)`.
    pub grid: Vec<Vec<u64>>,
    /// Chunk addresses per process, `zone_maps[rank]` — the listing's
    /// `globalMap`.
    pub zone_maps: Vec<Vec<u64>>,
}

/// Build Figure 1: growth history chunk 0 → +D1 (chunk 1) → +D0 (2,3) →
/// +D0 (4,5) → +D1 (6,7,8) → +D0 (9,10,11) → +D1 (12..=15) → +D0 (16..=19).
pub fn figure1() -> Figure1 {
    let mut shape = ExtendibleShape::new(&[1, 1]).expect("valid");
    for (dim, by) in [(1, 1), (0, 1), (0, 1), (1, 1), (0, 1), (1, 1), (0, 1)] {
        shape.extend(dim, by).expect("valid extension");
    }
    let (rows, cols) = (shape.bounds()[0], shape.bounds()[1]);
    let grid: Vec<Vec<u64>> = (0..rows)
        .map(|i| (0..cols).map(|j| shape.address(&[i, j]).expect("in bounds")).collect())
        .collect();
    // 2×2 BLOCK zones, exactly as the paper's code listing distributes them.
    let dist = drx_mp::DistSpec::block(vec![2, 2]);
    let zone_maps: Vec<Vec<u64>> = (0..4)
        .map(|rank| {
            let mut addrs: Vec<u64> = dist
                .chunks_of(rank, shape.bounds())
                .into_iter()
                .map(|c| shape.address(&c).expect("in bounds"))
                .collect();
            addrs.sort_unstable();
            addrs
        })
        .collect();
    Figure1 { shape, grid, zone_maps }
}

/// Render Figure 1 as tables.
pub fn figure1_tables() -> Vec<Table> {
    let fig = figure1();
    let cols = fig.shape.bounds()[1];
    let mut layout = Table::new(
        "Figure 1 — chunk addresses of the 2-D extendible array (5×4 chunk grid, chunks 2×3)",
        &std::iter::once("row".to_string())
            .chain((0..cols).map(|j| format!("col {j}")))
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );
    for (i, row) in fig.grid.iter().enumerate() {
        let mut cells = vec![format!("{i}")];
        cells.extend(row.iter().map(|a| a.to_string()));
        layout.row(cells);
    }
    let mut zones = Table::new(
        "Figure 1 — zone maps of the 4 processes (the listing's globalMap / inMemoryMap)",
        &["process", "chunk addresses (globalMap)", "memory slots (inMemoryMap)"],
    );
    let mem_maps = figure1_memory_maps();
    for (rank, (addrs, mem)) in fig.zone_maps.iter().zip(&mem_maps).enumerate() {
        zones.row(vec![
            format!("P{rank}"),
            addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", "),
            mem.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", "),
        ]);
    }
    vec![layout, zones]
}

/// The paper listing's `inMemoryMap`: for each process, the position each
/// of its chunks takes in the zone's in-memory buffer (C-order over the
/// zone's chunk grid), listed in increasing file-address order — exactly
/// how the listing builds its `memtype` with `MPI_Type_indexed`.
pub fn figure1_memory_maps() -> Vec<Vec<u64>> {
    let fig = figure1();
    let dist = drx_mp::DistSpec::block(vec![2, 2]);
    (0..4)
        .map(|rank| {
            let zone = dist
                .zone_chunk_region(rank, fig.shape.bounds())
                .expect("BLOCK zones are rectilinear");
            // Chunks in increasing file-address order.
            let mut pairs: Vec<(Vec<usize>, u64)> = zone
                .iter()
                .map(|c| {
                    let a = fig.shape.address(&c).expect("in bounds");
                    (c, a)
                })
                .collect();
            pairs.sort_by_key(|&(_, a)| a);
            // Each chunk's C-order position within the zone's chunk grid.
            pairs.into_iter().map(|(c, _)| zone.local_offset(&c).expect("chunk in zone")).collect()
        })
        .collect()
}

/// Figure 2: the four 8×8 allocation-scheme address tables.
pub fn figure2_tables() -> Vec<Table> {
    let schemes: Vec<(Box<dyn AllocScheme2>, &str)> = vec![
        (Box::new(RowMajor::new(vec![8, 8]).expect("valid")), "(a) row-major sequence order"),
        (Box::new(Morton2::new()), "(b) Z (Morton) sequence order"),
        (Box::new(SymmetricShell2::new()), "(c) symmetric linear shell sequence order"),
        (
            Box::new(AxialScheme::figure2d().expect("valid")),
            "(d) arbitrary linear shell sequence order (axial vectors, F*)",
        ),
    ];
    schemes
        .into_iter()
        .map(|(scheme, title)| {
            let t = address_table(scheme.as_ref(), 8).expect("8x8 in range");
            let headers: Vec<String> =
                std::iter::once("i\\j".to_string()).chain((0..8).map(|j| format!("{j}"))).collect();
            let mut table = Table::new(
                format!("Figure 2{title}", title = title),
                &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            );
            for (i, row) in t.iter().enumerate() {
                let mut cells = vec![format!("{i}")];
                cells.extend(row.iter().map(|a| a.to_string()));
                table.row(cells);
            }
            table
        })
        .collect()
}

/// Figure 3 state: the 3-D example with its axial vectors.
pub struct Figure3 {
    pub shape: ExtendibleShape,
}

/// Build Figure 3: initial `A[4][3][1]`, extend D2 ×2 (uninterrupted),
/// D1 +1, D0 +2, D2 +1 → bounds `[6,4,4]`, 96 chunks.
pub fn figure3() -> Figure3 {
    let mut shape = ExtendibleShape::new(&[4, 3, 1]).expect("valid");
    for (dim, by) in [(2, 1), (2, 1), (1, 1), (0, 2), (2, 1)] {
        shape.extend(dim, by).expect("valid extension");
    }
    Figure3 { shape }
}

/// Render Figure 3's axial vectors (with the paper's sentinel rows) and the
/// worked-example addresses.
pub fn figure3_tables() -> Vec<Table> {
    let fig = figure3();
    let mut axial = Table::new(
        "Figure 3b — the three axial vectors (start index N*; start address M*; coefficients C)",
        &["dimension", "N*", "M*", "C[0..3]"],
    );
    for dim in (0..3).rev() {
        for (start, addr, coeffs) in fig.shape.axial(dim).display_records(3) {
            axial.row(vec![
                format!("D{dim}"),
                start.to_string(),
                addr.to_string(),
                format!("{coeffs:?}"),
            ]);
        }
    }
    let mut spots = Table::new(
        "Figure 3 / §III-B — spot addresses",
        &["chunk index", "F* (computed)", "paper"],
    );
    for (idx, paper) in [([2usize, 1, 0], 7u64), ([3, 1, 2], 34), ([4, 2, 2], 56)] {
        spots.row(vec![
            format!("{idx:?}"),
            fig.shape.address(&idx).expect("in bounds").to_string(),
            paper.to_string(),
        ]);
    }
    let mut inverse =
        Table::new("Figure 3 — inverse mapping F*⁻¹ samples", &["address", "F*⁻¹(address)"]);
    for addr in [0u64, 7, 34, 56, 71, 95] {
        inverse.row(vec![
            addr.to_string(),
            format!("{:?}", fig.shape.index_of(addr).expect("in bounds")),
        ]);
    }
    vec![axial, spots, inverse]
}

/// Bijectivity sweep used by tests and the figures binary: every scheme of
/// Figure 2 assigns distinct addresses on the 8×8 square.
pub fn figure2_bijectivity() -> Vec<(String, bool)> {
    use drx_core::alloc::is_bijective_on_square;
    let schemes: Vec<Box<dyn AllocScheme2>> = vec![
        Box::new(RowMajor::new(vec![8, 8]).expect("valid")),
        Box::new(Morton2::new()),
        Box::new(SymmetricShell2::new()),
        Box::new(AxialScheme::figure2d().expect("valid")),
    ];
    schemes
        .iter()
        .map(|s| (s.name().to_string(), is_bijective_on_square(s.as_ref(), 8).unwrap_or(false)))
        .collect()
}

/// Sanity helper used in tests: the number of valid (clipped) elements in
/// Figure 1's array `A[10][12]`.
pub fn figure1_element_region() -> Region {
    Region::new(vec![0, 0], vec![10, 12]).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_grid_matches_paper() {
        let fig = figure1();
        assert_eq!(
            fig.grid,
            vec![
                vec![0, 1, 6, 12],
                vec![2, 3, 7, 13],
                vec![4, 5, 8, 14],
                vec![9, 10, 11, 15],
                vec![16, 17, 18, 19],
            ]
        );
    }

    #[test]
    fn figure1_zone_maps_match_listing() {
        let fig = figure1();
        assert_eq!(
            fig.zone_maps,
            vec![
                vec![0, 1, 2, 3, 4, 5],
                vec![6, 7, 8, 12, 13, 14],
                vec![9, 10, 16, 17],
                vec![11, 15, 18, 19],
            ]
        );
    }

    #[test]
    fn figure1_in_memory_maps_match_listing() {
        // The listing: inMemoryMap = {{0,1,2,3,4,5}, {0,2,4,1,3,5},
        // {0,1,2,3}, {0,1,2,3}}.
        assert_eq!(
            figure1_memory_maps(),
            vec![
                vec![0, 1, 2, 3, 4, 5],
                vec![0, 2, 4, 1, 3, 5],
                vec![0, 1, 2, 3],
                vec![0, 1, 2, 3],
            ]
        );
    }

    #[test]
    fn figure3_spots() {
        let fig = figure3();
        assert_eq!(fig.shape.address(&[2, 1, 0]).unwrap(), 7);
        assert_eq!(fig.shape.address(&[3, 1, 2]).unwrap(), 34);
        assert_eq!(fig.shape.address(&[4, 2, 2]).unwrap(), 56);
        assert_eq!(fig.shape.total_chunks(), 96);
    }

    #[test]
    fn tables_render_without_panicking() {
        for t in figure1_tables().iter().chain(&figure2_tables()).chain(&figure3_tables()) {
            let s = t.to_string();
            assert!(s.contains("##"));
        }
    }

    #[test]
    fn all_schemes_bijective() {
        for (name, ok) in figure2_bijectivity() {
            assert!(ok, "{name} not bijective on 8×8");
        }
    }
}
