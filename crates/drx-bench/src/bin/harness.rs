//! Run the evaluation experiments E1–E10 and print their tables — the data
//! recorded in EXPERIMENTS.md.
//!
//! Usage: `harness [e1..e10]...` (default: all). Add
//! `--quick` for reduced iteration counts (used in smoke tests) and
//! `--json [PATH]` to serialize the E10 fast-path measurements
//! (default path: `BENCH_PR4.json`).

use drx_bench::experiments::{
    e10_fastpath, e1_mapping, e2_extension, e3_access_order, e4_parallel, e5_chunk_stripe, e6_ga,
    e7_ablation, e8_cache, e9_balance,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path: Option<String> = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--") && !is_experiment_name(p))
            .cloned()
            .unwrap_or_else(|| "BENCH_PR4.json".to_string())
    });
    let selected: Vec<&str> =
        args.iter().filter(|a| is_experiment_name(a)).map(|a| a.as_str()).collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    println!("DRX-MP evaluation harness (deterministic simulated-time results)");
    println!("================================================================\n");

    if want("e1") {
        let p = if quick {
            e1_mapping::Params { ranks: vec![2, 3], expansions: vec![4, 32], iters: 2_000 }
        } else {
            e1_mapping::Params::default()
        };
        println!("{}", e1_mapping::run(p));
    }
    if want("e2") {
        let p = if quick {
            e2_extension::Params { sides: vec![64], chunk: 16 }
        } else {
            e2_extension::Params::default()
        };
        println!("{}", e2_extension::run(p));
    }
    if want("e3") {
        let p = if quick {
            e3_access_order::Params { side: 64, chunk: 16, panels: 4 }
        } else {
            e3_access_order::Params::default()
        };
        println!("{}", e3_access_order::run(p));
    }
    if want("e4") {
        let p = if quick {
            e4_parallel::Params {
                side: 64,
                chunk: 8,
                ranks: vec![1, 4],
                servers: 4,
                stripe: 16 * 1024,
            }
        } else {
            e4_parallel::Params::default()
        };
        println!("{}", e4_parallel::run(p));
    }
    if want("e5") {
        let p = if quick {
            e5_chunk_stripe::Params {
                side: 96,
                chunk_sides: vec![16, 24, 32],
                servers: 2,
                stripe: 2048,
            }
        } else {
            e5_chunk_stripe::Params::default()
        };
        println!("{}", e5_chunk_stripe::run(p));
    }
    if want("e6") {
        let p = if quick {
            e6_ga::Params { side: 32, chunk: 8, ranks: 4, ops: 500 }
        } else {
            e6_ga::Params::default()
        };
        println!("{}", e6_ga::run(p));
    }
    if want("e7") {
        let p = if quick {
            e7_ablation::Params { extensions: vec![16, 128], iters: 2_000 }
        } else {
            e7_ablation::Params::default()
        };
        println!("{}", e7_ablation::run(p));
    }
    if want("e8") {
        let p = if quick {
            e8_cache::Params { side: 32, chunk: 8, pool_chunks: 4, accesses: 2_000 }
        } else {
            e8_cache::Params::default()
        };
        println!("{}", e8_cache::run(p));
    }
    if want("e9") {
        let p = if quick {
            e9_balance::Params { nprocs: 4, grids: vec![vec![5, 4], vec![9, 7]] }
        } else {
            e9_balance::Params::default()
        };
        println!("{}", e9_balance::run(p));
    }
    if want("e10") || json_path.is_some() {
        let p = if quick { e10_fastpath::quick_params() } else { e10_fastpath::Params::default() };
        let report = e10_fastpath::run(p);
        println!("{}", report.table);
        if let Some(path) = json_path {
            std::fs::write(&path, &report.json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote {path}");
        }
    }
}

/// `e1`..`e10` style selectors (distinguishes them from a `--json` path).
fn is_experiment_name(a: &str) -> bool {
    a.len() >= 2 && a.starts_with('e') && a[1..].chars().all(|c| c.is_ascii_digit())
}
