//! Print the paper's Figures 1–3 regenerated from the library.
//!
//! Usage: `figures [--fig 1|2|3]` (default: all).

use drx_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok());

    let print_fig = |n: u32| match n {
        1 => {
            for t in figures::figure1_tables() {
                println!("{t}");
            }
        }
        2 => {
            for t in figures::figure2_tables() {
                println!("{t}");
            }
            println!("Bijectivity on the 8×8 square:");
            for (name, ok) in figures::figure2_bijectivity() {
                println!("  {name}: {}", if ok { "bijective" } else { "NOT bijective" });
            }
            println!();
        }
        3 => {
            for t in figures::figure3_tables() {
                println!("{t}");
            }
        }
        other => {
            eprintln!("unknown figure {other}; expected 1, 2 or 3");
            std::process::exit(2);
        }
    };

    match which {
        Some(n) => print_fig(n),
        None => {
            for n in 1..=3 {
                print_fig(n);
            }
        }
    }
}
