//! E4 wall-clock bench: reading the BLOCK zones of a principal array over P
//! rank-threads, independent vs two-phase collective I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drx_core::{Layout, Region};
use drx_mp::{error::to_msg, DistSpec, DrxFile, DrxmpHandle};
use drx_msg::run_spmd;
use drx_pfs::Pfs;

const SIDE: usize = 128;
const CHUNK: usize = 16;

fn seeded_pfs() -> Pfs {
    let pfs = Pfs::memory(4, 64 * 1024).unwrap();
    let mut f: DrxFile<f64> = DrxFile::create(&pfs, "arr", &[CHUNK, CHUNK], &[SIDE, SIDE]).unwrap();
    let region = Region::new(vec![0, 0], vec![SIDE, SIDE]).unwrap();
    let data: Vec<f64> = (0..(SIDE * SIDE) as u64).map(|x| x as f64).collect();
    f.write_region(&region, Layout::C, &data).unwrap();
    pfs
}

fn bench_parallel_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_parallel_read");
    group.sample_size(10);
    for &p in &[1usize, 2, 4, 8] {
        for (collective, label) in [(false, "independent"), (true, "collective")] {
            let pfs = seeded_pfs();
            group.bench_with_input(BenchmarkId::new(label, p), &p, |b, &p| {
                b.iter(|| {
                    let fs = pfs.clone();
                    run_spmd(p, move |comm| {
                        let dist = DistSpec::auto(comm.size(), 2);
                        let mut h: DrxmpHandle<f64> =
                            DrxmpHandle::open(comm, &fs, "arr", dist).map_err(to_msg)?;
                        if collective {
                            let _ = h.read_my_zone(Layout::C).map_err(to_msg)?;
                        } else if let Some(zone) = h.my_zone() {
                            let _ = h.read_region(&zone, Layout::C).map_err(to_msg)?;
                        }
                        h.close().map_err(to_msg)?;
                        Ok(())
                    })
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_read);
criterion_main!(benches);
