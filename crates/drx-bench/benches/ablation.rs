//! E7 wall-clock bench: design-choice ablations — uninterrupted-extension
//! merging on/off for `F*`, and merged-directory vs k-binary-searches for
//! `F*⁻¹`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drx_core::ExtendibleShape;
use std::hint::black_box;

fn grow(e: usize, merge: bool) -> ExtendibleShape {
    let mut s = ExtendibleShape::new(&[2, 2, 2]).unwrap();
    for i in 0..e {
        let dim = if i % 64 == 63 { 1 } else { 0 };
        if merge {
            s.extend(dim, 1).unwrap();
        } else {
            s.extend_unmerged(dim, 1).unwrap();
        }
    }
    s
}

fn sample(s: &ExtendibleShape, n: usize) -> Vec<Vec<usize>> {
    let mut seed = 12345u64;
    (0..n)
        .map(|_| {
            s.bounds()
                .iter()
                .map(|&b| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (seed % b as u64) as usize
                })
                .collect()
        })
        .collect()
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ablation");
    for &e in &[64usize, 512] {
        let merged = grow(e, true);
        let unmerged = grow(e, false);
        let indices = sample(&merged, 128);
        let addrs: Vec<u64> = indices.iter().map(|i| merged.address(i).unwrap()).collect();

        group.bench_with_input(BenchmarkId::new("fstar_merged", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % indices.len();
                black_box(merged.address_unchecked(&indices[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("fstar_unmerged", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % indices.len();
                black_box(unmerged.address_unchecked(&indices[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("inverse_directory", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % addrs.len();
                black_box(merged.index_of(addrs[i]).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("inverse_k_searches", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % addrs.len();
                black_box(merged.index_of_searches(addrs[i]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
