//! E1 wall-clock bench: chunk address computation — `F*` and `F*⁻¹` vs the
//! conventional row-major `F`, Morton codes, and an HDF5-style B-tree
//! lookup, across expansion counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drx_baselines::Btree;
use drx_core::alloc::MortonK;
use drx_core::index::row_major_offset;
use drx_core::ExtendibleShape;
use drx_pfs::Pfs;
use std::hint::black_box;

fn grown_shape(k: usize, e: usize) -> ExtendibleShape {
    let mut s = ExtendibleShape::new(&vec![2; k]).unwrap();
    for i in 0..e {
        s.extend(i % k, 1).unwrap();
    }
    s
}

fn sample_indices(s: &ExtendibleShape, n: usize) -> Vec<Vec<usize>> {
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            s.bounds()
                .iter()
                .map(|&b| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (seed % b as u64) as usize
                })
                .collect()
        })
        .collect()
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_mapping");
    for &e in &[4usize, 64, 512] {
        let shape = grown_shape(3, e);
        let indices = sample_indices(&shape, 128);
        let addrs: Vec<u64> = indices.iter().map(|i| shape.address(i).unwrap()).collect();
        let bounds = shape.bounds().to_vec();

        group.bench_with_input(BenchmarkId::new("fstar", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % indices.len();
                black_box(shape.address_unchecked(&indices[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("fstar_inverse", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % addrs.len();
                black_box(shape.index_of(addrs[i]).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("row_major_f", e), &e, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % indices.len();
                black_box(row_major_offset(&indices[i], &bounds).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("morton", e), &e, |b, _| {
            let morton = MortonK::new(3, 20).unwrap();
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % indices.len();
                black_box(morton.encode(&indices[i]).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("btree_lookup", e), &e, |b, _| {
            let pfs = Pfs::memory(1, 1 << 20).unwrap();
            let mut tree = Btree::create(pfs.create("idx").unwrap(), 3, 4096).unwrap();
            for a in 0..shape.total_chunks().min(10_000) {
                let idx = shape.index_of(a).unwrap();
                let key: Vec<u64> = idx.iter().map(|&x| x as u64).collect();
                tree.insert(&key, a).unwrap();
            }
            let keys: Vec<Vec<u64>> =
                indices.iter().map(|i| i.iter().map(|&x| x as u64).collect()).collect();
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(tree.get(&keys[i]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
