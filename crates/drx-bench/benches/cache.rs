//! E8 wall-clock bench: element access with and without the Mpool chunk
//! cache, under sequential and random patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drx_core::{Layout, Region};
use drx_mp::{CachedDrxFile, DrxFile};
use drx_pfs::Pfs;
use std::hint::black_box;

const SIDE: usize = 64;
const CHUNK: usize = 16;

fn seeded(pfs: &Pfs) -> DrxFile<f64> {
    let mut f: DrxFile<f64> = DrxFile::create(pfs, "c", &[CHUNK, CHUNK], &[SIDE, SIDE]).unwrap();
    let region = Region::new(vec![0, 0], vec![SIDE, SIDE]).unwrap();
    let data: Vec<f64> = (0..(SIDE * SIDE) as u64).map(|x| x as f64).collect();
    f.write_region(&region, Layout::C, &data).unwrap();
    f
}

fn indices(random: bool) -> Vec<[usize; 2]> {
    if random {
        let mut seed = 7u64;
        (0..4096)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                [(seed >> 11) as usize % SIDE, (seed >> 37) as usize % SIDE]
            })
            .collect()
    } else {
        (0..4096).map(|n| [(n / SIDE) % SIDE, n % SIDE]).collect()
    }
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_cache");
    group.sample_size(20);
    for (random, pattern) in [(false, "sequential"), (true, "random")] {
        let idx = indices(random);
        group.bench_with_input(BenchmarkId::new("uncached", pattern), &random, |b, _| {
            let pfs = Pfs::memory(2, 64 * 1024).unwrap();
            let f = seeded(&pfs);
            b.iter(|| {
                for i in &idx {
                    black_box(f.get(i).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("mpool_cached", pattern), &random, |b, _| {
            let pfs = Pfs::memory(2, 64 * 1024).unwrap();
            let mut f = CachedDrxFile::new(seeded(&pfs), 8).unwrap();
            b.iter(|| {
                for i in &idx {
                    black_box(f.get(i).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
