//! E2 wall-clock bench: extending dimension 1 of an N×N f64 array — DRX
//! append-only vs row-major / netCDF-like reorganization vs HDF5-like
//! metadata-only.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use drx_baselines::{Hdf5LikeFile, NetcdfLikeFile, RowMajorFile};
use drx_core::{Layout, Region};
use drx_mp::DrxFile;
use drx_pfs::Pfs;

const CHUNK: usize = 16;

fn seeded_data(n: usize) -> Vec<f64> {
    (0..(n * n) as u64).map(|x| x as f64).collect()
}

fn bench_extension(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_extension");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let region = Region::new(vec![0, 0], vec![n, n]).unwrap();
        let data = seeded_data(n);

        group.bench_with_input(BenchmarkId::new("drx_fstar", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let pfs = Pfs::memory(4, 64 * 1024).unwrap();
                    let mut f: DrxFile<f64> =
                        DrxFile::create(&pfs, "a", &[CHUNK, CHUNK], &[n, n]).unwrap();
                    f.write_region(&region, Layout::C, &data).unwrap();
                    f
                },
                |mut f| f.extend(1, CHUNK).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("hdf5like_btree", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let pfs = Pfs::memory(4, 64 * 1024).unwrap();
                    let mut f: Hdf5LikeFile<f64> =
                        Hdf5LikeFile::create(&pfs, "a", &[CHUNK, CHUNK], &[n, n], 4096).unwrap();
                    f.write_region(&region, Layout::C, &data).unwrap();
                    f
                },
                |mut f| f.extend(1, CHUNK).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("row_major_reorg", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let pfs = Pfs::memory(4, 64 * 1024).unwrap();
                    let mut f: RowMajorFile<f64> =
                        RowMajorFile::create(&pfs, "a", &[n, n]).unwrap();
                    f.write_region(&region, Layout::C, &data).unwrap();
                    f
                },
                |mut f| f.extend(1, CHUNK).unwrap(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("netcdf_redefine", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let pfs = Pfs::memory(4, 64 * 1024).unwrap();
                    let mut f: NetcdfLikeFile<f64> =
                        NetcdfLikeFile::create(&pfs, "a", &[n, n]).unwrap();
                    f.write_region(&region, Layout::C, &data).unwrap();
                    f
                },
                |mut f| f.extend_fixed(1, CHUNK).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extension);
criterion_main!(benches);
