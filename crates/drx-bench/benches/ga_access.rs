//! E6 wall-clock bench: Global-Array-style element access — local get,
//! remote get and contended accumulate through RMA windows.

use criterion::{criterion_group, criterion_main, Criterion};
use drx_core::{Layout, Region};
use drx_mp::{error::to_msg, DistSpec, DrxFile, DrxmpHandle, GaView};
use drx_msg::run_spmd;
use drx_pfs::Pfs;
use std::hint::black_box;

const SIDE: usize = 64;
const CHUNK: usize = 8;
const OPS: usize = 2_000;

fn bench_ga(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_ga_access");
    group.sample_size(10);
    let pfs = Pfs::memory(4, 64 * 1024).unwrap();
    {
        let mut f: DrxFile<f64> =
            DrxFile::create(&pfs, "ga", &[CHUNK, CHUNK], &[SIDE, SIDE]).unwrap();
        let region = Region::new(vec![0, 0], vec![SIDE, SIDE]).unwrap();
        let data: Vec<f64> = (0..(SIDE * SIDE) as u64).map(|x| x as f64).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
    }

    // A whole SPMD session per iteration batch: measure per-op inside and
    // report the batched figure (windows cannot outlive their ranks).
    group.bench_function("spmd_get_local_and_remote_batch", |b| {
        b.iter(|| {
            let fs = pfs.clone();
            run_spmd(4, move |comm| {
                let dist = DistSpec::auto(comm.size(), 2);
                let mut h: DrxmpHandle<f64> =
                    DrxmpHandle::open(comm, &fs, "ga", dist).map_err(to_msg)?;
                let ga = GaView::load(&mut h).map_err(to_msg)?;
                ga.fence().map_err(to_msg)?;
                let zones = ga.zones();
                let local = zones[comm.rank()].clone().unwrap().lo().to_vec();
                let peer = (comm.rank() + 1) % comm.size();
                let remote = zones[peer].clone().unwrap().lo().to_vec();
                for _ in 0..OPS {
                    black_box(ga.get(&local).map_err(to_msg)?);
                    black_box(ga.get(&remote).map_err(to_msg)?);
                }
                ga.fence().map_err(to_msg)?;
                h.close().map_err(to_msg)?;
                Ok(())
            })
            .unwrap()
        })
    });

    group.bench_function("spmd_contended_accumulate_batch", |b| {
        b.iter(|| {
            let fs = pfs.clone();
            run_spmd(4, move |comm| {
                let dist = DistSpec::auto(comm.size(), 2);
                let mut h: DrxmpHandle<f64> =
                    DrxmpHandle::open(comm, &fs, "ga", dist).map_err(to_msg)?;
                let ga = GaView::load(&mut h).map_err(to_msg)?;
                ga.fence().map_err(to_msg)?;
                for _ in 0..OPS {
                    ga.accumulate(&[0, 0], 1.0).map_err(to_msg)?;
                }
                ga.fence().map_err(to_msg)?;
                h.close().map_err(to_msg)?;
                Ok(())
            })
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ga);
criterion_main!(benches);
