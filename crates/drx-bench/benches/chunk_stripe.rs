//! E5 wall-clock bench: full sequential chunk scan under different chunk
//! sizes relative to the PFS stripe size (the paper's §V tuning question).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drx_core::{Layout, Region};
use drx_mp::DrxFile;
use drx_pfs::Pfs;
use std::hint::black_box;

const SIDE: usize = 192;
const STRIPE: u64 = 16 * 1024;

fn bench_chunk_stripe(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_chunk_stripe");
    group.sample_size(10);
    for &chunk in &[16usize, 24, 32, 48, 64] {
        let pfs = Pfs::memory(4, STRIPE).unwrap();
        let mut f: DrxFile<f64> =
            DrxFile::create(&pfs, "arr", &[chunk, chunk], &[SIDE, SIDE]).unwrap();
        let region = Region::new(vec![0, 0], vec![SIDE, SIDE]).unwrap();
        let data: Vec<f64> = (0..(SIDE * SIDE) as u64).map(|x| x as f64).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
        let total = f.meta().total_chunks();
        group.bench_with_input(BenchmarkId::new("chunk_scan", chunk), &chunk, |b, _| {
            b.iter(|| {
                for addr in 0..total {
                    black_box(f.read_chunk_raw(addr).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunk_stripe);
criterion_main!(benches);
