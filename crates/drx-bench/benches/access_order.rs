//! E3 wall-clock bench: streaming an array in row vs column panels from a
//! row-major file vs a DRX chunked file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drx_baselines::RowMajorFile;
use drx_core::{Layout, Region};
use drx_mp::DrxFile;
use drx_pfs::Pfs;
use std::hint::black_box;

const SIDE: usize = 128;
const CHUNK: usize = 16;
const PANELS: usize = 8;

fn panels(by_rows: bool) -> Vec<Region> {
    let w = SIDE / PANELS;
    (0..PANELS)
        .map(|p| {
            if by_rows {
                Region::new(vec![p * w, 0], vec![(p + 1) * w, SIDE]).unwrap()
            } else {
                Region::new(vec![0, p * w], vec![SIDE, (p + 1) * w]).unwrap()
            }
        })
        .collect()
}

fn bench_access_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_access_order");
    group.sample_size(20);
    let region = Region::new(vec![0, 0], vec![SIDE, SIDE]).unwrap();
    let data: Vec<f64> = (0..(SIDE * SIDE) as u64).map(|x| x as f64).collect();

    let pfs_rm = Pfs::memory(4, 64 * 1024).unwrap();
    let mut rm: RowMajorFile<f64> = RowMajorFile::create(&pfs_rm, "rm", &[SIDE, SIDE]).unwrap();
    rm.write_region(&region, Layout::C, &data).unwrap();

    let pfs_dx = Pfs::memory(4, 64 * 1024).unwrap();
    let mut dx: DrxFile<f64> =
        DrxFile::create(&pfs_dx, "dx", &[CHUNK, CHUNK], &[SIDE, SIDE]).unwrap();
    dx.write_region(&region, Layout::C, &data).unwrap();

    for (by_rows, label) in [(true, "row_panels"), (false, "col_panels")] {
        let ps = panels(by_rows);
        group.bench_with_input(BenchmarkId::new("row_major_file", label), &by_rows, |b, _| {
            b.iter(|| {
                for p in &ps {
                    black_box(rm.read_region(p, Layout::C).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("drx_chunked", label), &by_rows, |b, _| {
            b.iter(|| {
                for p in &ps {
                    black_box(dx.read_region(p, Layout::C).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_access_order);
criterion_main!(benches);
