//! Minimal scalar codec for typed messages and reductions.
//!
//! The runtime moves raw bytes; this module provides the little-endian
//! encoding for the handful of scalar types that collectives and typed
//! point-to-point helpers operate on (mirroring the basic MPI datatypes).

/// A fixed-size scalar with a defined little-endian wire format.
pub trait Scalar: Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    const SIZE: usize;
    fn write_le(&self, out: &mut Vec<u8>);
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $size:expr) => {
        impl Scalar for $t {
            const SIZE: usize = $size;
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(bytes: &[u8]) -> Self {
                let mut a = [0u8; $size];
                a.copy_from_slice(&bytes[..$size]);
                <$t>::from_le_bytes(a)
            }
        }
    };
}

impl_scalar!(u8, 1);
impl_scalar!(u16, 2);
impl_scalar!(u32, 4);
impl_scalar!(u64, 8);
impl_scalar!(i32, 4);
impl_scalar!(i64, 8);
impl_scalar!(f32, 4);
impl_scalar!(f64, 8);

/// Encode a slice of scalars to bytes.
pub fn encode<T: Scalar>(vals: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * T::SIZE);
    for v in vals {
        v.write_le(&mut out);
    }
    out
}

/// Decode bytes into scalars; panics on ragged input (callers control both
/// sides of the wire).
pub fn decode<T: Scalar>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "ragged wire buffer: {} bytes for {}-byte scalars",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(T::read_le).collect()
}

/// Reduction operators for scalar collectives (the MPI_Op counterpart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    /// Apply the operator element-wise: `acc[i] = op(acc[i], v[i])`.
    pub fn fold_f64(self, acc: &mut [f64], v: &[f64]) {
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(v).for_each(|(a, &b)| *a += b),
            ReduceOp::Min => acc.iter_mut().zip(v).for_each(|(a, &b)| *a = a.min(b)),
            ReduceOp::Max => acc.iter_mut().zip(v).for_each(|(a, &b)| *a = a.max(b)),
        }
    }

    /// Apply the operator element-wise on u64.
    pub fn fold_u64(self, acc: &mut [u64], v: &[u64]) {
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(v).for_each(|(a, &b)| *a += b),
            ReduceOp::Min => acc.iter_mut().zip(v).for_each(|(a, &b)| *a = (*a).min(b)),
            ReduceOp::Max => acc.iter_mut().zip(v).for_each(|(a, &b)| *a = (*a).max(b)),
        }
    }

    /// Apply the operator element-wise on i64.
    pub fn fold_i64(self, acc: &mut [i64], v: &[i64]) {
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(v).for_each(|(a, &b)| *a += b),
            ReduceOp::Min => acc.iter_mut().zip(v).for_each(|(a, &b)| *a = (*a).min(b)),
            ReduceOp::Max => acc.iter_mut().zip(v).for_each(|(a, &b)| *a = (*a).max(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let vals = [1.5f64, -2.25, 0.0, f64::MAX];
        assert_eq!(decode::<f64>(&encode(&vals)), vals.to_vec());
        let ints = [u64::MAX, 0, 42];
        assert_eq!(decode::<u64>(&encode(&ints)), ints.to_vec());
        let small = [i32::MIN, -1, 7];
        assert_eq!(decode::<i32>(&encode(&small)), small.to_vec());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_decode_panics() {
        decode::<u32>(&[1, 2, 3]);
    }

    #[test]
    fn reduce_ops() {
        let mut acc = [1.0, 5.0, 3.0];
        ReduceOp::Sum.fold_f64(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, [2.0, 6.0, 4.0]);
        ReduceOp::Min.fold_f64(&mut acc, &[3.0, 0.0, 9.0]);
        assert_eq!(acc, [2.0, 0.0, 4.0]);
        ReduceOp::Max.fold_f64(&mut acc, &[5.0, -1.0, 4.5]);
        assert_eq!(acc, [5.0, 0.0, 4.5]);
        let mut u = [2u64, 3];
        ReduceOp::Sum.fold_u64(&mut u, &[8, 1]);
        assert_eq!(u, [10, 4]);
        let mut i = [-5i64, 3];
        ReduceOp::Min.fold_i64(&mut i, &[-7, 9]);
        assert_eq!(i, [-7, 3]);
    }
}
