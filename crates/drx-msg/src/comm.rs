//! Communicators: the SPMD group abstraction, point-to-point messaging and
//! the rendezvous primitive all collectives are built on.
//!
//! Ranks are OS threads inside one process (see `DESIGN.md` — the paper ran
//! MPI processes over MPICH2; thread-ranks exercise the same SPMD code
//! structure with real shared-memory concurrency). A `Comm` value is one
//! rank's view of the group.

use crate::error::{MsgError, Result};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// What can travel through the rendezvous exchange: raw bytes, or a shared
/// object (used to hand `Arc`s across ranks, e.g. RMA windows and split
/// communicators — things real MPI shares via the runtime, not the wire).
#[derive(Clone)]
pub(crate) enum Payload {
    Bytes(Vec<u8>),
    Obj(Arc<dyn Any + Send + Sync>),
}

impl Payload {
    pub(crate) fn bytes(self) -> Result<Vec<u8>> {
        match self {
            Payload::Bytes(b) => Ok(b),
            Payload::Obj(_) => {
                Err(MsgError::CollectiveMismatch("expected bytes, got object".into()))
            }
        }
    }
}

/// One queued point-to-point message.
struct Message {
    src: usize,
    tag: u32,
    data: Vec<u8>,
}

/// Per-destination mailbox with (source, tag) matching.
struct Mailbox {
    queue: Mutex<Vec<Message>>,
    cond: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox { queue: Mutex::new(Vec::new()), cond: Condvar::new() }
    }
}

/// State of the in-flight collective exchange (an all-to-all rendezvous).
struct ExchangeState {
    /// Number of completed exchanges on this communicator.
    seq: u64,
    deposited: usize,
    /// Deposited rows, one per source rank; each row has one payload per
    /// destination.
    matrix: Vec<Option<Vec<Payload>>>,
    /// The completed matrix, published to all ranks.
    result: Option<Arc<Vec<Vec<Payload>>>>,
    drained: usize,
}

pub(crate) struct CommInner {
    size: usize,
    mailboxes: Vec<Mailbox>,
    exch: Mutex<ExchangeState>,
    exch_cond: Condvar,
    poisoned: AtomicBool,
    /// Sub-communicators created from this one; poisoning cascades so no
    /// rank can block forever on a child after a peer dies.
    children: Mutex<Vec<Weak<CommInner>>>,
}

impl CommInner {
    pub(crate) fn new(size: usize) -> Arc<Self> {
        Arc::new(CommInner {
            size,
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            exch: Mutex::new(ExchangeState {
                seq: 0,
                deposited: 0,
                matrix: (0..size).map(|_| None).collect(),
                result: None,
                drained: 0,
            }),
            exch_cond: Condvar::new(),
            poisoned: AtomicBool::new(false),
            children: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            let _guard = mb.queue.lock();
            mb.cond.notify_all();
        }
        {
            let _guard = self.exch.lock();
            self.exch_cond.notify_all();
        }
        for child in self.children.lock().iter() {
            if let Some(c) = child.upgrade() {
                c.poison();
            }
        }
    }

    fn check_poison(&self) -> Result<()> {
        if self.poisoned.load(Ordering::SeqCst) {
            Err(MsgError::Poisoned)
        } else {
            Ok(())
        }
    }
}

/// One rank's handle on a communicator (the `MPI_Comm` counterpart).
///
/// Cloning a `Comm` yields another handle for the *same rank* — clones share
/// the collective sequence counter, so a rank may drive collectives through
/// any of its clones, but a `Comm` must never be sent to a different rank's
/// thread.
#[derive(Clone)]
pub struct Comm {
    inner: Arc<CommInner>,
    rank: usize,
    coll_seq: Arc<AtomicU64>,
}

impl Comm {
    /// Create the communicators of a fresh group, one per rank.
    pub(crate) fn new_group(size: usize) -> Vec<Comm> {
        let inner = CommInner::new(size);
        (0..size)
            .map(|rank| Comm {
                inner: Arc::clone(&inner),
                rank,
                coll_seq: Arc::new(AtomicU64::new(0)),
            })
            .collect()
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.inner.size
    }

    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    pub(crate) fn inner(&self) -> &Arc<CommInner> {
        &self.inner
    }

    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank >= self.size() {
            Err(MsgError::BadRank { rank, size: self.size() })
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send raw bytes to `dst` with a tag (non-blocking: enqueues).
    pub fn send_bytes(&self, dst: usize, tag: u32, data: Vec<u8>) -> Result<()> {
        self.check_rank(dst)?;
        self.inner.check_poison()?;
        let mb = &self.inner.mailboxes[dst];
        mb.queue.lock().push(Message { src: self.rank, tag, data });
        mb.cond.notify_all();
        Ok(())
    }

    /// Blocking receive matching on optional source and tag. Returns
    /// `(source, tag, data)`.
    pub fn recv_bytes(
        &self,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<(usize, u32, Vec<u8>)> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let mb = &self.inner.mailboxes[self.rank];
        let mut queue = mb.queue.lock();
        loop {
            self.inner.check_poison()?;
            if let Some(pos) = queue
                .iter()
                .position(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
            {
                let m = queue.remove(pos);
                return Ok((m.src, m.tag, m.data));
            }
            mb.cond.wait(&mut queue);
        }
    }

    /// Non-blocking receive; `None` when no matching message is queued.
    pub fn try_recv_bytes(
        &self,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<Option<(usize, u32, Vec<u8>)>> {
        self.inner.check_poison()?;
        let mb = &self.inner.mailboxes[self.rank];
        let mut queue = mb.queue.lock();
        if let Some(pos) = queue
            .iter()
            .position(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
        {
            let m = queue.remove(pos);
            Ok(Some((m.src, m.tag, m.data)))
        } else {
            Ok(None)
        }
    }

    /// Typed send of a scalar slice.
    pub fn send_slice<T: crate::wire::Scalar>(
        &self,
        dst: usize,
        tag: u32,
        vals: &[T],
    ) -> Result<()> {
        self.send_bytes(dst, tag, crate::wire::encode(vals))
    }

    /// Typed receive of a scalar vector.
    pub fn recv_vec<T: crate::wire::Scalar>(
        &self,
        src: Option<usize>,
        tag: Option<u32>,
    ) -> Result<(usize, u32, Vec<T>)> {
        let (s, t, data) = self.recv_bytes(src, tag)?;
        Ok((s, t, crate::wire::decode(&data)))
    }

    // ------------------------------------------------------------------
    // The rendezvous exchange primitive
    // ------------------------------------------------------------------

    /// All-to-all payload exchange: rank `r` contributes `row[d]` for every
    /// destination `d` and receives `result[s]` = what each source `s`
    /// addressed to `r`. All collectives are built on this.
    ///
    /// Every rank of the communicator must call this the same number of
    /// times in the same order (the usual SPMD collective contract).
    pub(crate) fn exchange(&self, row: Vec<Payload>) -> Result<Vec<Payload>> {
        let size = self.size();
        if row.len() != size {
            return Err(MsgError::CollectiveMismatch(format!(
                "exchange row has {} entries for {} ranks",
                row.len(),
                size
            )));
        }
        let my_seq = self.coll_seq.load(Ordering::Relaxed);
        let mut st = self.inner.exch.lock();
        // Wait for our round to open (previous exchange fully drained).
        while st.seq != my_seq || st.result.is_some() {
            self.inner.check_poison()?;
            self.inner.exch_cond.wait(&mut st);
        }
        self.inner.check_poison()?;
        st.matrix[self.rank] = Some(row);
        st.deposited += 1;
        if st.deposited == size {
            let rows: Vec<Vec<Payload>> =
                st.matrix.iter_mut().map(|r| r.take().expect("all rows deposited")).collect();
            st.result = Some(Arc::new(rows));
            st.deposited = 0;
            st.drained = 0;
            self.inner.exch_cond.notify_all();
        } else {
            while st.result.is_none() {
                self.inner.check_poison()?;
                self.inner.exch_cond.wait(&mut st);
            }
            self.inner.check_poison()?;
        }
        let result = Arc::clone(st.result.as_ref().expect("result published"));
        st.drained += 1;
        if st.drained == size {
            st.result = None;
            st.seq += 1;
            self.inner.exch_cond.notify_all();
        }
        drop(st);
        self.coll_seq.store(my_seq + 1, Ordering::Relaxed);
        Ok(result.iter().map(|row| row[self.rank].clone()).collect())
    }

    /// Byte-only exchange convenience.
    pub fn alltoall_bytes(&self, to_each: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        let row = to_each.into_iter().map(Payload::Bytes).collect();
        self.exchange(row)?.into_iter().map(Payload::bytes).collect()
    }

    /// Share a thread-safe object with every rank: each rank contributes one
    /// `Arc` and receives everyone's, indexed by rank. (The runtime-level
    /// sharing MPI does internally for windows and communicators.)
    pub fn share_obj<T: Send + Sync + 'static>(&self, obj: Arc<T>) -> Result<Vec<Arc<T>>> {
        let erased: Arc<dyn Any + Send + Sync> = obj;
        let row = vec![Payload::Obj(erased); self.size()];
        self.exchange(row)?
            .into_iter()
            .map(|p| match p {
                Payload::Obj(o) => o
                    .downcast::<T>()
                    .map_err(|_| MsgError::CollectiveMismatch("object type mismatch".into())),
                Payload::Bytes(_) => {
                    Err(MsgError::CollectiveMismatch("expected object, got bytes".into()))
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Split into disjoint sub-communicators by `color`; ranks with equal
    /// color form a group, ordered by `(key, old rank)`. The `MPI_Comm_split`
    /// counterpart.
    pub fn split(&self, color: u64, key: u64) -> Result<Comm> {
        // 1. Gather everyone's (color, key).
        let mine = crate::wire::encode(&[color, key]);
        let all = self.alltoall_bytes(vec![mine; self.size()])?;
        let pairs: Vec<(u64, u64)> = all
            .iter()
            .map(|b| {
                let v = crate::wire::decode::<u64>(b);
                (v[0], v[1])
            })
            .collect();
        // 2. My group: ranks with my color, sorted by (key, old rank).
        let mut members: Vec<usize> = (0..self.size()).filter(|&r| pairs[r].0 == color).collect();
        members.sort_by_key(|&r| (pairs[r].1, r));
        let new_rank = members.iter().position(|&r| r == self.rank).expect("self in group");
        let leader = members[0];
        // 3. Each leader creates the group's shared state and distributes it
        //    through an object exchange row addressed to its members.
        let mut row: Vec<Payload> = vec![Payload::Bytes(Vec::new()); self.size()];
        if self.rank == leader {
            let new_inner = CommInner::new(members.len());
            self.inner.children.lock().push(Arc::downgrade(&new_inner));
            let erased: Arc<dyn Any + Send + Sync> = new_inner;
            for &m in &members {
                row[m] = Payload::Obj(Arc::clone(&erased));
            }
        }
        let col = self.exchange(row)?;
        let inner = match col.into_iter().nth(leader).expect("leader column present") {
            Payload::Obj(o) => o
                .downcast::<CommInner>()
                .map_err(|_| MsgError::CollectiveMismatch("split object mismatch".into()))?,
            Payload::Bytes(_) => {
                return Err(MsgError::CollectiveMismatch("missing split communicator".into()))
            }
        };
        Ok(Comm { inner, rank: new_rank, coll_seq: Arc::new(AtomicU64::new(0)) })
    }

    /// Duplicate the communicator (fresh collective context, same group).
    pub fn dup(&self) -> Result<Comm> {
        self.split(0, self.rank as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_spmd;

    #[test]
    fn p2p_send_recv_with_matching() {
        run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 7, vec![1, 2, 3])?;
                comm.send_bytes(1, 9, vec![9])?;
            } else {
                // Receive tag 9 first even though it was sent second.
                let (src, tag, data) = comm.recv_bytes(Some(0), Some(9))?;
                assert_eq!((src, tag, data), (0, 9, vec![9]));
                let (_, _, data) = comm.recv_bytes(None, None)?;
                assert_eq!(data, vec![1, 2, 3]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn typed_p2p() {
        run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.send_slice(1, 0, &[1.5f64, -2.0])?;
            } else {
                let (_, _, v) = comm.recv_vec::<f64>(Some(0), None)?;
                assert_eq!(v, vec![1.5, -2.0]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn try_recv_nonblocking() {
        run_spmd(2, |comm| {
            if comm.rank() == 1 {
                assert!(comm.try_recv_bytes(None, None)?.is_none());
            }
            comm.barrier()?;
            if comm.rank() == 0 {
                comm.send_bytes(1, 0, vec![5])?;
            }
            comm.barrier()?;
            if comm.rank() == 1 {
                let got = comm.try_recv_bytes(Some(0), Some(0))?;
                assert_eq!(got.unwrap().2, vec![5]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn alltoall_exchanges_rows_for_columns() {
        run_spmd(4, |comm| {
            let me = comm.rank() as u8;
            let row: Vec<Vec<u8>> = (0..4).map(|d| vec![me, d as u8]).collect();
            let col = comm.alltoall_bytes(row)?;
            for (s, payload) in col.iter().enumerate() {
                assert_eq!(payload, &vec![s as u8, me]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        run_spmd(3, |comm| {
            for round in 0..50u8 {
                let row = vec![vec![round, comm.rank() as u8]; 3];
                let col = comm.alltoall_bytes(row)?;
                for (s, p) in col.iter().enumerate() {
                    assert_eq!(p, &vec![round, s as u8]);
                }
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn share_obj_distributes_arcs() {
        run_spmd(3, |comm| {
            let mine = Arc::new(comm.rank() * 10);
            let all = comm.share_obj(mine)?;
            let vals: Vec<usize> = all.iter().map(|a| **a).collect();
            assert_eq!(vals, vec![0, 10, 20]);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn split_forms_sub_groups() {
        run_spmd(4, |comm| {
            // Even ranks and odd ranks form two communicators.
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64)?;
            assert_eq!(sub.size(), 2);
            assert_eq!(sub.rank(), comm.rank() / 2);
            // The sub-communicator works for its own collectives.
            let col = sub.alltoall_bytes(vec![vec![comm.rank() as u8]; 2])?;
            let expected: Vec<Vec<u8>> =
                if comm.rank() % 2 == 0 { vec![vec![0], vec![2]] } else { vec![vec![1], vec![3]] };
            assert_eq!(col, expected);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn dup_gives_independent_context() {
        run_spmd(2, |comm| {
            let d = comm.dup()?;
            assert_eq!(d.size(), comm.size());
            assert_eq!(d.rank(), comm.rank());
            // Collectives on the dup don't disturb the parent.
            d.barrier()?;
            comm.barrier()?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn bad_rank_is_rejected() {
        run_spmd(2, |comm| {
            assert!(matches!(
                comm.send_bytes(5, 0, vec![]),
                Err(MsgError::BadRank { rank: 5, size: 2 })
            ));
            Ok(())
        })
        .unwrap();
    }
}
