//! Remote memory access windows — the `MPI_Win` / `MPI_Get` / `MPI_Put` /
//! `MPI_Accumulate` counterpart (paper §I: "Memory to memory exchange of
//! array elements are carried out either with MPI-2 remote memory addressing
//! (RMA) features or with … ARMCI").
//!
//! Each rank contributes a local byte region; any rank may read, write or
//! accumulate into any rank's region. `fence` separates access epochs.

use crate::comm::Comm;
use crate::error::{MsgError, Result};
use crate::wire::Scalar;
use parking_lot::RwLock;
use std::sync::Arc;

/// A window over every rank's exposed memory region.
///
/// ```
/// use drx_msg::{run_spmd, Window};
///
/// run_spmd(2, |comm| {
///     let win = Window::create(comm, vec![0u8; 4])?;
///     win.fence()?;
///     if comm.rank() == 0 {
///         win.put(1, 0, &[7, 7])?; // write into rank 1's region
///     }
///     win.fence()?;
///     if comm.rank() == 1 {
///         win.with_local(|bytes| assert_eq!(&bytes[..2], &[7, 7]))?;
///     }
///     Ok(())
/// })
/// .unwrap();
/// ```
pub struct Window {
    comm: Comm,
    parts: Vec<Arc<RwLock<Vec<u8>>>>,
}

impl Window {
    /// Collective: expose `local` bytes on every rank and assemble the
    /// window.
    pub fn create(comm: &Comm, local: Vec<u8>) -> Result<Window> {
        let mine = Arc::new(RwLock::new(local));
        let parts = comm.share_obj(mine)?;
        Ok(Window { comm: comm.clone(), parts })
    }

    /// Size of a rank's exposed region in bytes.
    pub fn size_of(&self, rank: usize) -> Result<u64> {
        self.part(rank).map(|p| p.read().len() as u64)
    }

    fn part(&self, rank: usize) -> Result<&Arc<RwLock<Vec<u8>>>> {
        self.parts.get(rank).ok_or(MsgError::BadRank { rank, size: self.comm.size() })
    }

    fn check_range(&self, rank: usize, offset: u64, len: u64, size: u64) -> Result<()> {
        if offset + len > size {
            Err(MsgError::WindowRange { rank, offset, len, size })
        } else {
            Ok(())
        }
    }

    /// Read `buf.len()` bytes from `rank`'s region at `offset`
    /// (`MPI_Get`).
    pub fn get(&self, rank: usize, offset: u64, buf: &mut [u8]) -> Result<()> {
        let part = self.part(rank)?.read();
        self.check_range(rank, offset, buf.len() as u64, part.len() as u64)?;
        buf.copy_from_slice(&part[offset as usize..offset as usize + buf.len()]);
        Ok(())
    }

    /// Write `data` into `rank`'s region at `offset` (`MPI_Put`).
    pub fn put(&self, rank: usize, offset: u64, data: &[u8]) -> Result<()> {
        let mut part = self.part(rank)?.write();
        let size = part.len() as u64;
        self.check_range(rank, offset, data.len() as u64, size)?;
        part[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Read-modify-write with a combining function, atomic with respect to
    /// other window operations (`MPI_Accumulate` with a custom op).
    pub fn accumulate_with<T: Scalar>(
        &self,
        rank: usize,
        offset: u64,
        values: &[T],
        combine: impl Fn(T, T) -> T,
    ) -> Result<()> {
        let mut part = self.part(rank)?.write();
        let len = (values.len() * T::SIZE) as u64;
        let size = part.len() as u64;
        self.check_range(rank, offset, len, size)?;
        let base = offset as usize;
        for (i, &v) in values.iter().enumerate() {
            let s = base + i * T::SIZE;
            let old = T::read_le(&part[s..s + T::SIZE]);
            let mut tmp = Vec::with_capacity(T::SIZE);
            combine(old, v).write_le(&mut tmp);
            part[s..s + T::SIZE].copy_from_slice(&tmp);
        }
        Ok(())
    }

    /// Byte-level read-modify-write, atomic with respect to other window
    /// operations: `combine(old_bytes, new_bytes)` replaces the region.
    /// Used by callers whose element types are not [`Scalar`]s (e.g. complex
    /// numbers).
    pub fn rmw_bytes(
        &self,
        rank: usize,
        offset: u64,
        data: &[u8],
        combine: impl FnOnce(&[u8], &[u8]) -> Vec<u8>,
    ) -> Result<()> {
        let mut part = self.part(rank)?.write();
        let size = part.len() as u64;
        self.check_range(rank, offset, data.len() as u64, size)?;
        let s = offset as usize;
        let merged = combine(&part[s..s + data.len()], data);
        if merged.len() != data.len() {
            return Err(MsgError::Invalid(format!(
                "rmw combine returned {} bytes for a {}-byte region",
                merged.len(),
                data.len()
            )));
        }
        part[s..s + data.len()].copy_from_slice(&merged);
        Ok(())
    }

    /// Element-wise sum accumulate of `f64`s (the common `MPI_SUM` case).
    pub fn accumulate_f64(&self, rank: usize, offset: u64, values: &[f64]) -> Result<()> {
        self.accumulate_with(rank, offset, values, |a, b| a + b)
    }

    /// Element-wise sum accumulate of `i64`s.
    pub fn accumulate_i64(&self, rank: usize, offset: u64, values: &[i64]) -> Result<()> {
        self.accumulate_with(rank, offset, values, |a, b| a + b)
    }

    /// Epoch separator: all window operations issued before the fence
    /// complete before any rank proceeds (`MPI_Win_fence`).
    pub fn fence(&self) -> Result<()> {
        // Thread-rank operations are synchronous, so the barrier alone
        // provides the epoch ordering.
        self.comm.barrier()
    }

    /// Run a closure with read access to the local region.
    pub fn with_local<R>(&self, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        Ok(f(&self.part(self.comm.rank())?.read()))
    }

    /// Run a closure with write access to the local region.
    pub fn with_local_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        Ok(f(&mut self.part(self.comm.rank())?.write()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_spmd;
    use crate::wire::{decode, encode};

    #[test]
    fn get_and_put_across_ranks() {
        run_spmd(3, |comm| {
            let local = vec![comm.rank() as u8; 8];
            let win = Window::create(comm, local)?;
            win.fence()?;
            // Everyone reads rank 2's region.
            let mut buf = [0u8; 8];
            win.get(2, 0, &mut buf)?;
            assert_eq!(buf, [2; 8]);
            // Rank 0 writes into rank 1's region.
            if comm.rank() == 0 {
                win.put(1, 4, &[9, 9])?;
            }
            win.fence()?;
            if comm.rank() == 1 {
                win.with_local(|l| assert_eq!(l, &[1, 1, 1, 1, 9, 9, 1, 1]))?;
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn concurrent_accumulates_are_atomic() {
        run_spmd(4, |comm| {
            let local = encode(&[0.0f64; 4]);
            let win = Window::create(comm, local)?;
            win.fence()?;
            // Every rank adds 1.0 to every slot of rank 0, 100 times.
            for _ in 0..100 {
                win.accumulate_f64(0, 0, &[1.0; 4])?;
            }
            win.fence()?;
            if comm.rank() == 0 {
                win.with_local(|l| {
                    let vals = decode::<f64>(l);
                    assert_eq!(vals, vec![400.0; 4]);
                })?;
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn range_checks() {
        run_spmd(2, |comm| {
            let win = Window::create(comm, vec![0u8; 4])?;
            let mut buf = [0u8; 8];
            assert!(matches!(win.get(1, 0, &mut buf), Err(MsgError::WindowRange { .. })));
            assert!(matches!(win.put(0, 3, &[1, 1]), Err(MsgError::WindowRange { .. })));
            assert!(win.get(5, 0, &mut buf).is_err());
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn unequal_window_sizes() {
        run_spmd(2, |comm| {
            let win = Window::create(comm, vec![0u8; (comm.rank() + 1) * 10])?;
            assert_eq!(win.size_of(0)?, 10);
            assert_eq!(win.size_of(1)?, 20);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn accumulate_i64_and_custom_op() {
        run_spmd(2, |comm| {
            let win = Window::create(comm, encode(&[10i64, 20]))?;
            win.fence()?;
            if comm.rank() == 1 {
                win.accumulate_i64(0, 0, &[5, -5])?;
                win.accumulate_with(0, 8, &[100i64], |a, b| a.max(b))?;
            }
            win.fence()?;
            if comm.rank() == 0 {
                win.with_local(|l| assert_eq!(decode::<i64>(l), vec![15, 100]))?;
            }
            Ok(())
        })
        .unwrap();
    }
}
