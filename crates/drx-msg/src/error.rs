//! Error type for the message-passing runtime.

use std::fmt;

/// Errors surfaced by the SPMD runtime, collectives, RMA and parallel I/O.
#[derive(Debug)]
pub enum MsgError {
    /// A peer rank panicked; all blocking operations abort with this error
    /// instead of deadlocking.
    Poisoned,
    /// A rank index was out of range for the communicator.
    BadRank { rank: usize, size: usize },
    /// Mismatched collective call (e.g. different payload sizes where equal
    /// sizes are required).
    CollectiveMismatch(String),
    /// Buffer size did not match the datatype/view.
    BufferSize { expected: usize, got: usize },
    /// Invalid datatype construction.
    BadDatatype(String),
    /// Underlying parallel file system error.
    Pfs(drx_pfs::PfsError),
    /// Window access out of bounds.
    WindowRange { rank: usize, offset: u64, len: u64, size: u64 },
    /// Generic invalid argument.
    Invalid(String),
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::Poisoned => write!(f, "a peer rank panicked; communicator is poisoned"),
            MsgError::BadRank { rank, size } => write!(f, "rank {rank} out of range (size {size})"),
            MsgError::CollectiveMismatch(why) => write!(f, "collective mismatch: {why}"),
            MsgError::BufferSize { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected} bytes, got {got}")
            }
            MsgError::BadDatatype(why) => write!(f, "bad datatype: {why}"),
            MsgError::Pfs(e) => write!(f, "PFS error: {e}"),
            MsgError::WindowRange { rank, offset, len, size } => {
                write!(
                    f,
                    "window access [{offset}, {offset}+{len}) on rank {rank} exceeds size {size}"
                )
            }
            MsgError::Invalid(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for MsgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsgError::Pfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drx_pfs::PfsError> for MsgError {
    fn from(e: drx_pfs::PfsError) -> Self {
        MsgError::Pfs(e)
    }
}

pub type Result<T> = std::result::Result<T, MsgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MsgError::Poisoned.to_string().contains("poisoned"));
        assert!(MsgError::BadRank { rank: 5, size: 4 }.to_string().contains("rank 5"));
        let e: MsgError = drx_pfs::PfsError::NoSuchFile("x".into()).into();
        assert!(e.to_string().contains("x"));
    }
}
