//! SPMD launcher: run one closure on `n` rank-threads, the counterpart of
//! `mpiexec -n <n>` for the thread-rank runtime.

use crate::comm::Comm;
use crate::error::{MsgError, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f` on `n` ranks and collect the per-rank results in rank order.
///
/// * If a rank panics, the world communicator is poisoned so blocked peers
///   abort with [`MsgError::Poisoned`] instead of deadlocking, and the panic
///   is reported as an error naming the rank.
/// * If a rank returns `Err`, the communicator is also poisoned (the
///   `MPI_Abort` discipline) and the first error in rank order is returned.
pub fn run_spmd<R, F>(n: usize, f: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(&Comm) -> Result<R> + Send + Sync,
{
    if n == 0 {
        return Err(MsgError::Invalid("need at least one rank".into()));
    }
    let comms = Comm::new_group(n);
    let world = comms[0].inner().clone();
    let f = &f;
    let results: Vec<std::thread::Result<Result<R>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let world = world.clone();
                scope.spawn(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    match &out {
                        Err(_) | Ok(Err(_)) => world.poison(),
                        Ok(Ok(_)) => {}
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scoped join cannot fail")).collect()
    });

    let mut out = Vec::with_capacity(n);
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(Ok(v)) => out.push(v),
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                return Err(MsgError::Invalid(format!("rank {rank} panicked: {detail}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_results_in_rank_order() {
        let out = run_spmd(4, |comm| Ok(comm.rank() * 2)).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn zero_ranks_is_an_error() {
        assert!(run_spmd(0, |_| Ok(())).is_err());
    }

    #[test]
    fn single_rank_works() {
        let out = run_spmd(1, |comm| {
            comm.barrier()?;
            Ok(comm.size())
        })
        .unwrap();
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn panic_in_one_rank_poisons_blocked_peers() {
        let err = run_spmd(2, |comm| -> Result<()> {
            if comm.rank() == 0 {
                panic!("deliberate test panic");
            }
            // Rank 1 blocks in a collective that can never complete; the
            // poison must wake it.
            match comm.barrier() {
                Err(MsgError::Poisoned) => Ok(()),
                other => panic!("expected Poisoned, got {other:?}"),
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("rank 0 panicked"));
    }

    #[test]
    fn error_return_aborts_the_world() {
        let err = run_spmd(2, |comm| {
            if comm.rank() == 0 {
                return Err(MsgError::Invalid("early exit".into()));
            }
            // Rank 1 would block forever without the abort discipline.
            match comm.recv_bytes(Some(0), None) {
                Err(MsgError::Poisoned) => Ok(()),
                other => panic!("expected Poisoned, got {other:?}"),
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("early exit"));
    }
}
