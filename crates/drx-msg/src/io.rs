//! Parallel file I/O with file views — the MPI-IO counterpart
//! (`MPI_File_open`, `MPI_File_set_view`, `MPI_File_read`/`_read_all`, …).
//!
//! Independent reads/writes translate buffer positions through the rank's
//! file view (a [`Datatype`] tiled from a displacement) and issue one PFS
//! request per absolute extent. Collective `read_all`/`write_all` implement
//! genuine **two-phase I/O**: the aggregate byte range of all ranks is
//! partitioned into per-aggregator domains, each aggregator services its
//! domain with large contiguous PFS requests, and data is redistributed with
//! an all-to-all — the request-coalescing behaviour experiment E4 measures
//! against independent I/O.

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::error::{MsgError, Result};
use crate::wire::{decode, encode};
use drx_pfs::{Pfs, PfsFile};

/// A parallel file handle bound to a communicator.
pub struct MsgFile {
    comm: Comm,
    file: PfsFile,
    disp: u64,
    /// `None` = identity view (byte offsets pass through).
    view: Option<Datatype>,
}

impl MsgFile {
    /// Collective open. With `create`, rank 0 creates the file if missing;
    /// the call errors on every rank if the file is absent and `create` is
    /// false.
    pub fn open(comm: &Comm, pfs: &Pfs, name: &str, create: bool) -> Result<MsgFile> {
        if comm.rank() == 0 && create {
            let _ = pfs.open_or_create(name)?;
        }
        comm.barrier()?;
        let file = pfs.open(name)?;
        Ok(MsgFile { comm: comm.clone(), file, disp: 0, view: None })
    }

    /// Set this rank's file view (`MPI_File_set_view`): logical data bytes
    /// map into the file through `filetype` tiled from byte displacement
    /// `disp`. Pass `None` to restore the identity view.
    pub fn set_view(&mut self, disp: u64, filetype: Option<Datatype>) {
        self.disp = disp;
        self.view = filetype;
    }

    /// Whether a non-identity file view is currently set.
    pub fn has_view(&self) -> bool {
        self.view.is_some()
    }

    /// The communicator this file was opened on.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Logical file size in bytes.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collective resize (`MPI_File_set_size`).
    pub fn set_size(&self, size: u64) -> Result<()> {
        if self.comm.rank() == 0 {
            self.file.set_len(size)?;
        }
        self.comm.barrier()
    }

    /// Absolute `(offset, len)` file extents for a logical `[data_offset,
    /// data_offset + len)` range through this rank's view.
    fn absolute(&self, data_offset: u64, len: u64) -> Vec<(u64, u64)> {
        match &self.view {
            None => {
                if len == 0 {
                    Vec::new()
                } else {
                    vec![(self.disp + data_offset, len)]
                }
            }
            Some(ft) => ft
                .absolute_ranges(data_offset, len)
                .into_iter()
                .map(|(o, l)| (o + self.disp, l))
                .collect(),
        }
    }

    /// Independent read of `buf.len()` view bytes starting at logical view
    /// offset `data_offset`.
    pub fn read_at(&self, data_offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut pos = 0usize;
        for (off, len) in self.absolute(data_offset, buf.len() as u64) {
            self.file.read_at(off, &mut buf[pos..pos + len as usize])?;
            pos += len as usize;
        }
        debug_assert_eq!(pos, buf.len());
        Ok(())
    }

    /// Vectored independent read of **absolute** byte extents, bypassing
    /// the view. `buf` receives the concatenation of the extents; requests
    /// go through the PFS I/O worker pool, so extents landing on distinct
    /// stripe servers are serviced concurrently.
    pub fn read_extents(&self, extents: &[(u64, u64)], buf: &mut [u8]) -> Result<()> {
        self.file.read_extents_into(extents, buf)?;
        Ok(())
    }

    /// Vectored independent write of absolute byte extents (see
    /// [`MsgFile::read_extents`]).
    pub fn write_extents(&self, extents: &[(u64, u64)], data: &[u8]) -> Result<()> {
        self.file.write_extents(extents, data)?;
        Ok(())
    }

    /// Independent write through the view.
    pub fn write_at(&self, data_offset: u64, data: &[u8]) -> Result<()> {
        let mut pos = 0usize;
        for (off, len) in self.absolute(data_offset, data.len() as u64) {
            self.file.write_at(off, &data[pos..pos + len as usize])?;
            pos += len as usize;
        }
        debug_assert_eq!(pos, data.len());
        Ok(())
    }

    /// Collective two-phase read (`MPI_File_read_all`). Every rank must
    /// participate; ranks may request disjoint (even empty) view ranges.
    pub fn read_all(&self, data_offset: u64, buf: &mut [u8]) -> Result<()> {
        let ranges = self.absolute(data_offset, buf.len() as u64);
        let domains = self.exchange_ranges(&ranges)?;
        let Some((global_lo, global_hi, per, all_ranges)) = domains else {
            return Ok(()); // nobody asked for anything
        };
        let size = self.comm.size();
        let me = self.comm.rank();
        // Phase 1: service my aggregator domain with one large read.
        let my_dom = domain_of(global_lo, global_hi, per, me);
        let mut dom_buf = Vec::new();
        if my_dom.1 > my_dom.0 {
            // Clip to what was actually requested (the domain is within
            // [global lo, global hi) by construction).
            dom_buf = self.file.read_vec(my_dom.0, (my_dom.1 - my_dom.0) as usize)?;
        }
        // Phase 2: ship each rank the pieces of its request inside my domain.
        let mut to_each: Vec<Vec<u8>> = vec![Vec::new(); size];
        for (rank, ranges) in all_ranges.iter().enumerate() {
            for &(off, len) in ranges {
                let lo = off.max(my_dom.0);
                let hi = (off + len).min(my_dom.1);
                if lo < hi {
                    let slice = &dom_buf[(lo - my_dom.0) as usize..(hi - my_dom.0) as usize];
                    to_each[rank].extend_from_slice(&encode(&[lo, hi - lo]));
                    to_each[rank].extend_from_slice(slice);
                }
            }
        }
        let received = self.comm.alltoallv_bytes(to_each)?;
        // Assemble: map absolute offsets back to buffer positions.
        let placer = RangePlacer::new(&ranges);
        for msg in received {
            let mut cursor = 0usize;
            while cursor < msg.len() {
                let header: Vec<u64> = decode(&msg[cursor..cursor + 16]);
                let (abs, len) = (header[0], header[1] as usize);
                cursor += 16;
                let bytes = &msg[cursor..cursor + len];
                cursor += len;
                placer.place(abs, bytes, buf)?;
            }
        }
        Ok(())
    }

    /// Collective two-phase write (`MPI_File_write_all`).
    pub fn write_all(&self, data_offset: u64, data: &[u8]) -> Result<()> {
        let ranges = self.absolute(data_offset, data.len() as u64);
        let domains = self.exchange_ranges(&ranges)?;
        let Some((global_lo, global_hi, per, _all_ranges)) = domains else {
            return Ok(());
        };
        let size = self.comm.size();
        // Phase 1: route my data pieces to the owning aggregators.
        let mut to_each: Vec<Vec<u8>> = vec![Vec::new(); size];
        let mut pos = 0u64;
        for &(off, len) in &ranges {
            let mut covered = 0u64;
            while covered < len {
                let abs = off + covered;
                let agg = ((abs - global_lo) / per) as usize;
                let dom = domain_of(global_lo, global_hi, per, agg);
                let take = (dom.1 - abs).min(len - covered);
                to_each[agg].extend_from_slice(&encode(&[abs, take]));
                to_each[agg].extend_from_slice(
                    &data[(pos + covered) as usize..(pos + covered + take) as usize],
                );
                covered += take;
            }
            pos += len;
        }
        let received = self.comm.alltoallv_bytes(to_each)?;
        // Phase 2: coalesce and write my domain with few large requests.
        let mut pieces: Vec<(u64, Vec<u8>)> = Vec::new();
        for msg in received {
            let mut cursor = 0usize;
            while cursor < msg.len() {
                let header: Vec<u64> = decode(&msg[cursor..cursor + 16]);
                let (abs, len) = (header[0], header[1] as usize);
                cursor += 16;
                pieces.push((abs, msg[cursor..cursor + len].to_vec()));
                cursor += len;
            }
        }
        pieces.sort_by_key(|&(abs, _)| abs);
        let mut run_start: Option<u64> = None;
        let mut run: Vec<u8> = Vec::new();
        for (abs, bytes) in pieces {
            match run_start {
                Some(start) if start + run.len() as u64 == abs => run.extend_from_slice(&bytes),
                Some(start) => {
                    self.file.write_at(start, &run)?;
                    run_start = Some(abs);
                    run = bytes;
                    let _ = start;
                }
                None => {
                    run_start = Some(abs);
                    run = bytes;
                }
            }
        }
        if let Some(start) = run_start {
            self.file.write_at(start, &run)?;
        }
        // Writes must be visible before any rank proceeds.
        self.comm.barrier()
    }

    /// Allgather everyone's absolute ranges; returns `(global_lo, global_hi,
    /// bytes_per_domain, ranges_by_rank)`, or `None` when all ranks
    /// requested nothing.
    #[allow(clippy::type_complexity)]
    fn exchange_ranges(
        &self,
        mine: &[(u64, u64)],
    ) -> Result<Option<(u64, u64, u64, Vec<Vec<(u64, u64)>>)>> {
        let flat: Vec<u64> = mine.iter().flat_map(|&(o, l)| [o, l]).collect();
        let all = self.comm.allgather_vec::<u64>(&flat)?;
        let all_ranges: Vec<Vec<(u64, u64)>> =
            all.into_iter().map(|v| v.chunks_exact(2).map(|c| (c[0], c[1])).collect()).collect();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for ranges in &all_ranges {
            for &(o, l) in ranges {
                if l > 0 {
                    lo = lo.min(o);
                    hi = hi.max(o + l);
                }
            }
        }
        if lo >= hi {
            return Ok(None);
        }
        let per = (hi - lo).div_ceil(self.comm.size() as u64).max(1);
        Ok(Some((lo, hi, per, all_ranges)))
    }
}

/// Aggregator domain `agg`: `[lo + agg·per, lo + (agg+1)·per)`, clipped to
/// the global high end (trailing aggregators can own empty domains).
fn domain_of(global_lo: u64, global_hi: u64, per: u64, agg: usize) -> (u64, u64) {
    let start = (global_lo + per * agg as u64).min(global_hi);
    (start, (start + per).min(global_hi))
}

/// Maps absolute file offsets back to positions in a request buffer whose
/// layout is the concatenation of the rank's view extents.
struct RangePlacer<'a> {
    ranges: &'a [(u64, u64)],
    /// Buffer position where each range starts.
    prefix: Vec<u64>,
}

impl<'a> RangePlacer<'a> {
    fn new(ranges: &'a [(u64, u64)]) -> Self {
        let mut prefix = Vec::with_capacity(ranges.len());
        let mut acc = 0u64;
        for &(_, l) in ranges {
            prefix.push(acc);
            acc += l;
        }
        RangePlacer { ranges, prefix }
    }

    fn place(&self, abs: u64, bytes: &[u8], buf: &mut [u8]) -> Result<()> {
        // The piece lies within exactly one of our ranges (pieces are
        // produced by intersecting one range with one domain).
        let idx = self.ranges.partition_point(|&(o, _)| o <= abs);
        if idx == 0 {
            return Err(MsgError::Invalid(format!("stray piece at {abs}")));
        }
        let (off, len) = self.ranges[idx - 1];
        if abs + bytes.len() as u64 > off + len {
            return Err(MsgError::Invalid(format!(
                "piece [{abs}, +{}) overruns range [{off}, +{len})",
                bytes.len()
            )));
        }
        let start = (self.prefix[idx - 1] + (abs - off)) as usize;
        buf[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_spmd;
    use drx_pfs::Pfs;

    fn pfs() -> Pfs {
        Pfs::memory(4, 64).unwrap()
    }

    #[test]
    fn open_requires_existing_unless_create() {
        let fs = pfs();
        run_spmd(2, |comm| {
            assert!(MsgFile::open(comm, &fs, "missing", false).is_err());
            let f = MsgFile::open(comm, &fs, "made", true)?;
            assert_eq!(f.len(), 0);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn independent_io_through_identity_view() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let f = MsgFile::open(comm, &fs, "f", true)?;
            // Each rank writes its own 100-byte region.
            let me = comm.rank() as u8;
            f.write_at(comm.rank() as u64 * 100, &[me; 100])?;
            comm.barrier()?;
            let mut buf = vec![0u8; 100];
            let peer = 1 - comm.rank();
            f.read_at(peer as u64 * 100, &mut buf)?;
            assert!(buf.iter().all(|&b| b == peer as u8));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn view_maps_interleaved_blocks() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let mut f = MsgFile::open(comm, &fs, "f", true)?;
            // File of 8 blocks of 4 bytes; rank r owns blocks r, r+2, r+4, r+6.
            let base = Datatype::contiguous(4);
            let displs: Vec<usize> = (0..4).map(|i| comm.rank() + 2 * i).collect();
            let ft = Datatype::indexed(&[1; 4], &displs, &base)?;
            f.set_view(0, Some(ft));
            let me = comm.rank() as u8;
            f.write_at(0, &[me; 16])?;
            comm.barrier()?;
            // Raw check: blocks alternate 0,1,0,1… .
            f.set_view(0, None);
            let mut raw = vec![9u8; 32];
            f.read_at(0, &mut raw)?;
            for b in 0..8 {
                let expect = (b % 2) as u8;
                assert!(raw[b * 4..(b + 1) * 4].iter().all(|&x| x == expect), "block {b}");
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn collective_read_matches_independent() {
        let fs = pfs();
        // Seed a 1 KiB file with a known pattern.
        let seed = fs.create("f").unwrap();
        let pattern: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        seed.write_at(0, &pattern).unwrap();
        run_spmd(4, |comm| {
            let mut f = MsgFile::open(comm, &fs, "f", false)?;
            // Rank r owns 4 interleaved 32-byte blocks: r, r+4, r+8, r+12.
            let base = Datatype::contiguous(32);
            let displs: Vec<usize> = (0..4).map(|i| comm.rank() + 4 * i).collect();
            f.set_view(0, Some(Datatype::indexed(&[1; 4], &displs, &base)?));
            let mut coll = vec![0u8; 128];
            f.read_all(0, &mut coll)?;
            let mut ind = vec![0u8; 128];
            f.read_at(0, &mut ind)?;
            assert_eq!(coll, ind);
            // Spot-check content against the pattern.
            for (i, d) in displs.iter().enumerate() {
                assert_eq!(&coll[i * 32..(i + 1) * 32], &pattern[d * 32..(d + 1) * 32]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn collective_write_round_trips() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let mut f = MsgFile::open(comm, &fs, "f", true)?;
            let base = Datatype::contiguous(16);
            let displs: Vec<usize> = (0..8).map(|i| comm.rank() + 4 * i).collect();
            f.set_view(0, Some(Datatype::indexed(&[1; 8], &displs, &base)?));
            let me = comm.rank() as u8;
            let data: Vec<u8> = (0..128u32).map(|i| me.wrapping_add(i as u8)).collect();
            f.write_all(0, &data)?;
            // Read back collectively and compare.
            let mut back = vec![0u8; 128];
            f.read_all(0, &mut back)?;
            assert_eq!(back, data);
            // And the raw file interleaves ranks 0..4 in 16-byte blocks.
            f.set_view(0, None);
            let mut raw = vec![0u8; 512];
            f.read_at(0, &mut raw)?;
            for b in 0..32 {
                assert_eq!(raw[b * 16], (b % 4) as u8 + ((b / 4) * 16) as u8);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn collective_with_empty_participants() {
        let fs = pfs();
        let seed = fs.create("f").unwrap();
        seed.write_at(0, &[7u8; 64]).unwrap();
        run_spmd(3, |comm| {
            let f = MsgFile::open(comm, &fs, "f", false)?;
            // Only rank 1 reads; others participate with empty buffers.
            let mut buf = if comm.rank() == 1 { vec![0u8; 64] } else { Vec::new() };
            f.read_all(0, &mut buf)?;
            if comm.rank() == 1 {
                assert!(buf.iter().all(|&b| b == 7));
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn all_empty_collective_is_a_noop() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let f = MsgFile::open(comm, &fs, "f", true)?;
            f.read_all(0, &mut [])?;
            f.write_all(0, &[])?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn collective_uses_fewer_pfs_requests_than_independent() {
        // The point of two-phase I/O: interleaved small blocks coalesce.
        let fs = Pfs::memory(2, 1 << 20).unwrap(); // one huge stripe: isolate coalescing
        let seed = fs.create("f").unwrap();
        seed.write_at(0, &vec![1u8; 64 * 1024]).unwrap();
        let blocks = 64usize;
        let bs = 512usize;

        fs.reset_stats();
        run_spmd(4, |comm| {
            let mut f = MsgFile::open(comm, &fs, "f", false)?;
            let base = Datatype::contiguous(bs as u64);
            let displs: Vec<usize> = (0..blocks / 4).map(|i| comm.rank() + 4 * i).collect();
            f.set_view(0, Some(Datatype::indexed(&[1; 16], &displs, &base)?));
            let mut buf = vec![0u8; bs * blocks / 4];
            f.read_at(0, &mut buf)?; // independent
            Ok(())
        })
        .unwrap();
        let independent_reqs = fs.stats().total_requests();

        fs.reset_stats();
        run_spmd(4, |comm| {
            let mut f = MsgFile::open(comm, &fs, "f", false)?;
            let base = Datatype::contiguous(bs as u64);
            let displs: Vec<usize> = (0..blocks / 4).map(|i| comm.rank() + 4 * i).collect();
            f.set_view(0, Some(Datatype::indexed(&[1; 16], &displs, &base)?));
            let mut buf = vec![0u8; bs * blocks / 4];
            f.read_all(0, &mut buf)?; // collective
            Ok(())
        })
        .unwrap();
        let collective_reqs = fs.stats().total_requests();

        assert!(
            collective_reqs < independent_reqs,
            "two-phase ({collective_reqs} requests) should beat independent ({independent_reqs})"
        );
    }

    #[test]
    fn collective_io_on_a_split_communicator() {
        // The paper's API takes a "group communicator": only a subset of the
        // world may drive a file's collective I/O. Even ranks do collective
        // writes on their sub-communicator while odd ranks are busy
        // elsewhere.
        let fs = pfs();
        run_spmd(4, |comm| {
            let sub = comm.split((comm.rank() % 2) as u64, comm.rank() as u64)?;
            if comm.rank() % 2 == 0 {
                let mut f = MsgFile::open(&sub, &fs, "subio", true)?;
                let base = Datatype::contiguous(64);
                let displs: Vec<usize> = (0..4).map(|i| sub.rank() + 2 * i).collect();
                f.set_view(0, Some(Datatype::indexed(&[1; 4], &displs, &base)?));
                let data = vec![sub.rank() as u8 + 1; 256];
                f.write_all(0, &data)?;
                let mut back = vec![0u8; 256];
                f.read_all(0, &mut back)?;
                assert_eq!(back, data);
            } else {
                // Odd ranks never touch the file; they synchronize among
                // themselves only.
                sub.barrier()?;
            }
            comm.barrier()?;
            // Everyone can now verify the interleaved blocks independently.
            let f = fs.open("subio").unwrap();
            for b in 0..8 {
                let block = f.read_vec(b * 64, 64).unwrap();
                assert!(block.iter().all(|&x| x == (b % 2) as u8 + 1), "block {b}");
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn set_size_is_collective() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let f = MsgFile::open(comm, &fs, "f", true)?;
            f.set_size(4096)?;
            assert_eq!(f.len(), 4096);
            Ok(())
        })
        .unwrap();
    }
}
