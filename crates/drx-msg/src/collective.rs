//! Collective operations, all built on the rendezvous exchange primitive of
//! [`Comm`]: barrier, broadcast, gather/allgather, scatter, reductions and
//! vector all-to-all — the subset of MPI-2 collectives DRX-MP uses.

use crate::comm::{Comm, Payload};
use crate::error::{MsgError, Result};
use crate::wire::{decode, encode, ReduceOp, Scalar};

impl Comm {
    /// Block until every rank of the communicator has arrived.
    pub fn barrier(&self) -> Result<()> {
        let row = vec![Payload::Bytes(Vec::new()); self.size()];
        self.exchange(row)?;
        Ok(())
    }

    /// Broadcast `data` from `root`; every rank returns the root's bytes.
    pub fn bcast_bytes(&self, root: usize, data: Option<Vec<u8>>) -> Result<Vec<u8>> {
        if root >= self.size() {
            return Err(MsgError::BadRank { rank: root, size: self.size() });
        }
        let row = if self.rank() == root {
            let d = data.ok_or_else(|| {
                MsgError::CollectiveMismatch("root must supply broadcast data".into())
            })?;
            vec![Payload::Bytes(d); self.size()]
        } else {
            vec![Payload::Bytes(Vec::new()); self.size()]
        };
        let col = self.exchange(row)?;
        col.into_iter().nth(root).expect("root column").bytes()
    }

    /// Typed broadcast of a scalar vector.
    pub fn bcast_vec<T: Scalar>(&self, root: usize, data: Option<&[T]>) -> Result<Vec<T>> {
        let bytes = self.bcast_bytes(root, data.map(encode))?;
        Ok(decode(&bytes))
    }

    /// Gather every rank's bytes at `root` (others receive an empty vec).
    pub fn gather_bytes(&self, root: usize, data: Vec<u8>) -> Result<Vec<Vec<u8>>> {
        if root >= self.size() {
            return Err(MsgError::BadRank { rank: root, size: self.size() });
        }
        let mut row = vec![Payload::Bytes(Vec::new()); self.size()];
        row[root] = Payload::Bytes(data);
        let col = self.exchange(row)?;
        if self.rank() == root {
            col.into_iter().map(Payload::bytes).collect()
        } else {
            Ok(Vec::new())
        }
    }

    /// All-gather: every rank receives every rank's bytes, indexed by rank.
    /// Contributions may have different lengths (the `MPI_Allgatherv`
    /// behaviour).
    pub fn allgather_bytes(&self, data: Vec<u8>) -> Result<Vec<Vec<u8>>> {
        let row = vec![Payload::Bytes(data); self.size()];
        self.exchange(row)?.into_iter().map(Payload::bytes).collect()
    }

    /// Typed all-gather of scalar vectors.
    pub fn allgather_vec<T: Scalar>(&self, data: &[T]) -> Result<Vec<Vec<T>>> {
        Ok(self.allgather_bytes(encode(data))?.iter().map(|b| decode(b)).collect())
    }

    /// Scatter: `root` supplies one byte vector per rank; each rank receives
    /// its own.
    pub fn scatter_bytes(&self, root: usize, parts: Option<Vec<Vec<u8>>>) -> Result<Vec<u8>> {
        if root >= self.size() {
            return Err(MsgError::BadRank { rank: root, size: self.size() });
        }
        let row = if self.rank() == root {
            let parts = parts.ok_or_else(|| {
                MsgError::CollectiveMismatch("root must supply scatter parts".into())
            })?;
            if parts.len() != self.size() {
                return Err(MsgError::CollectiveMismatch(format!(
                    "scatter needs {} parts, got {}",
                    self.size(),
                    parts.len()
                )));
            }
            parts.into_iter().map(Payload::Bytes).collect()
        } else {
            vec![Payload::Bytes(Vec::new()); self.size()]
        };
        let col = self.exchange(row)?;
        col.into_iter().nth(root).expect("root column").bytes()
    }

    /// All-reduce over `f64` vectors (element-wise, deterministic rank-order
    /// fold). All contributions must have equal length.
    pub fn allreduce_f64(&self, data: &[f64], op: ReduceOp) -> Result<Vec<f64>> {
        let all = self.allgather_vec::<f64>(data)?;
        fold_equal_len(all, op, ReduceOp::fold_f64)
    }

    /// All-reduce over `u64` vectors.
    pub fn allreduce_u64(&self, data: &[u64], op: ReduceOp) -> Result<Vec<u64>> {
        let all = self.allgather_vec::<u64>(data)?;
        fold_equal_len(all, op, ReduceOp::fold_u64)
    }

    /// All-reduce over `i64` vectors.
    pub fn allreduce_i64(&self, data: &[i64], op: ReduceOp) -> Result<Vec<i64>> {
        let all = self.allgather_vec::<i64>(data)?;
        fold_equal_len(all, op, ReduceOp::fold_i64)
    }

    /// Reduce at `root` over `f64` vectors; non-roots receive an empty vec.
    pub fn reduce_f64(&self, root: usize, data: &[f64], op: ReduceOp) -> Result<Vec<f64>> {
        let all = self.gather_vecs_at::<f64>(root, data)?;
        if self.rank() == root {
            fold_equal_len(all, op, ReduceOp::fold_f64)
        } else {
            Ok(Vec::new())
        }
    }

    fn gather_vecs_at<T: Scalar>(&self, root: usize, data: &[T]) -> Result<Vec<Vec<T>>> {
        Ok(self.gather_bytes(root, encode(data))?.iter().map(|b| decode(b)).collect())
    }

    /// Vector all-to-all: `to_each[d]` goes to rank `d`; returns what each
    /// source sent here, indexed by source (the `MPI_Alltoallv` workhorse of
    /// two-phase collective I/O).
    pub fn alltoallv_bytes(&self, to_each: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        self.alltoall_bytes(to_each)
    }

    /// Exclusive prefix sum of a `u64` (rank r receives the sum over ranks
    /// `< r`) — handy for offset assignment.
    pub fn exscan_u64(&self, value: u64) -> Result<u64> {
        let all = self.allgather_vec::<u64>(&[value])?;
        Ok(all[..self.rank()].iter().map(|v| v[0]).sum())
    }

    /// Inclusive prefix reduction over `u64` vectors (`MPI_Scan`): rank r
    /// receives `op` folded over the contributions of ranks `0..=r`.
    pub fn scan_u64(&self, data: &[u64], op: ReduceOp) -> Result<Vec<u64>> {
        let all = self.allgather_vec::<u64>(data)?;
        let first = all.first().map(|v| v.len()).unwrap_or(0);
        if all.iter().any(|v| v.len() != first) {
            return Err(MsgError::CollectiveMismatch("scan contributions differ in length".into()));
        }
        let mut acc = all[0].clone();
        for v in &all[1..=self.rank()] {
            op.fold_u64(&mut acc, v);
        }
        Ok(acc)
    }

    /// Gather with per-rank counts returned alongside (`MPI_Gatherv`-style
    /// convenience): root receives `(data, counts)` where `data` is the
    /// rank-ordered concatenation.
    pub fn gatherv_bytes(&self, root: usize, data: Vec<u8>) -> Result<(Vec<u8>, Vec<usize>)> {
        let parts = self.gather_bytes(root, data)?;
        let counts: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        Ok((parts.concat(), counts))
    }
}

fn fold_equal_len<T: Scalar>(
    mut all: Vec<Vec<T>>,
    op: ReduceOp,
    fold: impl Fn(ReduceOp, &mut [T], &[T]),
) -> Result<Vec<T>> {
    let first = all.first().map(|v| v.len()).unwrap_or(0);
    if all.iter().any(|v| v.len() != first) {
        return Err(MsgError::CollectiveMismatch("reduce contributions differ in length".into()));
    }
    let mut acc = all.remove(0);
    for v in &all {
        fold(op, &mut acc, v);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_spmd;

    #[test]
    fn bcast_from_each_root() {
        run_spmd(3, |comm| {
            for root in 0..3 {
                let data = if comm.rank() == root { Some(vec![root as u8; 4]) } else { None };
                let got = comm.bcast_bytes(root, data)?;
                assert_eq!(got, vec![root as u8; 4]);
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn gather_collects_at_root_only() {
        run_spmd(4, |comm| {
            let got = comm.gather_bytes(2, vec![comm.rank() as u8])?;
            if comm.rank() == 2 {
                assert_eq!(got, vec![vec![0], vec![1], vec![2], vec![3]]);
            } else {
                assert!(got.is_empty());
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn allgather_variable_lengths() {
        run_spmd(3, |comm| {
            let data = vec![comm.rank() as u8; comm.rank() + 1];
            let got = comm.allgather_bytes(data)?;
            assert_eq!(got, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn scatter_distributes_parts() {
        run_spmd(3, |comm| {
            let parts =
                if comm.rank() == 0 { Some(vec![vec![10], vec![20, 20], vec![30]]) } else { None };
            let got = comm.scatter_bytes(0, parts)?;
            let expected = match comm.rank() {
                0 => vec![10],
                1 => vec![20, 20],
                _ => vec![30],
            };
            assert_eq!(got, expected);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn scatter_wrong_part_count_errors() {
        let err = run_spmd(2, |comm| {
            let parts = if comm.rank() == 0 { Some(vec![vec![1]]) } else { None };
            if comm.rank() == 0 {
                comm.scatter_bytes(0, parts).map(|_| ())
            } else {
                // Peer aborts with poison once root errors out.
                match comm.scatter_bytes(0, None) {
                    Err(_) => Ok(()),
                    Ok(_) => panic!("expected failure"),
                }
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("scatter"));
    }

    #[test]
    fn reductions() {
        run_spmd(4, |comm| {
            let r = comm.rank() as f64;
            let sum = comm.allreduce_f64(&[r, 2.0 * r], ReduceOp::Sum)?;
            assert_eq!(sum, vec![6.0, 12.0]);
            let max = comm.allreduce_f64(&[r], ReduceOp::Max)?;
            assert_eq!(max, vec![3.0]);
            let min = comm.allreduce_u64(&[comm.rank() as u64 + 5], ReduceOp::Min)?;
            assert_eq!(min, vec![5]);
            let at_root = comm.reduce_f64(1, &[1.0], ReduceOp::Sum)?;
            if comm.rank() == 1 {
                assert_eq!(at_root, vec![4.0]);
            } else {
                assert!(at_root.is_empty());
            }
            let i = comm.allreduce_i64(&[-(comm.rank() as i64)], ReduceOp::Min)?;
            assert_eq!(i, vec![-3]);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn exscan_prefix_sums() {
        run_spmd(4, |comm| {
            let got = comm.exscan_u64((comm.rank() + 1) as u64)?;
            // Values 1,2,3,4 → exclusive prefix 0,1,3,6.
            let expected = [0u64, 1, 3, 6][comm.rank()];
            assert_eq!(got, expected);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn scan_inclusive_prefix() {
        run_spmd(4, |comm| {
            let got = comm.scan_u64(&[comm.rank() as u64 + 1, 1], ReduceOp::Sum)?;
            // Values 1,2,3,4 → inclusive prefixes 1,3,6,10; second slot counts ranks.
            let expected = [1u64, 3, 6, 10][comm.rank()];
            assert_eq!(got, vec![expected, comm.rank() as u64 + 1]);
            let m = comm.scan_u64(&[10 - comm.rank() as u64], ReduceOp::Min)?;
            assert_eq!(m, vec![10 - comm.rank() as u64]);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn gatherv_concatenates_with_counts() {
        run_spmd(3, |comm| {
            let data = vec![comm.rank() as u8; comm.rank()];
            let (all, counts) = comm.gatherv_bytes(0, data)?;
            if comm.rank() == 0 {
                assert_eq!(counts, vec![0, 1, 2]);
                assert_eq!(all, vec![1, 2, 2]);
            } else {
                assert!(all.is_empty());
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn typed_bcast() {
        run_spmd(2, |comm| {
            let data = if comm.rank() == 0 { Some(vec![1u64, 2, 3]) } else { None };
            let got = comm.bcast_vec::<u64>(0, data.as_deref())?;
            assert_eq!(got, vec![1, 2, 3]);
            Ok(())
        })
        .unwrap();
    }
}
