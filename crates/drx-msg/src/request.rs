//! Nonblocking point-to-point operations (`MPI_Isend` / `MPI_Irecv` /
//! `MPI_Wait` / `MPI_Test` / `MPI_Waitall`).
//!
//! The thread-rank runtime delivers sends eagerly (enqueue into the
//! destination mailbox), so an [`SendRequest`] completes at creation; an
//! [`RecvRequest`] is a persistent match descriptor that can be tested
//! (polling) or waited on (blocking). This mirrors how the paper's library
//! overlaps communication with I/O planning.

use crate::comm::Comm;
use crate::error::Result;

/// Handle of a nonblocking send. Eager delivery means it is always
/// complete; the handle exists so ported MPI code keeps its structure.
#[derive(Debug)]
#[must_use = "wait() the request to observe delivery errors"]
pub struct SendRequest {
    result: Result<()>,
}

impl SendRequest {
    /// Completion status (always ready).
    pub fn test(&self) -> bool {
        true
    }

    /// Complete the request, surfacing any enqueue error.
    pub fn wait(self) -> Result<()> {
        self.result
    }
}

/// Handle of a nonblocking receive: a pending (source, tag) match.
#[must_use = "wait() or test() the request to receive the message"]
pub struct RecvRequest {
    comm: Comm,
    src: Option<usize>,
    tag: Option<u32>,
    /// Message captured by a successful `test`.
    done: Option<(usize, u32, Vec<u8>)>,
}

impl RecvRequest {
    /// Poll for completion; returns `true` once a matching message has been
    /// captured (after which [`RecvRequest::wait`] returns it immediately).
    pub fn test(&mut self) -> Result<bool> {
        if self.done.is_some() {
            return Ok(true);
        }
        if let Some(msg) = self.comm.try_recv_bytes(self.src, self.tag)? {
            self.done = Some(msg);
            return Ok(true);
        }
        Ok(false)
    }

    /// Block until the matching message arrives; returns
    /// `(source, tag, data)`.
    pub fn wait(mut self) -> Result<(usize, u32, Vec<u8>)> {
        if let Some(msg) = self.done.take() {
            return Ok(msg);
        }
        self.comm.recv_bytes(self.src, self.tag)
    }
}

impl Comm {
    /// Nonblocking send (`MPI_Isend`): enqueue and return a request.
    pub fn isend_bytes(&self, dst: usize, tag: u32, data: Vec<u8>) -> SendRequest {
        SendRequest { result: self.send_bytes(dst, tag, data) }
    }

    /// Nonblocking receive (`MPI_Irecv`): post a match for `(src, tag)`.
    pub fn irecv_bytes(&self, src: Option<usize>, tag: Option<u32>) -> RecvRequest {
        RecvRequest { comm: self.clone(), src, tag, done: None }
    }

    /// Complete a set of receive requests (`MPI_Waitall`), returning the
    /// messages in request order.
    pub fn waitall(&self, requests: Vec<RecvRequest>) -> Result<Vec<(usize, u32, Vec<u8>)>> {
        requests.into_iter().map(|r| r.wait()).collect()
    }
}

#[cfg(test)]
mod tests {

    use crate::error::MsgError;
    use crate::runtime::run_spmd;

    #[test]
    fn irecv_posted_before_send_completes() {
        run_spmd(2, |comm| {
            if comm.rank() == 1 {
                let mut req = comm.irecv_bytes(Some(0), Some(9));
                assert!(!req.test()?, "nothing sent yet");
                comm.barrier()?;
                // The sender fires after the barrier; wait() must block
                // until the message lands.
                let (src, tag, data) = req.wait()?;
                assert_eq!((src, tag, data), (0, 9, vec![1, 2, 3]));
            } else {
                comm.barrier()?;
                comm.isend_bytes(1, 9, vec![1, 2, 3]).wait()?;
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn test_captures_once_and_wait_returns_it() {
        run_spmd(2, |comm| {
            if comm.rank() == 0 {
                comm.isend_bytes(1, 1, vec![42]).wait()?;
                comm.barrier()?;
            } else {
                comm.barrier()?;
                let mut req = comm.irecv_bytes(Some(0), None);
                // Poll until captured.
                while !req.test()? {}
                // A second test stays true; wait hands the captured message
                // over exactly once.
                assert!(req.test()?);
                let (_, _, data) = req.wait()?;
                assert_eq!(data, vec![42]);
                assert!(comm.try_recv_bytes(None, None)?.is_none());
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn waitall_preserves_request_order() {
        run_spmd(3, |comm| {
            if comm.rank() == 0 {
                let reqs: Vec<_> =
                    vec![comm.irecv_bytes(Some(2), None), comm.irecv_bytes(Some(1), None)];
                let msgs = comm.waitall(reqs)?;
                assert_eq!(msgs[0].0, 2);
                assert_eq!(msgs[1].0, 1);
            } else {
                comm.isend_bytes(0, 0, vec![comm.rank() as u8]).wait()?;
            }
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn isend_to_bad_rank_surfaces_on_wait() {
        run_spmd(1, |comm| {
            let req = comm.isend_bytes(7, 0, vec![]);
            assert!(req.test());
            match req.wait() {
                Err(MsgError::BadRank { rank: 7, .. }) => Ok(()),
                other => panic!("expected BadRank, got {other:?}"),
            }
        })
        .unwrap();
    }
}
