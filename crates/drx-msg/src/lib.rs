//! # drx-msg — MPI-like SPMD runtime on thread-ranks
//!
//! The message-passing substrate DRX-MP runs on: SPMD ranks (OS threads),
//! communicators with point-to-point messaging and collectives, derived
//! datatypes, RMA windows (`get`/`put`/`accumulate`) and MPI-IO-style
//! parallel file access with file views and two-phase collective I/O over
//! the [`drx_pfs`] parallel file system.
//!
//! The paper's library is built on MPI-2 + MPI-IO over PVFS2 (§IV); no
//! usable MPI binding exists offline for Rust, so this crate reimplements
//! the *semantics* the paper depends on — see DESIGN.md §3 for the
//! substitution argument.
//!
//! ```
//! use drx_msg::{run_spmd, ReduceOp};
//!
//! let sums = run_spmd(4, |comm| {
//!     // Every rank contributes its rank id; all ranks get the total.
//!     let total = comm.allreduce_u64(&[comm.rank() as u64], ReduceOp::Sum)?;
//!     Ok(total[0])
//! })
//! .unwrap();
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod collective;
pub mod comm;
pub mod datatype;
pub mod error;
pub mod io;
pub mod request;
pub mod rma;
pub mod runtime;
pub mod wire;

pub use comm::Comm;
pub use datatype::Datatype;
pub use error::{MsgError, Result};
pub use io::MsgFile;
pub use request::{RecvRequest, SendRequest};
pub use rma::Window;
pub use runtime::run_spmd;
pub use wire::{ReduceOp, Scalar};
