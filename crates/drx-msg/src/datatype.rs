//! Derived datatypes — the file-view vocabulary of MPI-IO.
//!
//! The paper's code listing builds its file views with
//! `MPI_Type_contiguous(ChunkSize, MPI_DOUBLE)` followed by
//! `MPI_Type_indexed(noOfChunks, blocklens, map, chunk, &filetype)`. A
//! [`Datatype`] here is the flattened form every such construction reduces
//! to: an ordered list of `(byte offset, byte length)` extents relative to
//! the type's origin, plus the *extent* (span) used when the type tiles a
//! file view repeatedly.

use crate::error::{MsgError, Result};

/// A flattened derived datatype.
///
/// ```
/// use drx_msg::Datatype;
///
/// // The paper's collective-read view: 6-double chunks at the addresses of
/// // process P1's zone, {6, 7, 8, 12, 13, 14}.
/// let chunk = Datatype::contiguous(48);
/// let ft = Datatype::indexed(&[1; 6], &[6, 7, 8, 12, 13, 14], &chunk).unwrap();
/// assert_eq!(ft.size(), 6 * 48);
/// // Adjacent chunks coalesce into two contiguous file extents.
/// assert_eq!(ft.extents(), &[(288, 144), (576, 144)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datatype {
    /// `(offset, len)` byte extents in strictly increasing, non-overlapping
    /// offset order.
    extents: Vec<(u64, u64)>,
    /// The span the type covers when repeated (≥ end of the last extent).
    extent: u64,
}

impl Datatype {
    /// A contiguous run of `len` bytes.
    pub fn contiguous(len: u64) -> Self {
        if len == 0 {
            Datatype { extents: Vec::new(), extent: 0 }
        } else {
            Datatype { extents: vec![(0, len)], extent: len }
        }
    }

    /// `count` repetitions of `base` laid end to end
    /// (`MPI_Type_contiguous` over a derived base).
    pub fn repeated(base: &Datatype, count: usize) -> Self {
        let mut extents = Vec::with_capacity(base.extents.len() * count);
        for rep in 0..count as u64 {
            let shift = rep * base.extent;
            for &(off, len) in &base.extents {
                push_coalescing(&mut extents, off + shift, len);
            }
        }
        Datatype { extent: base.extent * count as u64, extents }
    }

    /// `MPI_Type_vector`: `count` blocks of `blocklen` base-items, block
    /// starts `stride` base-items apart.
    pub fn vector(count: usize, blocklen: usize, stride: usize, base: &Datatype) -> Result<Self> {
        if stride < blocklen {
            return Err(MsgError::BadDatatype(format!(
                "vector stride {stride} smaller than blocklen {blocklen}"
            )));
        }
        let mut extents = Vec::new();
        for b in 0..count as u64 {
            let block_origin = b * stride as u64 * base.extent;
            for i in 0..blocklen as u64 {
                let shift = block_origin + i * base.extent;
                for &(off, len) in &base.extents {
                    push_coalescing(&mut extents, off + shift, len);
                }
            }
        }
        let extent = count as u64 * stride as u64 * base.extent;
        Ok(Datatype { extents, extent })
    }

    /// `MPI_Type_indexed`: block `i` has `blocklens[i]` base-items starting
    /// `displs[i]` base-items from the origin. This is the constructor the
    /// paper's collective-read listing uses (with the chunk type as base and
    /// the chunk address map as displacements).
    ///
    /// Displacements must be given in increasing order (MPI permits any
    /// order for file views only when monotonic; we enforce the same rule).
    pub fn indexed(blocklens: &[usize], displs: &[usize], base: &Datatype) -> Result<Self> {
        if blocklens.len() != displs.len() {
            return Err(MsgError::BadDatatype(format!(
                "indexed: {} blocklens vs {} displacements",
                blocklens.len(),
                displs.len()
            )));
        }
        let mut extents = Vec::new();
        let mut max_end = 0u64;
        let mut prev_end: Option<u64> = None;
        for (&bl, &d) in blocklens.iter().zip(displs) {
            let start = d as u64 * base.extent;
            if let Some(pe) = prev_end {
                if start < pe {
                    return Err(MsgError::BadDatatype(
                        "indexed displacements must be monotonically increasing".into(),
                    ));
                }
            }
            for i in 0..bl as u64 {
                let shift = start + i * base.extent;
                for &(off, len) in &base.extents {
                    push_coalescing(&mut extents, off + shift, len);
                }
            }
            let end = start + bl as u64 * base.extent;
            prev_end = Some(end);
            max_end = max_end.max(end);
        }
        Ok(Datatype { extents, extent: max_end })
    }

    /// `MPI_Type_create_subarray` (C order): the byte extents of a
    /// rectilinear sub-array `lo..hi` inside a row-major array of shape
    /// `shape` with `elem_size`-byte elements. Rows of the sub-array along
    /// the last dimension become contiguous runs.
    pub fn subarray(shape: &[usize], lo: &[usize], hi: &[usize], elem_size: usize) -> Result<Self> {
        let k = shape.len();
        if lo.len() != k || hi.len() != k || k == 0 {
            return Err(MsgError::BadDatatype("subarray rank mismatch".into()));
        }
        for j in 0..k {
            if lo[j] > hi[j] || hi[j] > shape[j] {
                return Err(MsgError::BadDatatype(format!(
                    "subarray bounds {}..{} invalid for extent {} in dim {j}",
                    lo[j], hi[j], shape[j]
                )));
            }
        }
        // Row-major strides in elements.
        let mut strides = vec![1u64; k];
        for j in (0..k - 1).rev() {
            strides[j] = strides[j + 1] * shape[j + 1] as u64;
        }
        let full: u64 = shape.iter().map(|&n| n as u64).product();
        let mut extents = Vec::new();
        let run = (hi[k - 1] - lo[k - 1]) as u64 * elem_size as u64;
        let empty = lo.iter().zip(hi).any(|(&l, &h)| l == h);
        if run > 0 && !empty {
            // Odometer over all dims but the last; each position is one
            // contiguous row along the last dimension.
            let mut idx: Vec<usize> = lo[..k - 1].to_vec();
            'outer: loop {
                let mut off = lo[k - 1] as u64 * strides[k - 1];
                for j in 0..k - 1 {
                    off += idx[j] as u64 * strides[j];
                }
                push_coalescing(&mut extents, off * elem_size as u64, run);
                // Increment the odometer (last of the leading dims fastest).
                let mut j = k - 1;
                loop {
                    if j == 0 {
                        break 'outer; // rank 1: single row, or odometer done
                    }
                    j -= 1;
                    idx[j] += 1;
                    if idx[j] < hi[j] {
                        break;
                    }
                    idx[j] = lo[j];
                    if j == 0 {
                        break 'outer;
                    }
                }
            }
        }
        Ok(Datatype { extents, extent: full * elem_size as u64 })
    }

    /// The flattened `(offset, len)` extents.
    pub fn extents(&self) -> &[(u64, u64)] {
        &self.extents
    }

    /// Total data bytes the type selects (sum of extent lengths).
    pub fn size(&self) -> u64 {
        self.extents.iter().map(|&(_, l)| l).sum()
    }

    /// The span of one repetition.
    pub fn extent(&self) -> u64 {
        self.extent
    }

    /// Override the extent (MPI's resized type) — needed when tiling with
    /// gaps at the end.
    pub fn resized(mut self, extent: u64) -> Result<Self> {
        let end = self.extents.last().map(|&(o, l)| o + l).unwrap_or(0);
        if extent < end {
            return Err(MsgError::BadDatatype(format!(
                "resized extent {extent} smaller than data end {end}"
            )));
        }
        self.extent = extent;
        Ok(self)
    }

    /// Map a logical data offset (position within the *selected* bytes,
    /// tiling the type repeatedly) to an absolute byte offset. Used by the
    /// I/O layer to translate buffer positions through a file view.
    pub fn absolute_ranges(&self, data_offset: u64, len: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        if len == 0 || self.extents.is_empty() {
            return out;
        }
        let tile_data = self.size();
        let mut remaining = len;
        let mut pos = data_offset;
        while remaining > 0 {
            let tile = pos / tile_data;
            let mut within = pos % tile_data;
            let tile_base = tile * self.extent;
            for &(off, l) in &self.extents {
                if within >= l {
                    within -= l;
                    continue;
                }
                let avail = l - within;
                let take = avail.min(remaining);
                let abs = tile_base + off + within;
                match out.last_mut() {
                    Some(last) if last.0 + last.1 == abs => last.1 += take,
                    _ => out.push((abs, take)),
                }
                remaining -= take;
                pos += take;
                within = 0;
                if remaining == 0 {
                    break;
                }
            }
        }
        out
    }
}

fn push_coalescing(extents: &mut Vec<(u64, u64)>, off: u64, len: u64) {
    if len == 0 {
        return;
    }
    match extents.last_mut() {
        Some(last) if last.0 + last.1 == off => last.1 += len,
        _ => extents.push((off, len)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_repeated() {
        let c = Datatype::contiguous(8);
        assert_eq!(c.extents(), &[(0, 8)]);
        assert_eq!(c.size(), 8);
        let r = Datatype::repeated(&c, 3);
        // Adjacent repetitions coalesce into one run.
        assert_eq!(r.extents(), &[(0, 24)]);
        assert_eq!(r.extent(), 24);
    }

    #[test]
    fn vector_strided_blocks() {
        let base = Datatype::contiguous(4);
        let v = Datatype::vector(3, 2, 5, &base).unwrap();
        // Blocks of 2 items every 5 items of 4 bytes: offsets 0, 20, 40.
        assert_eq!(v.extents(), &[(0, 8), (20, 8), (40, 8)]);
        assert_eq!(v.size(), 24);
        assert_eq!(v.extent(), 60);
        assert!(Datatype::vector(2, 3, 2, &base).is_err());
    }

    #[test]
    fn indexed_mirrors_paper_listing() {
        // The paper's rank-1 view: chunks {6,7,8,12,13,14} of 6 doubles.
        let chunk = Datatype::contiguous(48);
        let displs = [6usize, 7, 8, 12, 13, 14];
        let lens = [1usize; 6];
        let ft = Datatype::indexed(&lens, &displs, &chunk).unwrap();
        // 6,7,8 coalesce; 12,13,14 coalesce.
        assert_eq!(ft.extents(), &[(288, 144), (576, 144)]);
        assert_eq!(ft.size(), 288);
        assert_eq!(ft.extent(), 720);
    }

    #[test]
    fn indexed_rejects_non_monotonic_and_ragged() {
        let base = Datatype::contiguous(1);
        assert!(Datatype::indexed(&[1, 1], &[5, 3], &base).is_err());
        assert!(Datatype::indexed(&[1], &[1, 2], &base).is_err());
    }

    #[test]
    fn subarray_2d() {
        // 4×6 array of 8-byte elements; sub-array rows 1..3, cols 2..5.
        let t = Datatype::subarray(&[4, 6], &[1, 2], &[3, 5], 8).unwrap();
        assert_eq!(t.extents(), &[(8 * 8, 24), (14 * 8, 24)]);
        assert_eq!(t.size(), 48);
        assert_eq!(t.extent(), 4 * 6 * 8);
    }

    #[test]
    fn subarray_full_array_is_one_run() {
        let t = Datatype::subarray(&[3, 4], &[0, 0], &[3, 4], 4).unwrap();
        assert_eq!(t.extents(), &[(0, 48)]);
    }

    #[test]
    fn subarray_3d_and_errors() {
        let t = Datatype::subarray(&[2, 3, 4], &[0, 1, 1], &[2, 3, 3], 1).unwrap();
        // Rows: (i, j, 1..3) for i in 0..2, j in 1..3 → offsets 5,9,17,21 len 2.
        assert_eq!(t.extents(), &[(5, 2), (9, 2), (17, 2), (21, 2)]);
        assert!(Datatype::subarray(&[2, 2], &[0], &[2], 1).is_err());
        assert!(Datatype::subarray(&[2, 2], &[0, 1], &[0, 0], 1).is_err());
        assert!(Datatype::subarray(&[2, 2], &[0, 0], &[3, 2], 1).is_err());
    }

    #[test]
    fn empty_subarray_selects_nothing() {
        let t = Datatype::subarray(&[3, 3], &[1, 1], &[1, 3], 4).unwrap();
        assert_eq!(t.size(), 0);
        assert!(t.extents().is_empty());
    }

    #[test]
    fn absolute_ranges_within_one_tile() {
        let base = Datatype::contiguous(4);
        let ft = Datatype::indexed(&[1, 1], &[0, 3], &base).unwrap(); // extents (0,4),(12,4)
        assert_eq!(ft.absolute_ranges(0, 8), vec![(0, 4), (12, 4)]);
        assert_eq!(ft.absolute_ranges(2, 4), vec![(2, 2), (12, 2)]);
        assert_eq!(ft.absolute_ranges(4, 2), vec![(12, 2)]);
    }

    #[test]
    fn absolute_ranges_tile_repetition() {
        let ft = Datatype::contiguous(4).resized(10).unwrap();
        // Selected bytes: 0..4 then (tile 2) 10..14, 20..24 …
        assert_eq!(ft.absolute_ranges(0, 10), vec![(0, 4), (10, 4), (20, 2)]);
        assert_eq!(ft.absolute_ranges(6, 2), vec![(12, 2)]);
    }

    #[test]
    fn resized_validates() {
        let t = Datatype::contiguous(8);
        assert!(t.clone().resized(4).is_err());
        assert_eq!(t.resized(16).unwrap().extent(), 16);
    }
}
