//! Model-based property tests for MPI-IO file views: data written through a
//! random indexed view must land at exactly the absolute offsets the view
//! describes (checked against a plain byte model), independently and
//! collectively, and read back identically both ways.

use drx_msg::{run_spmd, Datatype, MsgFile};
use drx_pfs::Pfs;
use proptest::prelude::*;

/// A random monotonically increasing displacement list with gaps.
fn view_strategy() -> impl Strategy<Value = (u64, Vec<usize>, Vec<usize>)> {
    (
        1u64..16,                                            // base item bytes
        prop::collection::vec((0usize..3, 1usize..4), 1..6), // (gap, blocklen)
    )
        .prop_map(|(base, blocks)| {
            let mut displs = Vec::new();
            let mut lens = Vec::new();
            let mut cursor = 0usize;
            for (gap, len) in blocks {
                cursor += gap;
                displs.push(cursor);
                lens.push(len);
                cursor += len;
            }
            (base, displs, lens)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Independent write through a view == the byte model; independent and
    /// collective reads agree with the written data.
    #[test]
    fn view_write_matches_byte_model(
        (base, displs, lens) in view_strategy(),
        disp in 0u64..64,
        seed in any::<u8>(),
        stripe in 1u64..128,
        servers in 1usize..4,
    ) {
        let pfs = Pfs::memory(servers, stripe).unwrap();
        let base_ty = Datatype::contiguous(base);
        let ft = Datatype::indexed(&lens, &displs, &base_ty).unwrap();
        let size = ft.size() as usize;
        let data: Vec<u8> = (0..size).map(|i| seed.wrapping_add(i as u8)).collect();

        // Byte model: place `data` at the view's absolute ranges.
        let mut model = vec![0u8; (disp + ft.extent() + 16) as usize];
        let mut pos = 0usize;
        for (off, len) in ft.absolute_ranges(0, size as u64) {
            let off = (off + disp) as usize;
            model[off..off + len as usize].copy_from_slice(&data[pos..pos + len as usize]);
            pos += len as usize;
        }
        let model_len = (disp + ft.extents().last().map(|&(o, l)| o + l).unwrap_or(0)) as usize;

        run_spmd(1, |comm| {
            let mut f = MsgFile::open(comm, &pfs, "f", true)?;
            f.set_view(disp, Some(ft.clone()));
            f.write_at(0, &data)?;
            // Raw contents equal the model.
            f.set_view(0, None);
            let mut raw = vec![0u8; model_len];
            f.read_at(0, &mut raw)?;
            assert_eq!(raw, model[..model_len].to_vec());
            // View reads agree (independent and collective).
            f.set_view(disp, Some(ft.clone()));
            let mut back_ind = vec![0u8; size];
            f.read_at(0, &mut back_ind)?;
            assert_eq!(back_ind, data);
            let mut back_coll = vec![0u8; size];
            f.read_all(0, &mut back_coll)?;
            assert_eq!(back_coll, data);
            Ok(())
        })
        .unwrap();
    }

    /// Two ranks with complementary interleaved views write collectively;
    /// the file equals the interleaving of their buffers.
    #[test]
    fn complementary_views_interleave_exactly(
        blocks in 2usize..10,
        block_bytes in 1usize..32,
        seed in any::<u8>(),
    ) {
        let pfs = Pfs::memory(2, 64).unwrap();
        run_spmd(2, move |comm| {
            let me = comm.rank();
            let base = Datatype::contiguous(block_bytes as u64);
            let displs: Vec<usize> = (0..blocks).map(|b| 2 * b + me).collect();
            let ft = Datatype::indexed(&vec![1; blocks], &displs, &base)?;
            let mut f = MsgFile::open(comm, &pfs, "f", true)?;
            f.set_view(0, Some(ft));
            let data: Vec<u8> = (0..blocks * block_bytes)
                .map(|i| seed ^ (me as u8) ^ (i as u8))
                .collect();
            f.write_all(0, &data)?;
            // Verify the interleaving from rank 0.
            if me == 0 {
                f.set_view(0, None);
                let total = 2 * blocks * block_bytes;
                let mut raw = vec![0u8; total];
                f.read_at(0, &mut raw)?;
                for slot in 0..2 * blocks {
                    let owner = (slot % 2) as u8;
                    let block_of_owner = slot / 2;
                    for b in 0..block_bytes {
                        let expect = seed ^ owner ^ ((block_of_owner * block_bytes + b) as u8);
                        assert_eq!(
                            raw[slot * block_bytes + b],
                            expect,
                            "slot {slot} byte {b}"
                        );
                    }
                }
            }
            Ok(())
        })
        .unwrap();
    }
}
