//! Property tests for derived datatypes and the view translation they feed.

use drx_msg::Datatype;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The extents of an indexed type cover exactly blocklens·base bytes, in
    /// increasing non-overlapping order.
    #[test]
    fn indexed_extents_are_sorted_disjoint_and_complete(
        base_len in 1u64..64,
        blocks in prop::collection::vec((1usize..4, 1usize..5), 1..8),
    ) {
        // Build monotonically increasing displacements with gaps.
        let mut displs = Vec::new();
        let mut lens = Vec::new();
        let mut cursor = 0usize;
        for (gap, len) in blocks {
            cursor += gap;
            displs.push(cursor);
            lens.push(len);
            cursor += len;
        }
        let base = Datatype::contiguous(base_len);
        let t = Datatype::indexed(&lens, &displs, &base).unwrap();
        let total: u64 = lens.iter().map(|&l| l as u64 * base_len).sum();
        prop_assert_eq!(t.size(), total);
        let extents = t.extents();
        for w in extents.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap or disorder: {:?}", extents);
        }
    }

    /// absolute_ranges is consistent: mapping the whole selected size
    /// reproduces the extents; mapping in two halves concatenates to the
    /// same ranges.
    #[test]
    fn absolute_ranges_compose(
        base_len in 1u64..16,
        displs_raw in prop::collection::vec(1usize..4, 1..6),
        split_frac in 0.0f64..1.0,
    ) {
        let mut displs = Vec::new();
        let mut cursor = 0usize;
        for gap in displs_raw {
            cursor += gap;
            displs.push(cursor);
            cursor += 1;
        }
        let lens = vec![1usize; displs.len()];
        let base = Datatype::contiguous(base_len);
        let t = Datatype::indexed(&lens, &displs, &base).unwrap();
        let size = t.size();
        let whole = t.absolute_ranges(0, size);
        let covered: u64 = whole.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(covered, size);
        // Split into two, re-concatenate, coalesce, compare.
        let cut = ((size as f64) * split_frac) as u64;
        let mut parts = t.absolute_ranges(0, cut);
        for (o, l) in t.absolute_ranges(cut, size - cut) {
            match parts.last_mut() {
                Some(last) if last.0 + last.1 == o => last.1 += l,
                _ => parts.push((o, l)),
            }
        }
        prop_assert_eq!(parts, whole);
    }

    /// A subarray type selects exactly the bytes of its cells, and tiling
    /// ranges stay within one tile for offsets < size.
    #[test]
    fn subarray_size_matches_volume(
        shape in prop::collection::vec(1usize..6, 1..4),
        frac in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 4),
        elem in 1usize..9,
    ) {
        let k = shape.len();
        let mut lo = vec![0usize; k];
        let mut hi = vec![0usize; k];
        for j in 0..k {
            let (a, b) = frac[j.min(3)];
            let x = (a * shape[j] as f64) as usize;
            let y = (b * shape[j] as f64) as usize;
            lo[j] = x.min(y);
            hi[j] = x.max(y);
        }
        let t = Datatype::subarray(&shape, &lo, &hi, elem).unwrap();
        let vol: u64 = lo.iter().zip(&hi).map(|(&l, &h)| (h - l) as u64).product();
        prop_assert_eq!(t.size(), vol * elem as u64);
        let full: u64 = shape.iter().map(|&n| n as u64).product();
        prop_assert_eq!(t.extent(), full * elem as u64);
        // Every selected byte lies inside the full array span.
        for &(o, l) in t.extents() {
            prop_assert!(o + l <= t.extent());
        }
    }

    /// vector == indexed with equally spaced displacements.
    #[test]
    fn vector_equals_equivalent_indexed(
        count in 1usize..6,
        blocklen in 1usize..4,
        extra in 0usize..4,
        base_len in 1u64..16,
    ) {
        let stride = blocklen + extra;
        let base = Datatype::contiguous(base_len);
        let v = Datatype::vector(count, blocklen, stride, &base).unwrap();
        let displs: Vec<usize> = (0..count).map(|i| i * stride).collect();
        let lens = vec![blocklen; count];
        let ix = Datatype::indexed(&lens, &displs, &base).unwrap();
        prop_assert_eq!(v.extents(), ix.extents());
        prop_assert_eq!(v.size(), ix.size());
    }
}
