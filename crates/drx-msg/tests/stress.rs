//! Concurrency stress tests for the message-passing runtime: many messages,
//! random tags, mixed collectives — hunting for lost messages, cross-talk
//! and ordering violations.

use drx_msg::{run_spmd, ReduceOp};

#[test]
fn many_tagged_messages_are_matched_exactly_once() {
    const PER_PAIR: usize = 200;
    run_spmd(4, |comm| {
        let me = comm.rank();
        let n = comm.size();
        // Everyone sends PER_PAIR messages to every other rank, tag = index.
        for dst in 0..n {
            if dst == me {
                continue;
            }
            for t in 0..PER_PAIR as u32 {
                comm.send_bytes(dst, t, vec![me as u8, t as u8])?;
            }
        }
        // Receive in *reverse* tag order from each source: matching must
        // pick the right message regardless of queue order.
        for src in 0..n {
            if src == me {
                continue;
            }
            for t in (0..PER_PAIR as u32).rev() {
                let (s, tag, data) = comm.recv_bytes(Some(src), Some(t))?;
                assert_eq!((s, tag), (src, t));
                assert_eq!(data, vec![src as u8, t as u8]);
            }
        }
        // Nothing left over.
        assert!(comm.try_recv_bytes(None, None)?.is_none());
        Ok(())
    })
    .unwrap();
}

#[test]
fn interleaved_p2p_and_collectives_do_not_interfere() {
    run_spmd(3, |comm| {
        let me = comm.rank();
        for round in 0..30u32 {
            // P2P ring send.
            let next = (me + 1) % 3;
            comm.send_bytes(next, round, vec![round as u8; 3])?;
            // A collective in between.
            let sum = comm.allreduce_u64(&[round as u64], ReduceOp::Sum)?;
            assert_eq!(sum, vec![round as u64 * 3]);
            // Receive from the ring.
            let prev = (me + 2) % 3;
            let (_, tag, data) = comm.recv_bytes(Some(prev), Some(round))?;
            assert_eq!(tag, round);
            assert_eq!(data, vec![round as u8; 3]);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn wildcard_receives_drain_everything() {
    run_spmd(2, |comm| {
        if comm.rank() == 0 {
            for t in 0..100u32 {
                comm.send_bytes(1, t % 7, vec![t as u8])?;
            }
            comm.barrier()?;
        } else {
            comm.barrier()?;
            let mut seen = vec![false; 100];
            for _ in 0..100 {
                let (_, _, data) = comm.recv_bytes(None, None)?;
                let v = data[0] as usize;
                assert!(!seen[v], "duplicate delivery of {v}");
                seen[v] = true;
            }
            assert!(seen.into_iter().all(|b| b));
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn large_payload_collectives() {
    run_spmd(4, |comm| {
        // 1 MiB broadcast and gather round-trip.
        let big: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        let data = if comm.rank() == 2 { Some(big.clone()) } else { None };
        let got = comm.bcast_bytes(2, data)?;
        assert_eq!(got.len(), 1 << 20);
        assert_eq!(got, big);
        let gathered = comm.gather_bytes(0, vec![comm.rank() as u8; 100_000])?;
        if comm.rank() == 0 {
            for (r, part) in gathered.iter().enumerate() {
                assert_eq!(part.len(), 100_000);
                assert!(part.iter().all(|&b| b == r as u8));
            }
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn repeated_split_and_subgroup_collectives() {
    run_spmd(6, |comm| {
        for round in 0..10u64 {
            let color = (comm.rank() as u64 + round) % 2;
            let sub = comm.split(color, comm.rank() as u64)?;
            assert_eq!(sub.size(), 3);
            let total = sub.allreduce_u64(&[comm.rank() as u64], ReduceOp::Sum)?;
            // Members of the subgroup are exactly the world ranks with this
            // round's color.
            let expect: u64 =
                (0..6).filter(|&r| (r as u64 + round) % 2 == color).map(|r| r as u64).sum();
            assert_eq!(total, vec![expect], "round {round}");
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn rma_mixed_put_get_accumulate_stress() {
    use drx_msg::Window;
    run_spmd(4, |comm| {
        let slots = 64usize;
        let win = Window::create(comm, drx_msg::wire::encode(&vec![0i64; slots]))?;
        win.fence()?;
        // Each rank accumulates +1 into every slot of every rank, 50 times.
        for _ in 0..50 {
            for target in 0..comm.size() {
                win.accumulate_i64(target, 0, &vec![1i64; slots])?;
            }
        }
        win.fence()?;
        win.with_local(|bytes| {
            let vals: Vec<i64> = drx_msg::wire::decode(bytes);
            assert!(vals.iter().all(|&v| v == 200), "lost updates: {vals:?}");
        })?;
        Ok(())
    })
    .unwrap();
}
