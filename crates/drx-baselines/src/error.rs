//! Error type for the baseline array-file formats.

use std::fmt;

#[derive(Debug)]
pub enum BaselineError {
    /// Mapping / metadata error from `drx-core`.
    Core(drx_core::DrxError),
    /// Parallel file system error.
    Pfs(drx_pfs::PfsError),
    /// Structural corruption detected in a baseline file (bad page, bad
    /// header, …).
    Corrupt(String),
    /// Generic invalid argument.
    Invalid(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Core(e) => write!(f, "{e}"),
            BaselineError::Pfs(e) => write!(f, "{e}"),
            BaselineError::Corrupt(why) => write!(f, "corrupt baseline file: {why}"),
            BaselineError::Invalid(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Core(e) => Some(e),
            BaselineError::Pfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drx_core::DrxError> for BaselineError {
    fn from(e: drx_core::DrxError) -> Self {
        BaselineError::Core(e)
    }
}

impl From<drx_pfs::PfsError> for BaselineError {
    fn from(e: drx_pfs::PfsError) -> Self {
        BaselineError::Pfs(e)
    }
}

pub type Result<T> = std::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_wraps() {
        let e: BaselineError = drx_pfs::PfsError::NoSuchFile("q".into()).into();
        assert!(e.to_string().contains("q"));
        assert!(BaselineError::Corrupt("bad page".into()).to_string().contains("bad page"));
    }
}
