//! # drx-baselines — comparator array-file formats
//!
//! Faithful miniatures of the formats the paper positions DRX-MP against
//! (§I, §II-B, §V): a conventional **row-major array file** (extendible only
//! in dimension 0; anything else forces a full reorganization), an
//! **HDF5-like chunked store** whose chunks are located through a real
//! disk-page **B-tree**, and a **netCDF-like record file** with one
//! unlimited dimension (growing a fixed dimension redefines and copies the
//! whole file).
//!
//! These exist so the benchmark harness can measure the paper's qualitative
//! claims: computed access (`F*`) vs index lookups (E1), append-only
//! extension vs reorganization (E2), and order-neutral chunked layout vs
//! row-major access-order sensitivity (E3).

pub mod btree;
pub mod dralike;
pub mod error;
pub mod hdf5like;
pub mod netcdflike;
pub mod rowmajor;

pub use btree::{Btree, BtreeStats};
pub use dralike::DraLikeFile;
pub use error::{BaselineError, Result};
pub use hdf5like::Hdf5LikeFile;
pub use netcdflike::NetcdfLikeFile;
pub use rowmajor::{ExtendCost, RowMajorFile};
