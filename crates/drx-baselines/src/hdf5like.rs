//! HDF5-like chunked array file: chunks allocated on first write, located
//! through a disk-page B-tree index (paper §I/§II-B).
//!
//! Extension is cheap (just metadata), like DRX — but every chunk access
//! pays B-tree page reads where DRX computes the address with `F*`
//! ("Instead of managing the chunks by an index scheme, the chunks can be
//! addressed by a computed access function in a manner similar to hashing",
//! §V). Experiment E1/E9 quantify that difference.

use crate::btree::{Btree, BtreeStats};
use crate::error::{BaselineError, Result};
use drx_core::{dtype, Chunking, DType, Element, Layout, Region};
use drx_pfs::{Pfs, PfsFile};

const SUPER_MAGIC: u32 = 0x4835_4C4B; // "H5LK"

/// A chunked, B-tree-indexed array file (`name.h5s` superblock +
/// `name.h5d` data + `name.h5i` index).
pub struct Hdf5LikeFile<T: Element> {
    chunking: Chunking,
    bounds: Vec<usize>,
    index: Btree,
    data: PfsFile,
    superblock: PfsFile,
    /// Next free chunk slot in the data file.
    next_chunk: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> Hdf5LikeFile<T> {
    /// Create a new dataset. Chunks are allocated lazily on first write
    /// (HDF5 semantics); unwritten chunks read as the fill value
    /// `T::default()`.
    pub fn create(
        pfs: &Pfs,
        name: &str,
        chunk_shape: &[usize],
        initial_bounds: &[usize],
        page_size: usize,
    ) -> Result<Self> {
        let chunking = Chunking::new(chunk_shape)?;
        if initial_bounds.len() != chunking.rank() {
            return Err(BaselineError::Invalid("bounds rank mismatch".into()));
        }
        let index = Btree::create(pfs.create(&format!("{name}.h5i"))?, chunking.rank(), page_size)?;
        let data = pfs.create(&format!("{name}.h5d"))?;
        let superblock = pfs.create(&format!("{name}.h5s"))?;
        let mut f = Hdf5LikeFile {
            chunking,
            bounds: initial_bounds.to_vec(),
            index,
            data,
            superblock,
            next_chunk: 0,
            _marker: std::marker::PhantomData,
        };
        f.write_superblock()?;
        Ok(f)
    }

    /// Open an existing dataset; the stored element type must match `T`.
    pub fn open(pfs: &Pfs, name: &str) -> Result<Self> {
        let superblock = pfs.open(&format!("{name}.h5s"))?;
        let head = superblock.read_vec(0, superblock.len() as usize)?;
        if head.len() < 18 || u32::from_le_bytes(head[0..4].try_into().unwrap()) != SUPER_MAGIC {
            return Err(BaselineError::Corrupt("bad hdf5like superblock".into()));
        }
        let stored = DType::from_code(head[4])?;
        if stored != T::DTYPE {
            return Err(BaselineError::Invalid(format!(
                "file holds {}, requested {}",
                stored.name(),
                T::DTYPE.name()
            )));
        }
        let rank = head[5] as usize;
        let next_chunk = u64::from_le_bytes(head[6..14].try_into().unwrap());
        let need = 14 + rank * 16;
        if head.len() < need {
            return Err(BaselineError::Corrupt("truncated hdf5like superblock".into()));
        }
        let mut chunk_shape = Vec::with_capacity(rank);
        let mut bounds = Vec::with_capacity(rank);
        for j in 0..rank {
            let off = 14 + j * 8;
            chunk_shape.push(u64::from_le_bytes(head[off..off + 8].try_into().unwrap()) as usize);
            let off = 14 + (rank + j) * 8;
            bounds.push(u64::from_le_bytes(head[off..off + 8].try_into().unwrap()) as usize);
        }
        let chunking = Chunking::new(&chunk_shape)?;
        let index = Btree::open(pfs.open(&format!("{name}.h5i"))?)?;
        let data = pfs.open(&format!("{name}.h5d"))?;
        Ok(Hdf5LikeFile {
            chunking,
            bounds,
            index,
            data,
            superblock,
            next_chunk,
            _marker: std::marker::PhantomData,
        })
    }

    fn write_superblock(&mut self) -> Result<()> {
        let rank = self.chunking.rank();
        let mut head = vec![0u8; 14 + rank * 16];
        head[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        head[4] = T::DTYPE.code();
        head[5] = rank as u8;
        head[6..14].copy_from_slice(&self.next_chunk.to_le_bytes());
        for (j, &c) in self.chunking.shape().iter().enumerate() {
            head[14 + j * 8..14 + j * 8 + 8].copy_from_slice(&(c as u64).to_le_bytes());
        }
        for (j, &b) in self.bounds.iter().enumerate() {
            let off = 14 + (rank + j) * 8;
            head[off..off + 8].copy_from_slice(&(b as u64).to_le_bytes());
        }
        self.superblock.write_at(0, &head)?;
        Ok(())
    }

    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    pub fn chunking(&self) -> &Chunking {
        &self.chunking
    }

    fn chunk_bytes(&self) -> u64 {
        self.chunking.chunk_elems() * T::SIZE as u64
    }

    /// Index I/O counters (page reads/writes since last reset).
    pub fn index_stats(&self) -> BtreeStats {
        self.index.stats()
    }

    pub fn reset_index_stats(&self) {
        self.index.reset_stats()
    }

    /// Index storage overhead in bytes.
    pub fn index_bytes(&self) -> u64 {
        self.index.bytes()
    }

    /// Extend any dimension: pure metadata, like DRX (this is the one thing
    /// HDF5 chunking also gets right — the costs differ in *access*, not
    /// extension).
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<()> {
        if dim >= self.bounds.len() {
            return Err(BaselineError::Invalid(format!("dimension {dim} out of range")));
        }
        if by == 0 {
            return Err(BaselineError::Invalid("extension amount must be positive".into()));
        }
        self.bounds[dim] += by;
        self.write_superblock()
    }

    fn check_index(&self, index: &[usize]) -> Result<()> {
        if index.len() != self.bounds.len() || index.iter().zip(&self.bounds).any(|(&i, &n)| i >= n)
        {
            return Err(BaselineError::Invalid(format!(
                "index {index:?} out of bounds {:?}",
                self.bounds
            )));
        }
        Ok(())
    }

    fn key_of(chunk: &[usize]) -> Vec<u64> {
        chunk.iter().map(|&c| c as u64).collect()
    }

    /// Locate a chunk through the B-tree; `None` when never written.
    fn chunk_slot(&self, chunk: &[usize]) -> Result<Option<u64>> {
        self.index.get(&Self::key_of(chunk))
    }

    /// Locate-or-allocate a chunk slot for writing.
    fn chunk_slot_mut(&mut self, chunk: &[usize]) -> Result<u64> {
        let key = Self::key_of(chunk);
        if let Some(slot) = self.index.get(&key)? {
            return Ok(slot);
        }
        let slot = self.next_chunk;
        self.next_chunk += 1;
        // Materialize the chunk with fill values.
        let zeros = vec![T::default(); self.chunking.chunk_elems() as usize];
        self.data.write_at(slot * self.chunk_bytes(), &dtype::encode_slice(&zeros))?;
        self.index.insert(&key, slot)?;
        self.write_superblock()?;
        Ok(slot)
    }

    pub fn get(&self, index: &[usize]) -> Result<T> {
        self.check_index(index)?;
        let (chunk, within) = self.chunking.split(index)?;
        match self.chunk_slot(&chunk)? {
            None => Ok(T::default()),
            Some(slot) => {
                let off = slot * self.chunk_bytes()
                    + self.chunking.within_offset(&within) * T::SIZE as u64;
                let bytes = self.data.read_vec(off, T::SIZE)?;
                Ok(T::read_le(&bytes))
            }
        }
    }

    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        self.check_index(index)?;
        let (chunk, within) = self.chunking.split(index)?;
        let slot = self.chunk_slot_mut(&chunk)?;
        let off = slot * self.chunk_bytes() + self.chunking.within_offset(&within) * T::SIZE as u64;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.data.write_at(off, &buf)?;
        Ok(())
    }

    /// Read a rectilinear region (chunk-at-a-time, like the DRX serial
    /// reader, but each chunk location costs a B-tree traversal).
    pub fn read_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        self.check_region(region)?;
        let chunk_region = self.chunking.chunks_covering(region)?;
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        for chunk in chunk_region.iter() {
            let chunk_elems = self.chunking.chunk_elements(&chunk)?;
            let Some(valid) = chunk_elems.intersect(region) else { continue };
            let slot = self.chunk_slot(&chunk)?;
            let bytes = match slot {
                None => None,
                Some(s) => {
                    Some(self.data.read_vec(s * self.chunk_bytes(), self.chunk_bytes() as usize)?)
                }
            };
            if let Some(b) = &bytes {
                drx_core::index::for_each_offset_pair(
                    &valid,
                    chunk_elems.lo(),
                    self.chunking.strides(),
                    region.lo(),
                    &strides,
                    |src, dst| {
                        let src = src as usize * T::SIZE;
                        out[dst as usize] = T::read_le(&b[src..src + T::SIZE]);
                    },
                );
            }
            // Unallocated chunks leave the fill value (T::default()) in place.
        }
        Ok(out)
    }

    /// Write a region from a dense buffer.
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        self.check_region(region)?;
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(BaselineError::Invalid(format!(
                "buffer has {} elements for a {n}-element region",
                data.len()
            )));
        }
        let chunk_region = self.chunking.chunks_covering(region)?;
        let extents = region.extents();
        let strides = layout.strides(&extents);
        for chunk in chunk_region.iter() {
            let chunk_elems = self.chunking.chunk_elements(&chunk)?;
            let Some(valid) = chunk_elems.intersect(region) else { continue };
            let slot = self.chunk_slot_mut(&chunk)?;
            let base = slot * self.chunk_bytes();
            let mut bytes = self.data.read_vec(base, self.chunk_bytes() as usize)?;
            let mut tmp = Vec::with_capacity(T::SIZE);
            drx_core::index::for_each_offset_pair(
                &valid,
                chunk_elems.lo(),
                self.chunking.strides(),
                region.lo(),
                &strides,
                |dst, src| {
                    let dst = dst as usize * T::SIZE;
                    tmp.clear();
                    data[src as usize].write_le(&mut tmp);
                    bytes[dst..dst + T::SIZE].copy_from_slice(&tmp);
                },
            );
            self.data.write_at(base, &bytes)?;
        }
        Ok(())
    }

    fn check_region(&self, region: &Region) -> Result<()> {
        if region.rank() != self.bounds.len()
            || region.hi().iter().zip(&self.bounds).any(|(&h, &n)| h > n)
        {
            return Err(BaselineError::Invalid(format!("region out of bounds {:?}", self.bounds)));
        }
        Ok(())
    }

    /// Allocated (written) chunk count.
    pub fn allocated_chunks(&self) -> u64 {
        self.next_chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::memory(2, 1024).unwrap()
    }

    #[test]
    fn lazy_allocation_and_fill_values() {
        let fs = pfs();
        let mut f: Hdf5LikeFile<f64> =
            Hdf5LikeFile::create(&fs, "h", &[2, 2], &[8, 8], 256).unwrap();
        assert_eq!(f.allocated_chunks(), 0);
        assert_eq!(f.get(&[5, 5]).unwrap(), 0.0);
        f.set(&[5, 5], 2.5).unwrap();
        assert_eq!(f.allocated_chunks(), 1);
        assert_eq!(f.get(&[5, 5]).unwrap(), 2.5);
        assert_eq!(f.get(&[5, 4]).unwrap(), 0.0, "same chunk, fill value");
        assert_eq!(f.get(&[0, 0]).unwrap(), 0.0, "unallocated chunk");
    }

    #[test]
    fn extension_is_metadata_only() {
        let fs = pfs();
        let mut f: Hdf5LikeFile<i64> =
            Hdf5LikeFile::create(&fs, "h", &[2, 2], &[4, 4], 256).unwrap();
        f.set(&[3, 3], 7).unwrap();
        let chunks_before = f.allocated_chunks();
        f.extend(1, 10).unwrap();
        f.extend(0, 2).unwrap();
        assert_eq!(f.bounds(), &[6, 14]);
        assert_eq!(f.allocated_chunks(), chunks_before);
        assert_eq!(f.get(&[3, 3]).unwrap(), 7);
        assert_eq!(f.get(&[5, 13]).unwrap(), 0);
        f.set(&[5, 13], 9).unwrap();
        assert_eq!(f.get(&[5, 13]).unwrap(), 9);
    }

    #[test]
    fn region_io_matches_reference() {
        let fs = pfs();
        let mut f: Hdf5LikeFile<i64> =
            Hdf5LikeFile::create(&fs, "h", &[2, 3], &[7, 8], 256).unwrap();
        let mut reference: drx_core::ExtendibleArray<i64> =
            drx_core::ExtendibleArray::new(&[2, 3], &[7, 8]).unwrap();
        let region = Region::new(vec![0, 0], vec![7, 8]).unwrap();
        let data: Vec<i64> = region.iter().map(|i| (i[0] * 100 + i[1]) as i64).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
        reference.write_region(&region, Layout::C, &data).unwrap();
        for (lo, hi) in [(vec![0, 0], vec![7, 8]), (vec![1, 2], vec![6, 7])] {
            let r = Region::new(lo, hi).unwrap();
            for layout in [Layout::C, Layout::Fortran] {
                assert_eq!(
                    f.read_region(&r, layout).unwrap(),
                    reference.read_region(&r, layout).unwrap()
                );
            }
        }
    }

    #[test]
    fn access_pays_btree_reads() {
        let fs = pfs();
        let mut f: Hdf5LikeFile<i64> =
            Hdf5LikeFile::create(&fs, "h", &[1, 1], &[64, 64], 128).unwrap();
        // Allocate many chunks so the tree is deep.
        for i in 0..64 {
            for j in 0..8 {
                f.set(&[i, j], 1).unwrap();
            }
        }
        f.reset_index_stats();
        f.get(&[63, 7]).unwrap();
        let s = f.index_stats();
        assert!(s.page_reads >= 2, "lookup must traverse the index, got {s:?}");
        assert!(f.index_bytes() > 0);
    }

    #[test]
    fn reopen_preserves_data_index_and_allocation_state() {
        let fs = pfs();
        {
            let mut f: Hdf5LikeFile<f64> =
                Hdf5LikeFile::create(&fs, "p", &[2, 2], &[6, 6], 256).unwrap();
            f.set(&[5, 5], 2.5).unwrap();
            f.extend(1, 4).unwrap();
            f.set(&[0, 9], -1.0).unwrap();
        }
        let mut f: Hdf5LikeFile<f64> = Hdf5LikeFile::open(&fs, "p").unwrap();
        assert_eq!(f.bounds(), &[6, 10]);
        assert_eq!(f.get(&[5, 5]).unwrap(), 2.5);
        assert_eq!(f.get(&[0, 9]).unwrap(), -1.0);
        assert_eq!(f.get(&[0, 0]).unwrap(), 0.0);
        let chunks = f.allocated_chunks();
        // New writes continue from the persisted slot counter (no clobber).
        f.set(&[3, 3], 9.0).unwrap();
        assert!(f.allocated_chunks() > chunks);
        assert_eq!(f.get(&[5, 5]).unwrap(), 2.5, "old chunk untouched");
        // Type mismatch and missing files error.
        assert!(Hdf5LikeFile::<i32>::open(&fs, "p").is_err());
        assert!(Hdf5LikeFile::<f64>::open(&fs, "missing").is_err());
    }

    #[test]
    fn bounds_are_enforced() {
        let fs = pfs();
        let mut f: Hdf5LikeFile<i32> =
            Hdf5LikeFile::create(&fs, "h", &[2, 2], &[4, 4], 256).unwrap();
        assert!(f.get(&[4, 0]).is_err());
        assert!(f.set(&[0, 4], 1).is_err());
        assert!(f.extend(2, 1).is_err());
        assert!(f.extend(0, 0).is_err());
        let r = Region::new(vec![0, 0], vec![5, 4]).unwrap();
        assert!(f.read_region(&r, Layout::C).is_err());
    }
}
