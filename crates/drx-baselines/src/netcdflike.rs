//! NetCDF-like record file: a self-describing header, then fixed-size
//! records along ONE unlimited dimension (dimension 0).
//!
//! "NetCDF['s] … data part consists of fixed size data … followed by data
//! record\[s\] of variables that have an expandable dimension. Only one
//! dimension is extendible." (paper §II-B). Extending the record dimension
//! appends; *changing any other dimension requires rewriting the whole
//! file* (netCDF's redefine-and-copy), which experiment E2 measures against
//! DRX's append-only extension.

use crate::error::{BaselineError, Result};
use crate::rowmajor::ExtendCost;
use drx_core::index::{offset_with_strides, row_major_strides, volume};
use drx_core::{dtype, Element, Layout, Region};
use drx_pfs::{Pfs, PfsFile};

const MAGIC: u32 = 0x4E43_4446; // "NCDF"
const HEADER_BYTES: u64 = 4 + 4 + 2 + 16 * 8; // magic, dtype, rank, dims

/// A record-structured array file with one unlimited dimension (dim 0).
pub struct NetcdfLikeFile<T: Element> {
    shape: Vec<usize>,
    file: PfsFile,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> NetcdfLikeFile<T> {
    pub fn create(pfs: &Pfs, name: &str, shape: &[usize]) -> Result<Self> {
        if shape.is_empty() || shape.len() > 16 || shape.contains(&0) {
            return Err(BaselineError::Invalid("bad shape".into()));
        }
        let file = pfs.create(name)?;
        let mut f =
            NetcdfLikeFile { shape: shape.to_vec(), file, _marker: std::marker::PhantomData };
        f.write_header()?;
        f.file.set_len(HEADER_BYTES + volume(shape) * T::SIZE as u64)?;
        Ok(f)
    }

    pub fn open(pfs: &Pfs, name: &str) -> Result<Self> {
        let file = pfs.open(name)?;
        let mut head = vec![0u8; HEADER_BYTES as usize];
        file.read_at(0, &mut head)?;
        if u32::from_le_bytes(head[0..4].try_into().unwrap()) != MAGIC {
            return Err(BaselineError::Corrupt("bad netcdf-like magic".into()));
        }
        let dtype = drx_core::DType::from_code(head[4])?;
        if dtype != T::DTYPE {
            return Err(BaselineError::Invalid(format!(
                "file holds {}, requested {}",
                dtype.name(),
                T::DTYPE.name()
            )));
        }
        let rank = u16::from_le_bytes(head[8..10].try_into().unwrap()) as usize;
        let mut shape = Vec::with_capacity(rank);
        for j in 0..rank {
            let off = 10 + j * 8;
            shape.push(u64::from_le_bytes(head[off..off + 8].try_into().unwrap()) as usize);
        }
        Ok(NetcdfLikeFile { shape, file, _marker: std::marker::PhantomData })
    }

    fn write_header(&mut self) -> Result<()> {
        let mut head = vec![0u8; HEADER_BYTES as usize];
        head[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        head[4] = T::DTYPE.code();
        head[8..10].copy_from_slice(&(self.shape.len() as u16).to_le_bytes());
        for (j, &n) in self.shape.iter().enumerate() {
            let off = 10 + j * 8;
            head[off..off + 8].copy_from_slice(&(n as u64).to_le_bytes());
        }
        self.file.write_at(0, &head)?;
        Ok(())
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Bytes per record (one index of the unlimited dimension).
    pub fn record_bytes(&self) -> u64 {
        volume(&self.shape[1..]) * T::SIZE as u64
    }

    fn offset_of(&self, index: &[usize]) -> Result<u64> {
        let q = drx_core::index::row_major_offset(index, &self.shape)?;
        Ok(HEADER_BYTES + q * T::SIZE as u64)
    }

    pub fn get(&self, index: &[usize]) -> Result<T> {
        let off = self.offset_of(index)?;
        let bytes = self.file.read_vec(off, T::SIZE)?;
        Ok(T::read_le(&bytes))
    }

    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.offset_of(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.file.write_at(off, &buf)?;
        Ok(())
    }

    /// Append `by` records (extend the unlimited dimension) — the one cheap
    /// growth direction.
    pub fn append_records(&mut self, by: usize) -> Result<ExtendCost> {
        self.shape[0] += by;
        self.write_header()?;
        self.file.set_len(HEADER_BYTES + volume(&self.shape) * T::SIZE as u64)?;
        Ok(ExtendCost { bytes_moved: 0, reorganized: false })
    }

    /// Extend a fixed dimension: redefine + full copy, the netCDF way. The
    /// entire data section is rewritten at new offsets.
    pub fn extend_fixed(&mut self, dim: usize, by: usize) -> Result<ExtendCost> {
        if dim == 0 {
            return self.append_records(by);
        }
        if dim >= self.shape.len() {
            return Err(BaselineError::Invalid(format!("dimension {dim} out of range")));
        }
        if by == 0 {
            return Err(BaselineError::Invalid("extension amount must be positive".into()));
        }
        let old_shape = self.shape.clone();
        let old_bytes = volume(&old_shape) * T::SIZE as u64;
        let old = self.file.read_vec(HEADER_BYTES, old_bytes as usize)?;
        let mut new_shape = old_shape.clone();
        new_shape[dim] += by;
        self.shape = new_shape.clone();
        self.write_header()?;
        self.file.set_len(HEADER_BYTES + volume(&new_shape) * T::SIZE as u64)?;
        // Rewrite every row at its new offset; zero the exposed cells.
        let old_strides = row_major_strides(&old_shape);
        let new_strides = row_major_strides(&new_shape);
        let k = old_shape.len();
        let run = old_shape[k - 1] * T::SIZE;
        let rows = Region::new(vec![0; k - 1], old_shape[..k - 1].to_vec())?;
        let mut moved = 0u64;
        for row in rows.iter().collect::<Vec<_>>().into_iter().rev() {
            let mut idx = row;
            idx.push(0);
            let old_off = offset_with_strides(&idx, &old_strides) as usize * T::SIZE;
            let new_off = HEADER_BYTES + offset_with_strides(&idx, &new_strides) * T::SIZE as u64;
            self.file.write_at(new_off, &old[old_off..old_off + run])?;
            moved += 2 * run as u64;
        }
        // Zero the newly exposed region.
        let mut lo = vec![0; k];
        lo[dim] = old_shape[dim];
        let region = Region::new(lo, new_shape)?;
        if !region.is_empty() {
            let zeros = vec![T::default(); region.volume() as usize];
            self.write_region(&region, Layout::C, &zeros)?;
        }
        Ok(ExtendCost { bytes_moved: moved + old_bytes, reorganized: true })
    }

    /// Read a region (row-contiguous runs along the last dimension).
    pub fn read_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        self.check_region(region)?;
        let extents = region.extents();
        let out_strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        if region.is_empty() {
            return Ok(out);
        }
        let strides = row_major_strides(&self.shape);
        let k = self.shape.len();
        let run = extents[k - 1];
        let rows = Region::new(region.lo()[..k - 1].to_vec(), region.hi()[..k - 1].to_vec());
        let rows: Vec<Vec<usize>> = match rows {
            Ok(r) => r.iter().collect(),
            Err(_) => vec![Vec::new()], // rank 1
        };
        for row in rows {
            let mut idx = row.clone();
            idx.push(region.lo()[k - 1]);
            let off = HEADER_BYTES + offset_with_strides(&idx, &strides) * T::SIZE as u64;
            let bytes = self.file.read_vec(off, run * T::SIZE)?;
            let vals: Vec<T> = dtype::decode_slice(&bytes)?;
            for (j, v) in vals.into_iter().enumerate() {
                let mut rel: Vec<usize> =
                    idx.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
                rel[k - 1] = j;
                out[offset_with_strides(&rel, &out_strides) as usize] = v;
            }
        }
        Ok(out)
    }

    /// Write a region from a dense buffer.
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        self.check_region(region)?;
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(BaselineError::Invalid("buffer size mismatch".into()));
        }
        if region.is_empty() {
            return Ok(());
        }
        let extents = region.extents();
        let in_strides = layout.strides(&extents);
        let strides = row_major_strides(&self.shape);
        let k = self.shape.len();
        let run = extents[k - 1];
        let rows = Region::new(region.lo()[..k - 1].to_vec(), region.hi()[..k - 1].to_vec());
        let rows: Vec<Vec<usize>> = match rows {
            Ok(r) => r.iter().collect(),
            Err(_) => vec![Vec::new()],
        };
        for row in rows {
            let mut idx = row.clone();
            idx.push(region.lo()[k - 1]);
            let mut vals = Vec::with_capacity(run);
            for j in 0..run {
                let mut rel: Vec<usize> =
                    idx.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
                rel[k - 1] = j;
                vals.push(data[offset_with_strides(&rel, &in_strides) as usize]);
            }
            let off = HEADER_BYTES + offset_with_strides(&idx, &strides) * T::SIZE as u64;
            self.file.write_at(off, &dtype::encode_slice(&vals))?;
        }
        Ok(())
    }

    fn check_region(&self, region: &Region) -> Result<()> {
        if region.rank() != self.shape.len()
            || region.hi().iter().zip(&self.shape).any(|(&h, &n)| h > n)
        {
            return Err(BaselineError::Invalid("region out of bounds".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::memory(2, 512).unwrap()
    }

    #[test]
    fn header_round_trips_through_reopen() {
        let fs = pfs();
        {
            let mut f: NetcdfLikeFile<f64> = NetcdfLikeFile::create(&fs, "n", &[3, 4, 5]).unwrap();
            f.set(&[2, 3, 4], 1.25).unwrap();
        }
        let f: NetcdfLikeFile<f64> = NetcdfLikeFile::open(&fs, "n").unwrap();
        assert_eq!(f.shape(), &[3, 4, 5]);
        assert_eq!(f.get(&[2, 3, 4]).unwrap(), 1.25);
        assert!(NetcdfLikeFile::<i32>::open(&fs, "n").is_err(), "dtype mismatch");
    }

    #[test]
    fn record_append_is_cheap() {
        let fs = pfs();
        let mut f: NetcdfLikeFile<i64> = NetcdfLikeFile::create(&fs, "n", &[2, 4]).unwrap();
        f.set(&[1, 3], 5).unwrap();
        let cost = f.append_records(10).unwrap();
        assert_eq!(cost.bytes_moved, 0);
        assert_eq!(f.shape(), &[12, 4]);
        assert_eq!(f.get(&[1, 3]).unwrap(), 5);
        assert_eq!(f.get(&[11, 3]).unwrap(), 0);
        assert_eq!(f.record_bytes(), 32);
    }

    #[test]
    fn fixed_dim_extension_rewrites_everything() {
        let fs = pfs();
        let mut f: NetcdfLikeFile<i64> = NetcdfLikeFile::create(&fs, "n", &[3, 4]).unwrap();
        let region = Region::new(vec![0, 0], vec![3, 4]).unwrap();
        let data: Vec<i64> = (0..12).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
        let cost = f.extend_fixed(1, 2).unwrap();
        assert!(cost.reorganized);
        assert!(cost.bytes_moved >= 12 * 8);
        assert_eq!(f.shape(), &[3, 6]);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(f.get(&[i, j]).unwrap(), (i * 4 + j) as i64, "({i},{j})");
            }
            for j in 4..6 {
                assert_eq!(f.get(&[i, j]).unwrap(), 0);
            }
        }
    }

    #[test]
    fn region_io_in_both_layouts() {
        let fs = pfs();
        let mut f: NetcdfLikeFile<i64> = NetcdfLikeFile::create(&fs, "n", &[4, 4]).unwrap();
        let region = Region::new(vec![1, 1], vec![3, 4]).unwrap();
        let data: Vec<i64> = (0..6).collect();
        f.write_region(&region, Layout::Fortran, &data).unwrap();
        assert_eq!(f.read_region(&region, Layout::Fortran).unwrap(), data);
        // Fortran order of a 2×3 region: idx (1+i, 1+j) = data[j*2 + i].
        assert_eq!(f.get(&[1, 1]).unwrap(), 0);
        assert_eq!(f.get(&[2, 1]).unwrap(), 1);
        assert_eq!(f.get(&[1, 2]).unwrap(), 2);
    }

    #[test]
    fn one_dimensional_records() {
        let fs = pfs();
        let mut f: NetcdfLikeFile<f32> = NetcdfLikeFile::create(&fs, "v", &[5]).unwrap();
        f.set(&[4], 2.0).unwrap();
        f.append_records(5).unwrap();
        assert_eq!(f.get(&[4]).unwrap(), 2.0);
        let r = Region::new(vec![2], vec![6]).unwrap();
        let vals = f.read_region(&r, Layout::C).unwrap();
        assert_eq!(vals, vec![0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn bounds_checks() {
        let fs = pfs();
        let mut f: NetcdfLikeFile<i32> = NetcdfLikeFile::create(&fs, "n", &[2, 2]).unwrap();
        assert!(f.get(&[2, 0]).is_err());
        assert!(f.extend_fixed(5, 1).is_err());
        assert!(f.extend_fixed(1, 0).is_err());
        assert!(NetcdfLikeFile::<i32>::create(&fs, "bad", &[0, 2]).is_err());
    }
}
