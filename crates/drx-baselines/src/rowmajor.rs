//! Conventional row-major array file — the baseline the paper argues
//! against (§I): "an array file that is organized in say row-major order
//! causes applications that subsequently access the data in column-major
//! order to have abysmal performance. Secondly, any subsequent expansion of
//! the array file is limited to only one dimension. Expansions … along
//! arbitrary dimensions require storage reorganization that can be very
//! expensive."
//!
//! Elements are mapped by Eq. (3): `q = Σ i_j·C_j`, `C_j = ∏_{r>j} N_r`.
//! Extending dimension 0 appends; extending any other dimension triggers a
//! full reorganization whose cost ([`ExtendCost`]) experiment E2 measures.

use drx_core::index::{offset_with_strides, row_major_strides, volume};
use drx_core::{dtype, Element, Layout, Region};
use drx_pfs::{Pfs, PfsFile};

use crate::error::{BaselineError, Result};

/// Cost accounting for one extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtendCost {
    /// Bytes read + written to move existing elements (0 for appends).
    pub bytes_moved: u64,
    /// Whether a full-file reorganization was required.
    pub reorganized: bool,
}

/// A dense array stored in one file in row-major order.
pub struct RowMajorFile<T: Element> {
    shape: Vec<usize>,
    file: PfsFile,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> RowMajorFile<T> {
    pub fn create(pfs: &Pfs, name: &str, shape: &[usize]) -> Result<Self> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(BaselineError::Invalid("shape extents must be positive".into()));
        }
        let file = pfs.create(name)?;
        file.set_len(volume(shape) * T::SIZE as u64)?;
        Ok(RowMajorFile { shape: shape.to_vec(), file, _marker: std::marker::PhantomData })
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn len_elements(&self) -> u64 {
        volume(&self.shape)
    }

    fn offset_of(&self, index: &[usize]) -> Result<u64> {
        Ok(drx_core::index::row_major_offset(index, &self.shape)? * T::SIZE as u64)
    }

    pub fn get(&self, index: &[usize]) -> Result<T> {
        let off = self.offset_of(index)?;
        let bytes = self.file.read_vec(off, T::SIZE)?;
        Ok(T::read_le(&bytes))
    }

    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.offset_of(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.file.write_at(off, &buf)?;
        Ok(())
    }

    /// Read a rectilinear region into the requested memory layout. Rows
    /// along the last dimension are contiguous runs in the file; reading in
    /// any other order degenerates to strided requests — the access-order
    /// effect of experiment E3.
    pub fn read_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        self.check_region(region)?;
        let extents = region.extents();
        let out_strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        let k = self.shape.len();
        let file_strides = row_major_strides(&self.shape);
        // Read row-by-row (contiguous runs along the last dimension).
        let run = extents[k - 1];
        if run == 0 || region.is_empty() {
            return Ok(out);
        }
        let mut row_lo = region.lo().to_vec();
        loop {
            let off = offset_with_strides(&row_lo, &file_strides) * T::SIZE as u64;
            let bytes = self.file.read_vec(off, run * T::SIZE)?;
            let vals: Vec<T> = dtype::decode_slice(&bytes)?;
            for (j, v) in vals.into_iter().enumerate() {
                let mut rel: Vec<usize> =
                    row_lo.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
                rel[k - 1] += j;
                let pos = offset_with_strides(&rel, &out_strides) as usize;
                out[pos] = v;
            }
            // Advance to the next row.
            let mut d = k - 1;
            loop {
                if d == 0 {
                    return Ok(out);
                }
                d -= 1;
                row_lo[d] += 1;
                if row_lo[d] < region.hi()[d] {
                    break;
                }
                row_lo[d] = region.lo()[d];
                if d == 0 {
                    return Ok(out);
                }
            }
        }
    }

    /// Write a region from a dense buffer in the given layout.
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        self.check_region(region)?;
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(BaselineError::Invalid(format!(
                "buffer has {} elements for a {n}-element region",
                data.len()
            )));
        }
        let extents = region.extents();
        let in_strides = layout.strides(&extents);
        let file_strides = row_major_strides(&self.shape);
        let k = self.shape.len();
        let run = extents[k - 1];
        if run == 0 || region.is_empty() {
            return Ok(());
        }
        let mut row_lo = region.lo().to_vec();
        loop {
            let mut row: Vec<T> = Vec::with_capacity(run);
            for j in 0..run {
                let mut rel: Vec<usize> =
                    row_lo.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
                rel[k - 1] += j;
                row.push(data[offset_with_strides(&rel, &in_strides) as usize]);
            }
            let off = offset_with_strides(&row_lo, &file_strides) * T::SIZE as u64;
            self.file.write_at(off, &dtype::encode_slice(&row))?;
            let mut d = k - 1;
            loop {
                if d == 0 {
                    return Ok(());
                }
                d -= 1;
                row_lo[d] += 1;
                if row_lo[d] < region.hi()[d] {
                    break;
                }
                row_lo[d] = region.lo()[d];
                if d == 0 {
                    return Ok(());
                }
            }
        }
    }

    /// Extend dimension `dim` by `by` indices.
    ///
    /// * `dim == 0`: pure append (the one cheap case a conventional array
    ///   file supports).
    /// * `dim > 0`: full reorganization — every element whose address
    ///   changes is read at its old offset and rewritten at its new one,
    ///   back to front so the file can be rewritten in place.
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<ExtendCost> {
        if dim >= self.shape.len() {
            return Err(BaselineError::Invalid(format!("dimension {dim} out of range")));
        }
        if by == 0 {
            return Err(BaselineError::Invalid("extension amount must be positive".into()));
        }
        if dim == 0 {
            self.shape[0] += by;
            self.file.set_len(volume(&self.shape) * T::SIZE as u64)?;
            return Ok(ExtendCost { bytes_moved: 0, reorganized: false });
        }
        // Reorganize: stream the old content out and back in at the new
        // offsets. Old rows (runs along the last dimension, or sub-rows if
        // dim == k-1) keep their internal order; only their base offsets
        // change.
        let old_shape = self.shape.clone();
        let mut new_shape = self.shape.clone();
        new_shape[dim] += by;
        let esize = T::SIZE as u64;
        let old_bytes = volume(&old_shape) * esize;
        // Read the full old payload (out-of-core streaming would chunk this;
        // the byte counts — what E2 reports — are identical).
        let old = self.file.read_vec(0, old_bytes as usize)?;
        self.file.set_len(volume(&new_shape) * esize)?;
        let old_strides = row_major_strides(&old_shape);
        let new_strides = row_major_strides(&new_shape);
        let k = old_shape.len();
        let run = old_shape[k - 1];
        // Iterate rows back to front so in-place rewriting never clobbers
        // unread data (new offsets are always >= old offsets when extending).
        let rows: Vec<Vec<usize>> = {
            let row_region = Region::new(vec![0; k - 1], old_shape[..k - 1].to_vec())?;
            row_region.iter().collect()
        };
        let mut moved = 0u64;
        for row in rows.iter().rev() {
            let mut idx = row.clone();
            idx.push(0);
            let old_off = offset_with_strides(&idx, &old_strides) * esize;
            let new_off = offset_with_strides(&idx, &new_strides) * esize;
            if old_off != new_off {
                let chunk = &old[old_off as usize..(old_off + run as u64 * esize) as usize];
                self.file.write_at(new_off, chunk)?;
                moved += 2 * run as u64 * esize; // read + write
            }
        }
        // Zero the newly exposed gaps (elements with index >= old bound in
        // `dim` read as default).
        self.shape = new_shape;
        self.zero_new_region(dim, old_shape[dim])?;
        Ok(ExtendCost { bytes_moved: moved + old_bytes, reorganized: true })
    }

    /// Zero every element with `index[dim] >= from` (newly exposed cells).
    fn zero_new_region(&mut self, dim: usize, from: usize) -> Result<()> {
        let mut lo = vec![0; self.shape.len()];
        lo[dim] = from;
        let region = Region::new(lo, self.shape.clone())?;
        if region.is_empty() {
            return Ok(());
        }
        let zeros = vec![T::default(); region.volume() as usize];
        self.write_region(&region, Layout::C, &zeros)
    }

    fn check_region(&self, region: &Region) -> Result<()> {
        if region.rank() != self.shape.len() {
            return Err(BaselineError::Invalid("region rank mismatch".into()));
        }
        for (&h, &n) in region.hi().iter().zip(&self.shape) {
            if h > n {
                return Err(BaselineError::Invalid(format!(
                    "region {:?} exceeds shape {:?}",
                    region.hi(),
                    self.shape
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::memory(2, 512).unwrap()
    }

    fn tag(idx: &[usize]) -> i64 {
        idx.iter().fold(11i64, |a, &i| a * 101 + i as i64)
    }

    fn fill(f: &mut RowMajorFile<i64>) {
        let shape = f.shape().to_vec();
        let region = Region::new(vec![0; shape.len()], shape).unwrap();
        let data: Vec<i64> = region.iter().map(|i| tag(&i)).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
    }

    #[test]
    fn get_set_round_trip() {
        let fs = pfs();
        let mut f: RowMajorFile<i64> = RowMajorFile::create(&fs, "rm", &[4, 5]).unwrap();
        f.set(&[2, 3], 42).unwrap();
        assert_eq!(f.get(&[2, 3]).unwrap(), 42);
        assert_eq!(f.get(&[0, 0]).unwrap(), 0);
        assert!(f.get(&[4, 0]).is_err());
    }

    #[test]
    fn read_region_layouts() {
        let fs = pfs();
        let mut f: RowMajorFile<i64> = RowMajorFile::create(&fs, "rm", &[3, 4]).unwrap();
        fill(&mut f);
        let region = Region::new(vec![1, 1], vec![3, 3]).unwrap();
        let c = f.read_region(&region, Layout::C).unwrap();
        assert_eq!(c, vec![tag(&[1, 1]), tag(&[1, 2]), tag(&[2, 1]), tag(&[2, 2])]);
        let fo = f.read_region(&region, Layout::Fortran).unwrap();
        assert_eq!(fo, vec![tag(&[1, 1]), tag(&[2, 1]), tag(&[1, 2]), tag(&[2, 2])]);
    }

    #[test]
    fn dim0_extension_is_free() {
        let fs = pfs();
        let mut f: RowMajorFile<i64> = RowMajorFile::create(&fs, "rm", &[3, 4]).unwrap();
        fill(&mut f);
        let cost = f.extend(0, 2).unwrap();
        assert_eq!(cost, ExtendCost { bytes_moved: 0, reorganized: false });
        assert_eq!(f.shape(), &[5, 4]);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(f.get(&[i, j]).unwrap(), tag(&[i, j]));
            }
        }
        assert_eq!(f.get(&[4, 3]).unwrap(), 0);
    }

    #[test]
    fn dim1_extension_reorganizes_but_preserves_data() {
        let fs = pfs();
        let mut f: RowMajorFile<i64> = RowMajorFile::create(&fs, "rm", &[3, 4]).unwrap();
        fill(&mut f);
        let cost = f.extend(1, 2).unwrap();
        assert!(cost.reorganized);
        assert!(cost.bytes_moved > 0);
        assert_eq!(f.shape(), &[3, 6]);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(f.get(&[i, j]).unwrap(), tag(&[i, j]), "({i},{j})");
            }
            for j in 4..6 {
                assert_eq!(f.get(&[i, j]).unwrap(), 0, "new ({i},{j})");
            }
        }
    }

    #[test]
    fn middle_dim_extension_3d() {
        let fs = pfs();
        let mut f: RowMajorFile<i64> = RowMajorFile::create(&fs, "rm", &[2, 3, 4]).unwrap();
        fill(&mut f);
        let cost = f.extend(1, 1).unwrap();
        assert!(cost.reorganized);
        assert_eq!(f.shape(), &[2, 4, 4]);
        for i in 0..2 {
            for j in 0..3 {
                for l in 0..4 {
                    assert_eq!(f.get(&[i, j, l]).unwrap(), tag(&[i, j, l]), "({i},{j},{l})");
                }
            }
            for l in 0..4 {
                assert_eq!(f.get(&[i, 3, l]).unwrap(), 0);
            }
        }
    }

    #[test]
    fn reorganization_cost_grows_with_array_size() {
        let fs = pfs();
        let mut small: RowMajorFile<f64> = RowMajorFile::create(&fs, "s", &[8, 8]).unwrap();
        let mut large: RowMajorFile<f64> = RowMajorFile::create(&fs, "l", &[32, 32]).unwrap();
        let cs = small.extend(1, 1).unwrap();
        let cl = large.extend(1, 1).unwrap();
        assert!(cl.bytes_moved > cs.bytes_moved * 8);
    }

    #[test]
    fn last_dim_extension_of_1d_is_append() {
        let fs = pfs();
        let mut f: RowMajorFile<i32> = RowMajorFile::create(&fs, "v", &[5]).unwrap();
        f.set(&[4], 7).unwrap();
        let cost = f.extend(0, 3).unwrap();
        assert!(!cost.reorganized);
        assert_eq!(f.get(&[4]).unwrap(), 7);
    }
}
