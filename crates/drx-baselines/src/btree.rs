//! A disk-page B-tree mapping chunk coordinates to file addresses — the
//! index structure HDF5 uses for its chunked, extendible datasets ("HDF5
//! achieves extendibility through array chunking with the chunks indexed by
//! a B-Tree indexing method", paper §I).
//!
//! Keys are fixed-rank `u64` coordinate tuples compared lexicographically
//! (HDF5's chunk B-tree keys are chunk offsets); values are `u64` chunk
//! addresses. Nodes are fixed-size pages in a PFS file, so every traversal
//! costs real page reads — the lookup cost that the computed-access `F*`
//! avoids (experiment E1).

use crate::error::{BaselineError, Result};
use drx_pfs::PfsFile;
use std::cell::Cell;

const MAGIC: u32 = 0x4254_5245; // "BTRE"

/// Logical I/O counters of one tree (page granularity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtreeStats {
    pub page_reads: u64,
    pub page_writes: u64,
}

/// A B-tree stored in fixed-size pages of a PFS file.
///
/// ```
/// use drx_baselines::Btree;
/// use drx_pfs::Pfs;
///
/// let pfs = Pfs::memory(1, 4096).unwrap();
/// let mut tree = Btree::create(pfs.create("idx").unwrap(), 2, 256).unwrap();
/// tree.insert(&[3, 1], 42).unwrap();
/// assert_eq!(tree.get(&[3, 1]).unwrap(), Some(42));
/// assert_eq!(tree.get(&[0, 0]).unwrap(), None);
/// ```
pub struct Btree {
    file: PfsFile,
    rank: usize,
    page_size: usize,
    root: u64,
    pages: u64,
    reads: Cell<u64>,
    writes: Cell<u64>,
}

enum Node {
    Leaf { keys: Vec<Vec<u64>>, values: Vec<u64> },
    Internal { keys: Vec<Vec<u64>>, children: Vec<u64> },
}

/// Result of inserting into a subtree: the child split into two, promoting
/// `key` with `right` as the new sibling page.
struct Split {
    key: Vec<u64>,
    right: u64,
}

impl Btree {
    /// Create an empty tree with keys of `rank` coordinates.
    pub fn create(file: PfsFile, rank: usize, page_size: usize) -> Result<Btree> {
        if rank == 0 || page_size < 64 {
            return Err(BaselineError::Invalid("rank >= 1 and page_size >= 64 required".into()));
        }
        let mut t = Btree {
            file,
            rank,
            page_size,
            root: 1,
            pages: 2,
            reads: Cell::new(0),
            writes: Cell::new(0),
        };
        if t.leaf_capacity() < 3 || t.internal_capacity() < 3 {
            return Err(BaselineError::Invalid(format!(
                "page size {page_size} too small for rank {rank} keys"
            )));
        }
        t.write_node(1, &Node::Leaf { keys: Vec::new(), values: Vec::new() })?;
        t.write_meta()?;
        Ok(t)
    }

    /// Open an existing tree.
    pub fn open(file: PfsFile) -> Result<Btree> {
        let mut head = vec![0u8; 40];
        file.read_at(0, &mut head)?;
        let magic = u32::from_le_bytes(head[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(BaselineError::Corrupt("bad btree magic".into()));
        }
        let rank = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
        let page_size = u64::from_le_bytes(head[8..16].try_into().unwrap()) as usize;
        let root = u64::from_le_bytes(head[16..24].try_into().unwrap());
        let pages = u64::from_le_bytes(head[24..32].try_into().unwrap());
        Ok(Btree { file, rank, page_size, root, pages, reads: Cell::new(0), writes: Cell::new(0) })
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn stats(&self) -> BtreeStats {
        BtreeStats { page_reads: self.reads.get(), page_writes: self.writes.get() }
    }

    pub fn reset_stats(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// Number of allocated pages (meta page included) — the index storage
    /// overhead E2/E9 report.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    pub fn bytes(&self) -> u64 {
        self.pages * self.page_size as u64
    }

    fn key_bytes(&self) -> usize {
        self.rank * 8
    }

    fn leaf_capacity(&self) -> usize {
        (self.page_size - 8) / (self.key_bytes() + 8)
    }

    fn internal_capacity(&self) -> usize {
        (self.page_size - 16) / (self.key_bytes() + 8)
    }

    fn write_meta(&mut self) -> Result<()> {
        let mut buf = vec![0u8; 40];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&(self.rank as u32).to_le_bytes());
        buf[8..16].copy_from_slice(&(self.page_size as u64).to_le_bytes());
        buf[16..24].copy_from_slice(&self.root.to_le_bytes());
        buf[24..32].copy_from_slice(&self.pages.to_le_bytes());
        self.file.write_at(0, &buf)?;
        Ok(())
    }

    fn alloc_page(&mut self) -> u64 {
        let id = self.pages;
        self.pages += 1;
        id
    }

    fn read_node(&self, page: u64) -> Result<Node> {
        self.reads.set(self.reads.get() + 1);
        let off = page * self.page_size as u64;
        // Pages may be sparse (never fully written); ensure logical length.
        let mut buf = vec![0u8; self.page_size];
        let flen = self.file.len();
        let need = off + self.page_size as u64;
        let take = if need <= flen { self.page_size } else { (flen.saturating_sub(off)) as usize };
        if take > 0 {
            self.file.read_at(off, &mut buf[..take])?;
        }
        let is_leaf = buf[0] == 1;
        let n = u16::from_le_bytes(buf[1..3].try_into().unwrap()) as usize;
        let kb = self.key_bytes();
        let mut pos = 8usize;
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            let key: Vec<u64> = buf[pos..pos + kb]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            keys.push(key);
            pos += kb;
        }
        if is_leaf {
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()));
                pos += 8;
            }
            Ok(Node::Leaf { keys, values })
        } else {
            let mut children = Vec::with_capacity(n + 1);
            for _ in 0..=n {
                children.push(u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()));
                pos += 8;
            }
            Ok(Node::Internal { keys, children })
        }
    }

    fn write_node(&mut self, page: u64, node: &Node) -> Result<()> {
        self.writes.set(self.writes.get() + 1);
        let mut buf = vec![0u8; self.page_size];
        let (is_leaf, keys) = match node {
            Node::Leaf { keys, .. } => (1u8, keys),
            Node::Internal { keys, .. } => (0u8, keys),
        };
        buf[0] = is_leaf;
        buf[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
        let mut pos = 8usize;
        for key in keys {
            for &k in key {
                buf[pos..pos + 8].copy_from_slice(&k.to_le_bytes());
                pos += 8;
            }
        }
        match node {
            Node::Leaf { values, .. } => {
                for &v in values {
                    buf[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
                    pos += 8;
                }
            }
            Node::Internal { children, .. } => {
                for &c in children {
                    buf[pos..pos + 8].copy_from_slice(&c.to_le_bytes());
                    pos += 8;
                }
            }
        }
        self.file.write_at(page * self.page_size as u64, &buf)?;
        Ok(())
    }

    fn check_key(&self, key: &[u64]) -> Result<()> {
        if key.len() != self.rank {
            return Err(BaselineError::Invalid(format!(
                "key rank {} != tree rank {}",
                key.len(),
                self.rank
            )));
        }
        Ok(())
    }

    /// Look up a key; `None` when absent.
    pub fn get(&self, key: &[u64]) -> Result<Option<u64>> {
        self.check_key(key)?;
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Leaf { keys, values } => {
                    return Ok(match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => Some(values[i]),
                        Err(_) => None,
                    });
                }
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[i];
                }
            }
        }
    }

    /// Insert or update a key.
    pub fn insert(&mut self, key: &[u64], value: u64) -> Result<()> {
        self.check_key(key)?;
        let root = self.root;
        if let Some(split) = self.insert_rec(root, key, value)? {
            // Grow the tree: new root with two children.
            let new_root = self.alloc_page();
            let node = Node::Internal { keys: vec![split.key], children: vec![root, split.right] };
            self.write_node(new_root, &node)?;
            self.root = new_root;
        }
        self.write_meta()
    }

    fn insert_rec(&mut self, page: u64, key: &[u64], value: u64) -> Result<Option<Split>> {
        match self.read_node(page)? {
            Node::Leaf { mut keys, mut values } => {
                match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => values[i] = value,
                    Err(i) => {
                        keys.insert(i, key.to_vec());
                        values.insert(i, value);
                    }
                }
                if keys.len() <= self.leaf_capacity() {
                    self.write_node(page, &Node::Leaf { keys, values })?;
                    return Ok(None);
                }
                // Split the leaf.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_values = values.split_off(mid);
                let promote = right_keys[0].clone();
                let right = self.alloc_page();
                self.write_node(page, &Node::Leaf { keys, values })?;
                self.write_node(right, &Node::Leaf { keys: right_keys, values: right_values })?;
                Ok(Some(Split { key: promote, right }))
            }
            Node::Internal { mut keys, mut children } => {
                let i = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[i];
                let Some(split) = self.insert_rec(child, key, value)? else {
                    return Ok(None);
                };
                keys.insert(i, split.key);
                children.insert(i + 1, split.right);
                if keys.len() <= self.internal_capacity() {
                    self.write_node(page, &Node::Internal { keys, children })?;
                    return Ok(None);
                }
                // Split the internal node; the median key moves up.
                let mid = keys.len() / 2;
                let promote = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove the promoted key
                let right_children = children.split_off(mid + 1);
                let right = self.alloc_page();
                self.write_node(page, &Node::Internal { keys, children })?;
                self.write_node(
                    right,
                    &Node::Internal { keys: right_keys, children: right_children },
                )?;
                Ok(Some(Split { key: promote, right }))
            }
        }
    }

    /// Number of stored entries (full scan; test/diagnostic helper).
    pub fn len(&self) -> Result<u64> {
        self.count(self.root)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    fn count(&self, page: u64) -> Result<u64> {
        match self.read_node(page)? {
            Node::Leaf { keys, .. } => Ok(keys.len() as u64),
            Node::Internal { children, .. } => {
                let mut n = 0;
                for c in children {
                    n += self.count(c)?;
                }
                Ok(n)
            }
        }
    }

    /// Tree depth (root = 1); the lookup cost in page reads.
    pub fn depth(&self) -> Result<u32> {
        let mut d = 1;
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Leaf { .. } => return Ok(d),
                Node::Internal { children, .. } => {
                    page = children[0];
                    d += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drx_pfs::Pfs;

    fn tree(page_size: usize) -> Btree {
        let pfs = Pfs::memory(2, 4096).unwrap();
        let f = pfs.create("idx").unwrap();
        Btree::create(f, 2, page_size).unwrap()
    }

    #[test]
    fn insert_get_round_trip() {
        let mut t = tree(256);
        for i in 0..50u64 {
            for j in 0..4u64 {
                t.insert(&[i, j], i * 100 + j).unwrap();
            }
        }
        for i in 0..50u64 {
            for j in 0..4u64 {
                assert_eq!(t.get(&[i, j]).unwrap(), Some(i * 100 + j), "({i},{j})");
            }
        }
        assert_eq!(t.get(&[50, 0]).unwrap(), None);
        assert_eq!(t.len().unwrap(), 200);
        assert!(t.depth().unwrap() >= 2, "tree must have split");
    }

    #[test]
    fn update_overwrites() {
        let mut t = tree(256);
        t.insert(&[1, 1], 10).unwrap();
        t.insert(&[1, 1], 20).unwrap();
        assert_eq!(t.get(&[1, 1]).unwrap(), Some(20));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn lexicographic_order_of_coordinates() {
        let mut t = tree(256);
        t.insert(&[2, 0], 1).unwrap();
        t.insert(&[1, 9], 2).unwrap();
        t.insert(&[1, 0], 3).unwrap();
        // (1,0) < (1,9) < (2,0) lexicographically.
        assert_eq!(t.get(&[1, 0]).unwrap(), Some(3));
        assert_eq!(t.get(&[1, 9]).unwrap(), Some(2));
        assert_eq!(t.get(&[2, 0]).unwrap(), Some(1));
    }

    #[test]
    fn random_insert_order() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut t = tree(128); // tiny pages force deep trees
        let mut keys: Vec<[u64; 2]> = (0..30).flat_map(|i| (0..30).map(move |j| [i, j])).collect();
        keys.shuffle(&mut rng);
        for (v, k) in keys.iter().enumerate() {
            t.insert(k, v as u64).unwrap();
        }
        for (v, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k).unwrap(), Some(v as u64));
        }
        assert_eq!(t.len().unwrap(), 900);
        assert!(t.depth().unwrap() >= 3);
    }

    #[test]
    fn persistence_through_reopen() {
        let pfs = Pfs::memory(2, 4096).unwrap();
        {
            let f = pfs.create("idx").unwrap();
            let mut t = Btree::create(f, 3, 256).unwrap();
            for i in 0..100u64 {
                t.insert(&[i, i * 2, i * 3], i).unwrap();
            }
        }
        let t = Btree::open(pfs.open("idx").unwrap()).unwrap();
        assert_eq!(t.rank(), 3);
        for i in 0..100u64 {
            assert_eq!(t.get(&[i, i * 2, i * 3]).unwrap(), Some(i));
        }
        // Corrupt magic is rejected.
        let g = pfs.open("idx").unwrap();
        g.write_at(0, &[0xFF; 4]).unwrap();
        assert!(matches!(Btree::open(g), Err(BaselineError::Corrupt(_))));
    }

    #[test]
    fn stats_count_page_io() {
        let mut t = tree(256);
        t.reset_stats();
        t.insert(&[0, 0], 1).unwrap();
        let s = t.stats();
        assert!(s.page_reads >= 1 && s.page_writes >= 1);
        t.reset_stats();
        t.get(&[0, 0]).unwrap();
        assert_eq!(t.stats().page_writes, 0);
        assert!(t.stats().page_reads >= 1);
    }

    #[test]
    fn lookup_cost_grows_logarithmically() {
        let mut t = tree(128);
        for i in 0..2000u64 {
            t.insert(&[i, 0], i).unwrap();
        }
        let depth = t.depth().unwrap();
        t.reset_stats();
        t.get(&[999, 0]).unwrap();
        assert_eq!(t.stats().page_reads as u32, depth);
        assert!(depth >= 3, "2000 keys in 128-byte pages must be deep");
    }

    #[test]
    fn rejects_bad_parameters() {
        let pfs = Pfs::memory(1, 1024).unwrap();
        let f = pfs.create("x").unwrap();
        assert!(Btree::create(f, 0, 256).is_err());
        let f = pfs.create("y").unwrap();
        assert!(Btree::create(f, 2, 32).is_err());
        let f = pfs.create("z").unwrap();
        let t = Btree::create(f, 2, 256).unwrap();
        assert!(t.get(&[1]).is_err());
    }
}
