//! DRA-like chunked array file — a miniature of the Disk Resident Arrays
//! library (Nieplocha & Foster), "the persistent storage counterpart of the
//! memory resident Global-Array" that DRX-MP is designed to replace
//! (paper §I, §II-B).
//!
//! Like DRX, a DRA stores the array as fixed-shape chunks with *computed*
//! chunk addresses — but the chunk grid is addressed in plain row-major
//! order over bounds fixed at creation time. Consequence: only dimension 0
//! can grow without reorganization (appending whole chunk-rows keeps
//! row-major addresses stable); growing any other dimension invalidates
//! every chunk address after the first chunk-row, forcing a chunk-level
//! reorganization that the paper's `F*` eliminates.

use crate::error::{BaselineError, Result};
use crate::rowmajor::ExtendCost;
use drx_core::index::{offset_with_strides, row_major_strides};
use drx_core::{dtype, Chunking, Element, Layout, Region};
use drx_pfs::{Pfs, PfsFile};

/// A chunked array file with row-major chunk addressing over a fixed grid.
pub struct DraLikeFile<T: Element> {
    chunking: Chunking,
    /// Element bounds (dimension 0 may grow).
    bounds: Vec<usize>,
    /// Chunk-grid bounds (`⌈bounds/chunk⌉`).
    grid: Vec<usize>,
    file: PfsFile,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> DraLikeFile<T> {
    pub fn create(pfs: &Pfs, name: &str, chunk_shape: &[usize], bounds: &[usize]) -> Result<Self> {
        let chunking = Chunking::new(chunk_shape)?;
        if bounds.len() != chunking.rank() || bounds.contains(&0) {
            return Err(BaselineError::Invalid("bad bounds".into()));
        }
        let grid = chunking.grid_for(bounds)?;
        let file = pfs.create(name)?;
        let f = DraLikeFile {
            chunking,
            bounds: bounds.to_vec(),
            grid,
            file,
            _marker: std::marker::PhantomData,
        };
        f.file.set_len(f.total_chunks() * f.chunk_bytes())?;
        Ok(f)
    }

    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    pub fn grid(&self) -> &[usize] {
        &self.grid
    }

    pub fn total_chunks(&self) -> u64 {
        self.grid.iter().map(|&g| g as u64).product()
    }

    pub fn chunk_bytes(&self) -> u64 {
        self.chunking.chunk_elems() * T::SIZE as u64
    }

    /// Row-major chunk address over the *current* grid bounds.
    pub fn chunk_address(&self, chunk: &[usize]) -> Result<u64> {
        Ok(drx_core::index::row_major_offset(chunk, &self.grid)?)
    }

    fn locate(&self, index: &[usize]) -> Result<u64> {
        if index.len() != self.bounds.len() || index.iter().zip(&self.bounds).any(|(&i, &n)| i >= n)
        {
            return Err(BaselineError::Invalid(format!(
                "index {index:?} out of bounds {:?}",
                self.bounds
            )));
        }
        let (chunk, within) = self.chunking.split(index)?;
        let addr = self.chunk_address(&chunk)?;
        Ok(addr * self.chunk_bytes() + self.chunking.within_offset(&within) * T::SIZE as u64)
    }

    pub fn get(&self, index: &[usize]) -> Result<T> {
        let off = self.locate(index)?;
        let bytes = self.file.read_vec(off, T::SIZE)?;
        Ok(T::read_le(&bytes))
    }

    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.locate(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.file.write_at(off, &buf)?;
        Ok(())
    }

    /// Extend dimension 0 by `by` elements: whole chunk-rows append, chunk
    /// addresses are stable (this is the one direction DRA handles well).
    pub fn extend_dim0(&mut self, by: usize) -> Result<ExtendCost> {
        self.bounds[0] += by;
        let needed = self.bounds[0].div_ceil(self.chunking.shape()[0]);
        if needed > self.grid[0] {
            self.grid[0] = needed;
            self.file.set_len(self.total_chunks() * self.chunk_bytes())?;
        }
        Ok(ExtendCost { bytes_moved: 0, reorganized: false })
    }

    /// Extend dimension `dim > 0`: chunk-level reorganization. Every chunk
    /// whose row-major address changes under the new grid is read at its old
    /// slot and rewritten at its new one (back to front).
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<ExtendCost> {
        if dim >= self.bounds.len() {
            return Err(BaselineError::Invalid(format!("dimension {dim} out of range")));
        }
        if by == 0 {
            return Err(BaselineError::Invalid("extension amount must be positive".into()));
        }
        if dim == 0 {
            return self.extend_dim0(by);
        }
        let old_grid = self.grid.clone();
        self.bounds[dim] += by;
        let new_needed = self.bounds[dim].div_ceil(self.chunking.shape()[dim]);
        if new_needed == old_grid[dim] {
            // Still fits in the existing edge chunks: metadata only.
            return Ok(ExtendCost { bytes_moved: 0, reorganized: false });
        }
        let mut new_grid = old_grid.clone();
        new_grid[dim] = new_needed;
        let cb = self.chunk_bytes();
        let old_strides = row_major_strides(&old_grid);
        let new_strides = row_major_strides(&new_grid);
        let new_total: u64 = new_grid.iter().map(|&g| g as u64).product();
        self.file.set_len(new_total * cb)?;
        // Move chunks back to front so no unread chunk is overwritten
        // (row-major addresses only increase when a trailing dim grows).
        let old_chunks: Vec<Vec<usize>> = Region::of_shape(&old_grid)?.iter().collect();
        let mut moved = 0u64;
        for chunk in old_chunks.iter().rev() {
            let old_addr = offset_with_strides(chunk, &old_strides);
            let new_addr = offset_with_strides(chunk, &new_strides);
            if old_addr != new_addr {
                let bytes = self.file.read_vec(old_addr * cb, cb as usize)?;
                self.file.write_at(new_addr * cb, &bytes)?;
                moved += 2 * cb;
            }
        }
        // Zero the newly created chunk slots.
        let zero = vec![0u8; cb as usize];
        for chunk in Region::of_shape(&new_grid)?.iter() {
            if chunk[dim] >= old_grid[dim] {
                let addr = offset_with_strides(&chunk, &new_strides);
                self.file.write_at(addr * cb, &zero)?;
            }
        }
        self.grid = new_grid;
        Ok(ExtendCost { bytes_moved: moved, reorganized: true })
    }

    /// Read a rectilinear region (chunk-at-a-time) into the given layout.
    pub fn read_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        if region.rank() != self.bounds.len()
            || region.hi().iter().zip(&self.bounds).any(|(&h, &n)| h > n)
        {
            return Err(BaselineError::Invalid("region out of bounds".into()));
        }
        let chunk_region = self.chunking.chunks_covering(region)?;
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        for chunk in chunk_region.iter() {
            let chunk_elems = self.chunking.chunk_elements(&chunk)?;
            let Some(valid) = chunk_elems.intersect(region) else { continue };
            let addr = self.chunk_address(&chunk)?;
            let bytes =
                self.file.read_vec(addr * self.chunk_bytes(), self.chunk_bytes() as usize)?;
            let vals: Vec<T> = dtype::decode_slice(&bytes)?;
            drx_core::index::for_each_offset_pair(
                &valid,
                chunk_elems.lo(),
                self.chunking.strides(),
                region.lo(),
                &strides,
                |src, dst| out[dst as usize] = vals[src as usize],
            );
        }
        Ok(out)
    }

    /// Write a region from a dense buffer (read-modify-write on partial
    /// chunks).
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        if data.len() as u64 != region.volume() {
            return Err(BaselineError::Invalid("buffer size mismatch".into()));
        }
        if region.rank() != self.bounds.len()
            || region.hi().iter().zip(&self.bounds).any(|(&h, &n)| h > n)
        {
            return Err(BaselineError::Invalid("region out of bounds".into()));
        }
        let chunk_region = self.chunking.chunks_covering(region)?;
        let extents = region.extents();
        let strides = layout.strides(&extents);
        for chunk in chunk_region.iter() {
            let chunk_elems = self.chunking.chunk_elements(&chunk)?;
            let Some(valid) = chunk_elems.intersect(region) else { continue };
            let addr = self.chunk_address(&chunk)?;
            let base = addr * self.chunk_bytes();
            let mut bytes = self.file.read_vec(base, self.chunk_bytes() as usize)?;
            let mut tmp = Vec::with_capacity(T::SIZE);
            drx_core::index::for_each_offset_pair(
                &valid,
                chunk_elems.lo(),
                self.chunking.strides(),
                region.lo(),
                &strides,
                |dst, src| {
                    let dst = dst as usize * T::SIZE;
                    tmp.clear();
                    data[src as usize].write_le(&mut tmp);
                    bytes[dst..dst + T::SIZE].copy_from_slice(&tmp);
                },
            );
            self.file.write_at(base, &bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::memory(2, 512).unwrap()
    }

    fn tag(idx: &[usize]) -> i64 {
        idx.iter().fold(17i64, |a, &i| a * 59 + i as i64)
    }

    fn filled(pfs: &Pfs, chunk: &[usize], bounds: &[usize]) -> DraLikeFile<i64> {
        let mut f = DraLikeFile::create(pfs, "dra", chunk, bounds).unwrap();
        let region = Region::new(vec![0; bounds.len()], bounds.to_vec()).unwrap();
        let data: Vec<i64> = region.iter().map(|i| tag(&i)).collect();
        f.write_region(&region, Layout::C, &data).unwrap();
        f
    }

    #[test]
    fn get_set_and_region_round_trip() {
        let fs = pfs();
        let mut f = filled(&fs, &[2, 3], &[7, 8]);
        assert_eq!(f.get(&[6, 7]).unwrap(), tag(&[6, 7]));
        f.set(&[0, 0], -5).unwrap();
        assert_eq!(f.get(&[0, 0]).unwrap(), -5);
        let r = Region::new(vec![1, 2], vec![5, 6]).unwrap();
        let c = f.read_region(&r, Layout::C).unwrap();
        let fo = f.read_region(&r, Layout::Fortran).unwrap();
        assert_eq!(c.len(), 16);
        assert_eq!(c[0], fo[0]);
        assert_eq!(c[1], fo[4]); // (1,3): C pos 1, Fortran pos 4 in a 4×4 region
    }

    #[test]
    fn dim0_extension_is_free() {
        let fs = pfs();
        let mut f = filled(&fs, &[2, 2], &[4, 6]);
        let cost = f.extend_dim0(4).unwrap();
        assert_eq!(cost, ExtendCost { bytes_moved: 0, reorganized: false });
        assert_eq!(f.bounds(), &[8, 6]);
        for i in 0..4 {
            for j in 0..6 {
                assert_eq!(f.get(&[i, j]).unwrap(), tag(&[i, j]));
            }
        }
        assert_eq!(f.get(&[7, 5]).unwrap(), 0);
    }

    #[test]
    fn dim1_extension_reorganizes_chunks() {
        let fs = pfs();
        let mut f = filled(&fs, &[2, 2], &[6, 6]);
        let cost = f.extend(1, 2).unwrap();
        assert!(cost.reorganized);
        assert!(cost.bytes_moved > 0);
        assert_eq!(f.bounds(), &[6, 8]);
        assert_eq!(f.grid(), &[3, 4]);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(f.get(&[i, j]).unwrap(), tag(&[i, j]), "({i},{j})");
            }
            for j in 6..8 {
                assert_eq!(f.get(&[i, j]).unwrap(), 0, "new ({i},{j})");
            }
        }
    }

    #[test]
    fn small_extension_within_edge_chunks_is_metadata_only() {
        let fs = pfs();
        let mut f = filled(&fs, &[2, 4], &[4, 6]); // grid [2,2], col chunk holds 8
        let cost = f.extend(1, 2).unwrap(); // 6 → 8 elements still 2 chunk cols
        assert!(!cost.reorganized);
        assert_eq!(cost.bytes_moved, 0);
        assert_eq!(f.get(&[3, 5]).unwrap(), tag(&[3, 5]));
    }

    #[test]
    fn chunk_reorg_cost_scales_with_chunk_count_not_elements() {
        // DRA moves whole chunks; the moved-byte count equals
        // (chunks that change address) × chunk_bytes × 2.
        let fs = pfs();
        let mut f = filled(&fs, &[2, 2], &[8, 8]); // 4×4 grid
        let cost = f.extend(1, 2).unwrap(); // grid 4×4 → 4×5
                                            // Chunks in row 0 keep addresses 0..4; all 12 later chunks move.
        assert_eq!(cost.bytes_moved, 12 * f.chunk_bytes() * 2);
    }

    #[test]
    fn errors() {
        let fs = pfs();
        let mut f = filled(&fs, &[2, 2], &[4, 4]);
        assert!(f.get(&[4, 0]).is_err());
        assert!(f.extend(3, 1).is_err());
        assert!(f.extend(1, 0).is_err());
        assert!(DraLikeFile::<i64>::create(&fs, "bad", &[2, 2], &[0, 4]).is_err());
    }
}
