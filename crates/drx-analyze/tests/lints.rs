//! End-to-end lint tests: the real workspace must check clean, and each
//! seeded fixture under `tests/fixtures/` must trip exactly its lint —
//! both through the library and through the CLI's exit code.

use drx_analyze::report::Lint;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_checks_clean() {
    let report = drx_analyze::run_check(&workspace_root());
    assert!(report.is_clean(), "workspace has lint findings:\n{}", report.render());
}

fn assert_fires(name: &str, lint: Lint) {
    let report = drx_analyze::run_check(&fixture(name));
    assert!(
        report.count(lint) >= 1,
        "fixture {name} did not trip {}:\n{}",
        lint.code(),
        report.render()
    );
    // The seeded fixtures are single-violation: nothing else may fire.
    assert_eq!(
        report.count(lint),
        report.findings.len(),
        "fixture {name} tripped other lints too:\n{}",
        report.render()
    );
}

#[test]
fn l1_undeclared_nesting_fires() {
    assert_fires("l1_undeclared", Lint::LockOrder);
}

#[test]
fn l1_cycle_fires() {
    assert_fires("l1_cycle", Lint::LockOrder);
}

#[test]
fn l2_panic_fires() {
    assert_fires("l2_panic", Lint::PanicPath);
}

#[test]
fn l3_proto_fires() {
    assert_fires("l3_proto", Lint::ProtoExhaustive);
}

#[test]
fn l4_unsafe_fires() {
    assert_fires("l4_unsafe", Lint::UnsafeInventory);
}

#[test]
fn l5_discard_fires() {
    assert_fires("l5_discard", Lint::DiscardedResult);
}

#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_drx-analyze");
    let clean = Command::new(bin)
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run drx-analyze");
    assert!(
        clean.status.success(),
        "clean workspace should exit 0:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );
    for name in ["l1_undeclared", "l1_cycle", "l2_panic", "l3_proto", "l4_unsafe", "l5_discard"] {
        let out = Command::new(bin)
            .args(["check", "--root"])
            .arg(fixture(name))
            .output()
            .expect("run drx-analyze");
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {name} should exit 1:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}
