// Seeded L1 violation: the declared order facts form a cycle.
// lock-class: table => LockTable
// lock-class: queue => CacheQueue
// lock-order: LockTable -> CacheQueue
// lock-order: CacheQueue -> LockTable

pub fn noop() {}
