// Seeded L5 violation: an I/O result silently discarded with no
// `// allow-discard:` annotation.

pub fn cleanup() {
    let _ = std::fs::remove_file("scratch.bin");
}
