// Seeded L2 violation: an `unwrap()` in non-test code with no baseline
// entry covering it.

pub fn run(r: Result<u32, ()>) -> u32 {
    r.unwrap()
}
