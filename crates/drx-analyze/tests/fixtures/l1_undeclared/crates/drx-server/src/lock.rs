// Seeded L1 violation: CacheQueue is acquired while LockTable is held,
// but no `lock-order` fact declares the edge.
// lock-class: table => LockTable
// lock-class: queue => CacheQueue

pub struct S;

impl S {
    fn nested(&self) {
        let t = self.table.lock();
        let q = self.queue.lock();
        drop(q);
        drop(t);
    }
}
