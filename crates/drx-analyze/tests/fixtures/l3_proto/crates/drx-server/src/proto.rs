// Seeded L3 violation: OP_OPEN is encoded but never referenced by the
// decoder, and Request::Open has no test exercising it.

pub const OP_OPEN: u8 = 1;

pub enum Request {
    Open(u32),
}

pub fn encode_request() -> u8 {
    OP_OPEN
}

pub fn decode_request() {}
