//! L1 — lock-order analysis.
//!
//! Extracts every `Mutex`/`RwLock` acquisition (`.lock()`, `.read()`,
//! `.write()` with empty argument lists) from the configured concurrency
//! files, classifies each acquisition via declared `// lock-class:` facts,
//! and tracks which classes are *held* across each function body:
//!
//! * a `let name = receiver.lock();` binding holds its class until a
//!   `drop(name)` or the end of the enclosing block;
//! * a chained acquisition (`receiver.lock().method()`) is transient — it
//!   never enters the held set, but edges out of it are still recorded for
//!   the chained method call;
//! * calls to an allowlisted set of method names (see
//!   [`crate::config::L1_CALL_METHODS`]) propagate *summaries*: the set of
//!   classes a callee (transitively) acquires, unioned over same-named
//!   functions. Holding `A` while calling a method whose summary contains
//!   `B` observes the edge `A -> B`.
//!
//! Violations: an acquisition whose receiver no `lock-class` fact
//! classifies; an observed edge not declared by a `// lock-order:` fact; a
//! cycle in the union of declared and observed edges; a direct re-entrant
//! acquisition (`A` while `A` is held); and an order fact naming an
//! undeclared class.
//!
//! This is a lint, not a verifier: closures passed across functions are
//! opaque, and summary matching is name-based. The `drx-sched` explorer
//! (see `support/drx-sched`) is the dynamic complement that actually runs
//! the interleavings.

use crate::facts::Facts;
use crate::report::{Lint, Report};
use crate::scan::{FnItem, SourceFile};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Run the L1 check over `files` (the configured lock-layer sources).
pub fn check(files: &[SourceFile], facts: &Facts, allow_calls: &[&str], report: &mut Report) {
    let allow: HashSet<&str> = allow_calls.iter().copied().collect();

    // Pass A: per-function direct acquisitions and allowlisted callees.
    let mut direct: HashMap<String, BTreeSet<String>> = HashMap::new();
    let mut callees: HashMap<String, BTreeSet<String>> = HashMap::new();
    let mut fn_names: BTreeSet<String> = BTreeSet::new();
    for f in files {
        for item in f.functions() {
            if f.in_test(item.name_pos) {
                continue;
            }
            let (d, c) = summarize(f, &item, facts, &allow);
            fn_names.insert(item.name.to_string());
            direct.entry(item.name.to_string()).or_default().extend(d);
            callees.entry(item.name.to_string()).or_default().extend(c);
        }
    }

    // Fixpoint: summary(name) = direct(name) ∪ ⋃ summary(callee).
    let mut summary: HashMap<String, BTreeSet<String>> = direct.clone();
    loop {
        let mut changed = false;
        for name in &fn_names {
            let mut acc = summary.get(name).cloned().unwrap_or_default();
            let before = acc.len();
            if let Some(cs) = callees.get(name) {
                for c in cs {
                    if let Some(s) = summary.get(c) {
                        acc.extend(s.iter().cloned());
                    }
                }
            }
            if acc.len() != before {
                summary.insert(name.clone(), acc);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass B: held-set tracking, observed edges.
    let mut observed: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for f in files {
        for item in f.functions() {
            if f.in_test(item.name_pos) {
                continue;
            }
            walk_holds(f, &item, facts, &allow, &summary, &mut observed, report);
        }
    }

    // Declared facts and sanity checks.
    let class_names: BTreeSet<&str> = facts.classes.iter().map(|c| c.class.as_str()).collect();
    let mut declared: BTreeSet<(String, String)> = BTreeSet::new();
    for (edge, file, line) in &facts.order {
        for end in [&edge.from, &edge.to] {
            if !class_names.contains(end.as_str()) {
                report.push(
                    Lint::LockOrder,
                    file,
                    *line,
                    format!("lock-order fact references undeclared class `{end}`"),
                );
            }
        }
        declared.insert((edge.from.clone(), edge.to.clone()));
    }

    // Every observed edge must be declared.
    for ((a, b), (file, line)) in &observed {
        if !declared.contains(&(a.clone(), b.clone())) {
            report.push(
                Lint::LockOrder,
                file,
                *line,
                format!(
                    "undeclared lock nesting: {b} acquired while {a} held; declare with `// lock-order: {a} -> {b}` if intended"
                ),
            );
        }
    }

    // The union graph must be acyclic.
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (a, b) in declared.iter().chain(observed.keys()) {
        graph.entry(a.clone()).or_default().insert(b.clone());
        graph.entry(b.clone()).or_default();
    }
    if let Some(cycle) = find_cycle(&graph) {
        let loc = facts
            .order
            .iter()
            .find(|(e, _, _)| e.from == cycle[0])
            .map(|(_, f, l)| (f.clone(), *l))
            .or_else(|| observed.get(&(cycle[0].clone(), cycle[1].clone())).cloned())
            .unwrap_or_else(|| ("<facts>".to_string(), 0));
        report.push(
            Lint::LockOrder,
            &loc.0,
            loc.1,
            format!("lock-order cycle: {}", cycle.join(" -> ")),
        );
    }
}

/// Find the dotted receiver chain ending just before sig position `dot`
/// (the `.` of `.lock()`). Returns segments, outermost first.
fn receiver_chain(f: &SourceFile, body_start: usize, dot: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot as isize - 1;
    loop {
        if j < body_start as isize {
            break;
        }
        let t = f.sig_tok(j as usize);
        if t.is_punct(']') {
            // Skip the balanced index expression; it contributes nothing
            // to classification.
            let mut depth = 0i32;
            while j >= body_start as isize {
                let t2 = f.sig_tok(j as usize);
                if t2.is_punct(']') {
                    depth += 1;
                } else if t2.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            j -= 1;
            continue;
        }
        if t.is_punct(')') {
            // A call in the chain (`foo().lock()`): stop — the receiver is
            // an expression, not a field path; leave whatever segments we
            // have (classification will likely fail, which is the point).
            break;
        }
        if t.kind == crate::lexer::TokKind::Ident {
            segs.push(t.text.clone());
            if j > body_start as isize && f.sig_tok((j - 1) as usize).is_punct('.') {
                j -= 2;
                continue;
            }
        }
        break;
    }
    segs.reverse();
    segs
}

/// Pass A: direct acquisitions and allowlisted callees of one function.
fn summarize(
    f: &SourceFile,
    item: &FnItem<'_>,
    facts: &Facts,
    allow: &HashSet<&str>,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut direct = BTreeSet::new();
    let mut calls = BTreeSet::new();
    let mut i = item.body.start;
    while i < item.body.end {
        if let Some(acq) = acquisition_at(f, item.body.start, i) {
            if let Some(c) = facts.classify(&acq.receiver) {
                direct.insert(c.class.clone());
            }
            i = acq.after_paren;
            continue;
        }
        let t = f.sig_tok(i);
        if t.kind == crate::lexer::TokKind::Ident
            && allow.contains(t.text.as_str())
            && i + 1 < item.body.end
            && f.sig_tok(i + 1).is_punct('(')
        {
            calls.insert(t.text.clone());
        }
        i += 1;
    }
    (direct, calls)
}

struct Acq {
    receiver: Vec<String>,
    /// Sig position just past the closing `)` of the empty argument list.
    after_paren: usize,
    line: u32,
}

/// Detect `receiver.lock()` / `.read()` / `.write()` (empty parens) with
/// the `.` at sig position `i`.
fn acquisition_at(f: &SourceFile, body_start: usize, i: usize) -> Option<Acq> {
    if !f.sig_tok(i).is_punct('.') || i + 3 >= f.sig_len() {
        return None;
    }
    let m = f.sig_tok(i + 1);
    if m.kind != crate::lexer::TokKind::Ident || !ACQUIRE_METHODS.contains(&m.text.as_str()) {
        return None;
    }
    if !f.sig_tok(i + 2).is_punct('(') || !f.sig_tok(i + 3).is_punct(')') {
        return None;
    }
    let receiver = receiver_chain(f, body_start, i);
    if receiver.is_empty() {
        return None;
    }
    Some(Acq { receiver, after_paren: i + 4, line: m.line })
}

struct Binding {
    name: String,
    class: String,
    active: bool,
}

/// Pass B: walk one function with held-class tracking, recording observed
/// edges and direct violations.
#[allow(clippy::too_many_arguments)]
fn walk_holds(
    f: &SourceFile,
    item: &FnItem<'_>,
    facts: &Facts,
    allow: &HashSet<&str>,
    summary: &HashMap<String, BTreeSet<String>>,
    observed: &mut BTreeMap<(String, String), (String, u32)>,
    report: &mut Report,
) {
    let path = f.path.display().to_string();
    let mut bindings: Vec<Binding> = Vec::new();
    let mut scopes: Vec<Vec<usize>> = vec![Vec::new()];
    let held = |bindings: &[Binding]| -> BTreeSet<String> {
        bindings.iter().filter(|b| b.active).map(|b| b.class.clone()).collect()
    };
    let record =
        |a: &str, b: &str, line: u32, observed: &mut BTreeMap<(String, String), (String, u32)>| {
            observed.entry((a.to_string(), b.to_string())).or_insert((path.clone(), line));
        };

    let mut i = item.body.start;
    while i < item.body.end {
        let t = f.sig_tok(i);
        if t.is_punct('{') {
            scopes.push(Vec::new());
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(scope) = scopes.pop() {
                for bi in scope {
                    bindings[bi].active = false;
                }
            }
            i += 1;
            continue;
        }
        // drop(name) releases a guard binding early.
        if t.is_ident("drop")
            && i + 3 < item.body.end
            && f.sig_tok(i + 1).is_punct('(')
            && f.sig_tok(i + 2).kind == crate::lexer::TokKind::Ident
            && f.sig_tok(i + 3).is_punct(')')
        {
            let name = &f.sig_tok(i + 2).text;
            if let Some(b) = bindings.iter_mut().rev().find(|b| b.active && &b.name == name) {
                b.active = false;
            }
            i += 4;
            continue;
        }
        if let Some(acq) = acquisition_at(f, item.body.start, i) {
            let Some(fact) = facts.classify(&acq.receiver) else {
                report.push(
                    Lint::LockOrder,
                    &path,
                    acq.line,
                    format!(
                        "acquisition `{}.{}()` in `{}` has no lock-class fact (add `// lock-class: {} => <Class>`)",
                        acq.receiver.join("."),
                        f.sig_tok(i + 1).text,
                        item.name,
                        acq.receiver.last().map(String::as_str).unwrap_or("?"),
                    ),
                );
                i = acq.after_paren;
                continue;
            };
            let class = fact.class.clone();
            for a in held(&bindings) {
                if a == class {
                    report.push(
                        Lint::LockOrder,
                        &path,
                        acq.line,
                        format!(
                            "re-entrant acquisition of {class} in `{}` while already held",
                            item.name
                        ),
                    );
                } else {
                    record(&a, &class, acq.line, observed);
                }
            }
            // Chained call on a transient guard: `x.lock().flush()` runs
            // `flush` while the class is held.
            let mut after = acq.after_paren;
            let persists = after < item.body.end && f.sig_tok(after).is_punct(';');
            if !persists
                && after + 1 < item.body.end
                && f.sig_tok(after).is_punct('.')
                && f.sig_tok(after + 1).kind == crate::lexer::TokKind::Ident
            {
                let m2 = &f.sig_tok(after + 1).text;
                if allow.contains(m2.as_str()) {
                    if let Some(s) = summary.get(m2) {
                        for c in s {
                            if c != &class {
                                record(&class, c, acq.line, observed);
                            }
                        }
                    }
                }
            }
            if persists {
                // Look back for `let [mut] name = receiver…`.
                let recv_start = i - 2 * (acq.receiver.len() - 1) - 1; // first segment pos
                if let Some(name) = let_binding_before(f, item.body.start, recv_start) {
                    let bi = bindings.len();
                    bindings.push(Binding { name, class: class.clone(), active: true });
                    if let Some(scope) = scopes.last_mut() {
                        scope.push(bi);
                    }
                }
                after += 1; // past the `;`
            }
            i = after;
            continue;
        }
        // Allowlisted call while holding → summary edges.
        if t.kind == crate::lexer::TokKind::Ident
            && allow.contains(t.text.as_str())
            && i + 1 < item.body.end
            && f.sig_tok(i + 1).is_punct('(')
        {
            if let Some(s) = summary.get(&t.text) {
                for a in held(&bindings) {
                    for c in s {
                        if c != &a {
                            record(&a, c, t.line, observed);
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// If the tokens immediately before `recv_start` are `let [mut] name =`,
/// return `name`.
fn let_binding_before(f: &SourceFile, body_start: usize, recv_start: usize) -> Option<String> {
    if recv_start < body_start + 3 {
        return None;
    }
    let eq = recv_start - 1;
    if !f.sig_tok(eq).is_punct('=') {
        return None;
    }
    let name_pos = eq - 1;
    let name_tok = f.sig_tok(name_pos);
    if name_tok.kind != crate::lexer::TokKind::Ident {
        return None;
    }
    let kw = f.sig_tok(name_pos - 1);
    let is_let = kw.is_ident("let")
        || (kw.is_ident("mut") && name_pos >= 2 && f.sig_tok(name_pos - 2).is_ident("let"));
    if is_let {
        Some(name_tok.text.clone())
    } else {
        None
    }
}

/// DFS cycle detection; returns a cycle as a class list `[a, b, …, a]`.
fn find_cycle(graph: &BTreeMap<String, BTreeSet<String>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&str, Color> =
        graph.keys().map(|k| (k.as_str(), Color::White)).collect();

    fn dfs<'a>(
        node: &'a str,
        graph: &'a BTreeMap<String, BTreeSet<String>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, Color::Grey);
        stack.push(node);
        if let Some(next) = graph.get(node) {
            for n in next {
                match color.get(n.as_str()).copied().unwrap_or(Color::White) {
                    Color::Grey => {
                        let start = stack.iter().position(|s| *s == n.as_str()).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        cycle.push(n.clone());
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(c) = dfs(n.as_str(), graph, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    let keys: Vec<&str> = graph.keys().map(String::as_str).collect();
    for k in keys {
        if color.get(k).copied() == Some(Color::White) {
            let mut stack = Vec::new();
            if let Some(c) = dfs(k, graph, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::Facts;
    use std::path::PathBuf;

    fn run(srcs: &[&str]) -> Report {
        let files: Vec<SourceFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| SourceFile::parse(PathBuf::from(format!("f{i}.rs")), s))
            .collect();
        let mut facts = Facts::default();
        for f in &files {
            facts.collect(f);
        }
        let mut report = Report::default();
        check(&files, &facts, &["flush", "inner_op"], &mut report);
        report
    }

    #[test]
    fn clean_declared_nesting_passes() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            // lock-order: A -> B
            fn f(&self) {
                let g = self.a.lock();
                let h = self.b.lock();
                drop(h);
                drop(g);
            }
        "#]);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn undeclared_nesting_flags() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            fn f(&self) {
                let g = self.a.lock();
                let h = self.b.lock();
            }
        "#]);
        assert_eq!(r.count(Lint::LockOrder), 1, "{}", r.render());
        assert!(r.render().contains("A -> B"));
    }

    #[test]
    fn drop_releases_before_next_acquisition() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            fn f(&self) {
                let g = self.a.lock();
                drop(g);
                let h = self.b.lock();
            }
        "#]);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn block_scope_releases() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            fn f(&self) {
                { let g = self.a.lock(); }
                let h = self.b.lock();
            }
        "#]);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn transient_guard_does_not_hold() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            fn f(&self) {
                let x = self.a.lock().field;
                let h = self.b.lock();
            }
        "#]);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn cycle_is_reported() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            // lock-order: A -> B
            // lock-order: B -> A
            fn f(&self) {}
        "#]);
        assert_eq!(r.count(Lint::LockOrder), 1, "{}", r.render());
        assert!(r.render().contains("cycle"));
    }

    #[test]
    fn call_summary_propagates_edges() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            fn inner_op(&self) {
                let g = self.b.lock();
            }
            fn f(&self) {
                let g = self.a.lock();
                self.inner_op();
            }
        "#]);
        assert_eq!(r.count(Lint::LockOrder), 1, "{}", r.render());
        assert!(r.render().contains("B acquired while A held"), "{}", r.render());
    }

    #[test]
    fn chained_transient_call_records_edge() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            // lock-order: A -> B
            fn flush(&self) { let g = self.b.lock(); }
            fn f(&self) { self.a.lock().flush(); }
        "#]);
        // A -> B via the chained call is observed but declared: clean.
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unclassified_acquisition_flags() {
        let r = run(&["fn f(&self) { self.mystery.lock(); }"]);
        assert_eq!(r.count(Lint::LockOrder), 1, "{}", r.render());
        assert!(r.render().contains("lock-class"));
    }

    #[test]
    fn reentrant_acquisition_flags() {
        let r = run(&[r#"
            // lock-class: a => A
            fn f(&self) {
                let g = self.a.lock();
                let h = self.a.lock();
            }
        "#]);
        assert_eq!(r.count(Lint::LockOrder), 1, "{}", r.render());
        assert!(r.render().contains("re-entrant"));
    }

    #[test]
    fn test_code_is_ignored() {
        let r = run(&[r#"
            // lock-class: a => A
            // lock-class: b => B
            #[cfg(test)]
            mod tests {
                fn f(&self) {
                    let g = self.a.lock();
                    let h = self.b.lock();
                }
            }
        "#]);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn unknown_class_in_order_fact_flags() {
        let r = run(&["// lock-class: a => A\n// lock-order: A -> Nope\nfn f() {}"]);
        assert_eq!(r.count(Lint::LockOrder), 1, "{}", r.render());
        assert!(r.render().contains("undeclared class"));
    }
}
