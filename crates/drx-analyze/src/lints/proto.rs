//! L3 — protocol exhaustiveness.
//!
//! Every `OP_*` opcode constant in the protocol module must be referenced
//! by both `encode_request` and `decode_request` (resp. `RESP_*` by
//! `encode_response` / `decode_response`), and every `Request` / `Response`
//! enum variant must appear in test code — the protocol module's own
//! `#[cfg(test)]` tests or the crate's integration tests — so each wire
//! shape has a roundtrip exercising it.

use crate::lexer::TokKind;
use crate::report::{Lint, Report};
use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// Collect `const NAME` identifiers with the given prefix.
fn consts_with_prefix<'a>(f: &'a SourceFile, prefix: &str) -> Vec<(&'a str, u32)> {
    let mut out = Vec::new();
    for i in 0..f.sig_len().saturating_sub(1) {
        if f.sig_tok(i).is_ident("const") {
            let name = f.sig_tok(i + 1);
            if name.kind == TokKind::Ident && name.text.starts_with(prefix) {
                out.push((name.text.as_str(), name.line));
            }
        }
    }
    out
}

/// Does the body of function `fn_name` mention identifier `ident`?
fn fn_mentions(f: &SourceFile, fn_name: &str, ident: &str) -> Option<bool> {
    let item = f.functions().into_iter().find(|x| x.name == fn_name)?;
    Some(item.body.clone().any(|i| f.sig_tok(i).is_ident(ident)))
}

/// Collect the variant names of `enum <name> { … }`.
fn enum_variants<'a>(f: &'a SourceFile, name: &str) -> Vec<(&'a str, u32)> {
    let mut out = Vec::new();
    for i in 0..f.sig_len().saturating_sub(2) {
        if !(f.sig_tok(i).is_ident("enum") && f.sig_tok(i + 1).is_ident(name)) {
            continue;
        }
        let Some(open) = (i + 2..f.sig_len()).find(|&j| f.sig_tok(j).is_punct('{')) else {
            continue;
        };
        let close = f.matching_brace(open);
        let mut j = open + 1;
        while j < close {
            let t = f.sig_tok(j);
            // Skip attributes on variants.
            if t.is_punct('#') && j + 1 < close && f.sig_tok(j + 1).is_punct('[') {
                j = f.matching_bracket(j + 1) + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                out.push((t.text.as_str(), t.line));
                j += 1;
                // Skip the payload: tuple or struct fields.
                if j < close && f.sig_tok(j).is_punct('(') {
                    j = f.matching_paren(j) + 1;
                } else if j < close && f.sig_tok(j).is_punct('{') {
                    j = f.matching_brace(j) + 1;
                }
                // Skip the trailing comma if present.
                if j < close && f.sig_tok(j).is_punct(',') {
                    j += 1;
                }
                continue;
            }
            j += 1;
        }
        break;
    }
    out
}

/// Idents appearing in test code: `proto`'s own test regions plus all of
/// `test_files` (integration tests are test code in full).
fn test_idents<'a>(proto: &'a SourceFile, test_files: &'a [SourceFile]) -> BTreeSet<&'a str> {
    let mut out = BTreeSet::new();
    for i in 0..proto.sig_len() {
        if proto.in_test(i) && proto.sig_tok(i).kind == TokKind::Ident {
            out.insert(proto.sig_tok(i).text.as_str());
        }
    }
    for f in test_files {
        for i in 0..f.sig_len() {
            if f.sig_tok(i).kind == TokKind::Ident {
                out.insert(f.sig_tok(i).text.as_str());
            }
        }
    }
    out
}

pub fn check(proto: &SourceFile, test_files: &[SourceFile], report: &mut Report) {
    let path = proto.path.display().to_string();
    for (prefix, encode, decode) in [
        ("OP_", "encode_request", "decode_request"),
        ("RESP_", "encode_response", "decode_response"),
    ] {
        for (name, line) in consts_with_prefix(proto, prefix) {
            for func in [encode, decode] {
                match fn_mentions(proto, func, name) {
                    Some(true) => {}
                    Some(false) => report.push(
                        Lint::ProtoExhaustive,
                        &path,
                        line,
                        format!("opcode {name} is not referenced in {func}"),
                    ),
                    None => report.push(
                        Lint::ProtoExhaustive,
                        &path,
                        line,
                        format!("protocol function {func} not found (needed for {name})"),
                    ),
                }
            }
        }
    }
    let tests = test_idents(proto, test_files);
    for enum_name in ["Request", "Response"] {
        for (variant, line) in enum_variants(proto, enum_name) {
            if !tests.contains(variant) {
                report.push(
                    Lint::ProtoExhaustive,
                    &path,
                    line,
                    format!("{enum_name}::{variant} has no test reference (add a roundtrip test)"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("proto.rs"), src)
    }

    const COVERED: &str = r#"
        const OP_OPEN: u8 = 1;
        pub enum Request { Open(u32) }
        pub enum Response { Opened }
        fn encode_request() { let x = OP_OPEN; }
        fn decode_request() { match t { OP_OPEN => {} } }
        #[cfg(test)]
        mod tests {
            #[test]
            fn roundtrip() { let r = Request::Open(1); let s = Response::Opened; }
        }
    "#;

    #[test]
    fn covered_proto_is_clean() {
        let mut report = Report::default();
        check(&sf(COVERED), &[], &mut report);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn missing_decode_reference_flags() {
        let src = r#"
            const OP_OPEN: u8 = 1;
            fn encode_request() { let x = OP_OPEN; }
            fn decode_request() {}
        "#;
        let mut report = Report::default();
        check(&sf(src), &[], &mut report);
        assert_eq!(report.count(Lint::ProtoExhaustive), 1, "{}", report.render());
        assert!(report.render().contains("decode_request"));
    }

    #[test]
    fn untested_variant_flags() {
        let src = r#"
            pub enum Request { Open(u32), Close }
            #[cfg(test)]
            mod tests { fn t() { let r = Request::Open(1); } }
        "#;
        let mut report = Report::default();
        check(&sf(src), &[], &mut report);
        assert_eq!(report.count(Lint::ProtoExhaustive), 1, "{}", report.render());
        assert!(report.render().contains("Request::Close"));
    }

    #[test]
    fn integration_tests_count_as_coverage() {
        let src = "pub enum Request { Open(u32) }";
        let it = SourceFile::parse(
            PathBuf::from("tests/roundtrip.rs"),
            "fn t() { let r = Request::Open(1); }",
        );
        let mut report = Report::default();
        check(&sf(src), &[it], &mut report);
        assert!(report.is_clean(), "{}", report.render());
    }
}
