//! L4 — unsafe inventory.
//!
//! Every `unsafe` keyword in non-test code must carry a `// SAFETY:`
//! comment on the same line or within the three lines above it. The
//! workspace is currently `unsafe`-free; this lint keeps any future
//! introduction documented from day one.

use crate::report::{Lint, Report};
use crate::scan::SourceFile;

pub fn check(f: &SourceFile, report: &mut Report) {
    let path = f.path.display().to_string();
    let safety_lines: Vec<u32> = f
        .toks
        .iter()
        .filter(|t| t.kind == crate::lexer::TokKind::Comment && t.text.contains("SAFETY"))
        .map(|t| t.line)
        .collect();
    for i in 0..f.sig_len() {
        if f.in_test(i) {
            continue;
        }
        let t = f.sig_tok(i);
        if !t.is_ident("unsafe") {
            continue;
        }
        let documented = safety_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
        if !documented {
            report.push(
                Lint::UnsafeInventory,
                &path,
                t.line,
                "`unsafe` without a `// SAFETY:` comment".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Report {
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        let mut report = Report::default();
        check(&f, &mut report);
        report
    }

    #[test]
    fn documented_unsafe_passes() {
        let r = run("fn a() {\n    // SAFETY: ptr is valid for reads\n    unsafe { go() }\n}");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn undocumented_unsafe_flags() {
        let r = run("fn a() { unsafe { go() } }");
        assert_eq!(r.count(Lint::UnsafeInventory), 1, "{}", r.render());
    }

    #[test]
    fn test_code_is_exempt() {
        let r = run("#[test]\nfn t() { unsafe { go() } }");
        assert!(r.is_clean(), "{}", r.render());
    }
}
