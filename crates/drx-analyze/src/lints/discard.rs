//! L5 — discarded `Result` lint.
//!
//! `let _ = expr;` where `expr` contains a call silently swallows the
//! error channel of a fallible operation. Each such statement in non-test
//! code must carry an `// allow-discard: <reason>` comment (same line or
//! the line above) acknowledging that the error is intentionally dropped.
//!
//! One class of discard is never allowed, with or without an annotation:
//! an RHS that mentions `retry` or `RetryPolicy`. A retry loop exists to
//! convert transient faults into either success or a typed error — if its
//! result is dropped, every fault the policy was installed for is silently
//! swallowed after burning the full backoff budget, which is strictly
//! worse than no retry at all.

use crate::facts::Facts;
use crate::lexer::TokKind;
use crate::report::{Lint, Report};
use crate::scan::SourceFile;

pub fn check(f: &SourceFile, facts: &Facts, report: &mut Report) {
    let path = f.path.display().to_string();
    let mut i = 0;
    while i + 2 < f.sig_len() {
        if f.in_test(i)
            || !f.sig_tok(i).is_ident("let")
            || !f.sig_tok(i + 1).is_ident("_")
            || !f.sig_tok(i + 2).is_punct('=')
        {
            i += 1;
            continue;
        }
        let line = f.sig_tok(i).line;
        // Scan the right-hand side to the terminating `;` at depth 0; a
        // `(` anywhere in it means a call (or at least call-shaped) value.
        let mut j = i + 3;
        let mut depth = 0i32;
        let mut has_call = false;
        let mut has_try = false;
        let mut mentions_retry = false;
        while j < f.sig_len() {
            let t = f.sig_tok(j);
            if t.kind == TokKind::Ident && (t.text == "retry" || t.text == "RetryPolicy") {
                mentions_retry = true;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => {
                        has_call |= t.is_punct('(');
                        depth += 1;
                    }
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    // `let _ = f()?;` propagates the error and discards
                    // only the success value — not a swallowed Result.
                    "?" if depth == 0 => has_try = true,
                    _ => {}
                }
            }
            j += 1;
        }
        if has_call && !has_try && mentions_retry {
            // Retry outcomes are the whole point of a RetryPolicy; no
            // annotation can make discarding one acceptable.
            report.push(
                Lint::DiscardedResult,
                &path,
                line,
                "`let _ =` discards a RetryPolicy result; retry outcomes must be \
                 propagated or handled (`// allow-discard` does not apply here)"
                    .to_string(),
            );
        } else if has_call && !has_try && !facts.discard_allowed(&path, line) {
            report.push(
                Lint::DiscardedResult,
                &path,
                line,
                "`let _ =` discards a call result; annotate `// allow-discard: <reason>` if intended"
                    .to_string(),
            );
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Report {
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        let mut facts = Facts::default();
        facts.collect(&f);
        let mut report = Report::default();
        check(&f, &facts, &mut report);
        report
    }

    #[test]
    fn bare_discard_flags() {
        let r = run("fn a() { let _ = std::fs::remove_file(p); }");
        assert_eq!(r.count(Lint::DiscardedResult), 1, "{}", r.render());
    }

    #[test]
    fn annotated_discard_passes() {
        let r = run(
            "fn a() {\n    // allow-discard: file may already be gone\n    let _ = std::fs::remove_file(p);\n}",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn try_propagated_discard_passes() {
        let r = run("fn a() -> R { let _ = go()?; Ok(()) }");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn non_call_discard_ignored() {
        let r = run("fn a() { let _ = x; }");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn named_bindings_ignored() {
        let r = run("fn a() { let _res = go(); }");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn test_code_exempt() {
        let r = run("#[test]\nfn t() { let _ = go(); }");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn retry_result_discard_flags_even_when_annotated() {
        let r = run(
            "fn a() {\n    // allow-discard: best effort\n    let _ = self.retry.run(|| go());\n}",
        );
        assert_eq!(r.count(Lint::DiscardedResult), 1, "{}", r.render());
        let r = run("fn a() { let _ = RetryPolicy::default().run(op); }");
        assert_eq!(r.count(Lint::DiscardedResult), 1, "{}", r.render());
    }

    #[test]
    fn retry_result_propagated_with_try_passes() {
        let r = run("fn a() -> R { let _ = self.retry.run(|| go())?; Ok(()) }");
        assert!(r.is_clean(), "{}", r.render());
    }
}
