//! L2 — panic-path audit with a ratcheting baseline.
//!
//! Counts `unwrap()`, `expect(`, and `panic!` sites in non-test code of
//! the configured crates. A checked-in baseline (`<count>\t<path>` lines)
//! records the accepted debt; a file whose count *exceeds* its baseline
//! entry — or a new file with any offender — fails. Counts below the
//! baseline are reported as slack so the baseline can be re-tightened
//! with `drx-analyze baseline`.

use crate::lexer::TokKind;
use crate::report::{Lint, Report};
use crate::scan::SourceFile;
use std::collections::BTreeMap;

/// One panic site: line and what was matched.
pub fn scan_file(f: &SourceFile) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    for i in 0..f.sig_len() {
        if f.in_test(i) {
            continue;
        }
        let t = f.sig_tok(i);
        if t.kind != TokKind::Ident || i + 1 >= f.sig_len() {
            continue;
        }
        let next = f.sig_tok(i + 1);
        let hit = match t.text.as_str() {
            "unwrap" | "expect" if next.is_punct('(') => {
                Some(if t.text == "unwrap" { "unwrap()" } else { "expect(..)" })
            }
            "panic" if next.is_punct('!') => Some("panic!"),
            _ => None,
        };
        if let Some(kind) = hit {
            out.push((t.line, kind));
        }
    }
    out
}

/// Check `files` against `baseline` (path → allowed count).
pub fn check(files: &[SourceFile], baseline: &BTreeMap<String, usize>, report: &mut Report) {
    for f in files {
        let path = f.path.display().to_string();
        let sites = scan_file(f);
        let allowed = baseline.get(&path).copied().unwrap_or(0);
        if sites.len() > allowed {
            let first = sites.get(allowed).map(|(l, _)| *l).unwrap_or(0);
            let listed: Vec<String> =
                sites.iter().map(|(l, k)| format!("{k} at line {l}")).collect();
            report.push(
                Lint::PanicPath,
                &path,
                first,
                format!(
                    "{} panic site(s), baseline allows {}: {}",
                    sites.len(),
                    allowed,
                    listed.join(", ")
                ),
            );
        } else if sites.len() < allowed {
            report.notes.push(format!(
                "{path}: {} panic site(s), baseline allows {} — run `drx-analyze baseline` to ratchet down",
                sites.len(),
                allowed
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), src)
    }

    #[test]
    fn counts_offenders_outside_tests() {
        let f = sf(r#"
            fn a() { x.unwrap(); y.expect("m"); panic!("boom"); }
            fn b() { z.unwrap_or(0); w.unwrap_or_default(); }
            #[cfg(test)]
            mod tests { fn t() { q.unwrap(); } }
        "#);
        let sites = scan_file(&f);
        assert_eq!(sites.len(), 3, "{sites:?}");
    }

    #[test]
    fn doc_comment_examples_do_not_count() {
        let f = sf("/// `x.unwrap()` panics\nfn a() {}");
        assert!(scan_file(&f).is_empty());
    }

    #[test]
    fn baseline_ratchet() {
        let f = sf("fn a() { x.unwrap(); y.unwrap(); }");
        let mut report = Report::default();
        let mut base = BTreeMap::new();
        base.insert("x.rs".to_string(), 2);
        check(&[f], &base, &mut report);
        assert!(report.is_clean(), "{}", report.render());

        let g = sf("fn a() { x.unwrap(); y.unwrap(); z.unwrap(); }");
        let mut report2 = Report::default();
        check(&[g], &base, &mut report2);
        assert_eq!(report2.count(Lint::PanicPath), 1, "{}", report2.render());
    }

    #[test]
    fn slack_is_noted() {
        let f = sf("fn a() { x.unwrap(); }");
        let mut base = BTreeMap::new();
        base.insert("x.rs".to_string(), 3);
        let mut report = Report::default();
        check(&[f], &base, &mut report);
        assert!(report.is_clean());
        assert_eq!(report.notes.len(), 1);
    }
}
