//! The five workspace lints, L1–L5 (see DESIGN.md §9).

pub mod discard;
pub mod lock_order;
pub mod panic_paths;
pub mod proto;
pub mod unsafety;
