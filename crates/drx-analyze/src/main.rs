//! CLI: `drx-analyze check [--root DIR]` runs all lints (exit 0 clean,
//! 1 findings, 2 usage/setup error); `drx-analyze baseline [--root DIR]`
//! regenerates the L2 panic-site baseline.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: drx-analyze <check|baseline> [--root DIR]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut root_arg: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root_arg = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    let Some(root) = drx_analyze::config::find_root(root_arg.as_deref()) else {
        eprintln!("drx-analyze: could not locate workspace root (try --root)");
        return ExitCode::from(2);
    };

    match cmd.as_str() {
        "check" => {
            let report = drx_analyze::run_check(&root);
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "baseline" => {
            let map = drx_analyze::baseline::generate(&root);
            let path = root.join(drx_analyze::config::L2_BASELINE);
            if let Some(parent) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("drx-analyze: {e}");
                    return ExitCode::from(2);
                }
            }
            let text = drx_analyze::baseline::render(&map);
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("drx-analyze: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {} ({} file(s), {} site(s))",
                path.display(),
                map.len(),
                map.values().sum::<usize>()
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
