//! Source-file model shared by the lints: lexed tokens, a "significant
//! token" view (comments stripped), detection of test-only regions, and
//! function extraction.

use crate::lexer::{lex, Tok, TokKind};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// One lexed source file.
pub struct SourceFile {
    /// Path as reported in findings (repo-relative when scanned via
    /// [`crate::config`]).
    pub path: PathBuf,
    /// Full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens, in order.
    pub sig: Vec<usize>,
    /// Half-open ranges over `sig` positions that are test-only code
    /// (`#[cfg(test)]` modules and `#[test]` functions).
    pub test_ranges: Vec<Range<usize>>,
}

impl SourceFile {
    pub fn parse(path: PathBuf, src: &str) -> SourceFile {
        let toks = lex(src);
        let sig: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let mut f = SourceFile { path, toks, sig, test_ranges: Vec::new() };
        f.test_ranges = f.find_test_ranges();
        f
    }

    pub fn load(path: &Path, display: PathBuf) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(path)?;
        Ok(SourceFile::parse(display, &src))
    }

    /// The significant token at `sig` position `i`.
    pub fn sig_tok(&self, i: usize) -> &Tok {
        &self.toks[self.sig[i]]
    }

    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// Whether the significant token at `i` lies in test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&i))
    }

    /// All comment tokens, with their position relative to the significant
    /// stream: a comment between sig tokens `i-1` and `i` reports `i`.
    pub fn comments(&self) -> Vec<(usize, &Tok)> {
        let mut out = Vec::new();
        let mut sig_pos = 0;
        for (ti, t) in self.toks.iter().enumerate() {
            if t.kind == TokKind::Comment {
                out.push((sig_pos, t));
            } else {
                debug_assert_eq!(self.sig[sig_pos], ti);
                sig_pos += 1;
            }
        }
        out
    }

    /// Find `sig` ranges of test-only code: the bodies (including headers)
    /// of items annotated `#[cfg(test)]` or `#[test]`.
    fn find_test_ranges(&self) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sig_len() {
            if self.is_test_attr(i) {
                // Find the end of this attribute, then skip any further
                // attributes, then the item header up to `{` or `;`.
                let start = i;
                let mut j = self.skip_attr(i);
                while self.sig_tok_is(j, "#") {
                    j = self.skip_attr(j);
                }
                // Walk to the item's opening brace (or `;` for extern
                // items — then there is no body to mark).
                let mut found_brace = None;
                while j < self.sig_len() {
                    let t = self.sig_tok(j);
                    if t.is_punct('{') {
                        found_brace = Some(j);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = found_brace {
                    let close = self.matching_brace(open);
                    out.push(start..close + 1);
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    fn sig_tok_is(&self, i: usize, s: &str) -> bool {
        i < self.sig_len() && self.sig_tok(i).text == s
    }

    /// Does `sig[i]` start `#[test]`, `#[cfg(test)]` or `#[cfg(all(test, …`?
    fn is_test_attr(&self, i: usize) -> bool {
        if !self.sig_tok_is(i, "#") || !self.sig_tok_is(i + 1, "[") {
            return false;
        }
        if self.sig_tok_is(i + 2, "test") && self.sig_tok_is(i + 3, "]") {
            return true;
        }
        if self.sig_tok_is(i + 2, "cfg") && self.sig_tok_is(i + 3, "(") {
            // Any `test` ident inside the cfg predicate counts.
            let close = self.matching_paren(i + 3);
            return (i + 4..close).any(|k| self.sig_tok_is(k, "test"));
        }
        false
    }

    /// Given `sig[i]` == `#`, return the position after the attribute.
    fn skip_attr(&self, i: usize) -> usize {
        if self.sig_tok_is(i + 1, "[") {
            self.matching_bracket(i + 1) + 1
        } else {
            i + 1
        }
    }

    fn matching_delim(&self, open_i: usize, open: char, close: char) -> usize {
        let mut depth = 0i32;
        for j in open_i..self.sig_len() {
            let t = self.sig_tok(j);
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.sig_len().saturating_sub(1)
    }

    pub fn matching_brace(&self, open_i: usize) -> usize {
        self.matching_delim(open_i, '{', '}')
    }

    pub fn matching_paren(&self, open_i: usize) -> usize {
        self.matching_delim(open_i, '(', ')')
    }

    pub fn matching_bracket(&self, open_i: usize) -> usize {
        self.matching_delim(open_i, '[', ']')
    }

    /// Extract every function with a body: `(name, header sig pos, body
    /// sig range excluding the braces)`.
    pub fn functions(&self) -> Vec<FnItem<'_>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sig_len() {
            if self.sig_tok(i).is_ident("fn") && i + 1 < self.sig_len() {
                let name_tok = self.sig_tok(i + 1);
                if name_tok.kind == TokKind::Ident {
                    // Walk to the body `{`, stopping at `;` (trait method
                    // without body). Skip over parenthesized params and any
                    // `<…>` generics (brace-free in this codebase).
                    let mut j = i + 2;
                    let mut body = None;
                    while j < self.sig_len() {
                        let t = self.sig_tok(j);
                        if t.is_punct('(') {
                            j = self.matching_paren(j) + 1;
                            continue;
                        }
                        if t.is_punct('{') {
                            body = Some(j);
                            break;
                        }
                        if t.is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        let close = self.matching_brace(open);
                        out.push(FnItem {
                            name: &name_tok.text,
                            name_pos: i + 1,
                            body: open + 1..close,
                            line: name_tok.line,
                        });
                        // Continue scanning *inside* the body too (nested
                        // fns are rare but legal); just advance past `fn`.
                    }
                }
            }
            i += 1;
        }
        out
    }
}

/// One function with a body.
pub struct FnItem<'a> {
    pub name: &'a str,
    pub name_pos: usize,
    /// Range over `sig` positions of the body, braces excluded.
    pub body: Range<usize>,
    pub line: u32,
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
pub fn rs_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let f = sf(r#"
            fn real() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { b.unwrap(); }
            }
            fn real2() {}
        "#);
        // Find the sig positions of `a` and `b`.
        let pos_of = |name: &str| (0..f.sig_len()).find(|&i| f.sig_tok(i).is_ident(name)).unwrap();
        assert!(!f.in_test(pos_of("a")));
        assert!(f.in_test(pos_of("b")));
        assert!(!f.in_test(pos_of("real2")));
    }

    #[test]
    fn test_attr_on_fn_only_covers_that_fn() {
        let f = sf("#[test]\nfn t() { x.unwrap(); }\nfn real() { y.unwrap(); }");
        let pos_of = |name: &str| (0..f.sig_len()).find(|&i| f.sig_tok(i).is_ident(name)).unwrap();
        assert!(f.in_test(pos_of("x")));
        assert!(!f.in_test(pos_of("y")));
    }

    #[test]
    fn functions_are_found_with_bodies() {
        let f = sf("impl X { pub fn a(&self) -> u32 { 1 } }\nfn b() {}\ntrait T { fn c(&self); }");
        let fns = f.functions();
        let names: Vec<&str> = fns.iter().map(|x| x.name).collect();
        assert_eq!(names, ["a", "b"]);
        // Body of `a` is the single literal `1`.
        assert_eq!(fns[0].body.len(), 1);
    }

    #[test]
    fn comments_map_to_sig_positions() {
        let f = sf("a\n// note\nb");
        let cs = f.comments();
        assert_eq!(cs.len(), 1);
        // The comment sits before sig position 1 (`b`).
        assert_eq!(cs[0].0, 1);
    }
}
