//! drx-analyze — workspace invariant linter for the DRX locking/cache
//! layer. Offline and dependency-free: a hand-rolled token scanner feeds
//! five lints (L1 lock-order, L2 panic-path ratchet, L3 protocol
//! exhaustiveness, L4 unsafe inventory, L5 discarded results). See
//! DESIGN.md §9 for the catalog and the declared lock-order DAG.

pub mod baseline;
pub mod config;
pub mod facts;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan;

use facts::Facts;
use report::Report;
use scan::{rs_files_under, SourceFile};
use std::collections::BTreeSet;
use std::path::Path;

/// Load a source file with a repo-relative display path; `None` if absent.
fn load_rel(root: &Path, rel: &str) -> Option<SourceFile> {
    let p = root.join(rel);
    SourceFile::load(&p, Path::new(rel).to_path_buf()).ok()
}

/// Run all five lints over the workspace at `root`.
pub fn run_check(root: &Path) -> Report {
    let mut report = Report::default();
    let mut scanned: BTreeSet<String> = BTreeSet::new();

    // L1: lock-order over the concurrency layer.
    let l1_files: Vec<SourceFile> =
        config::L1_FILES.iter().filter_map(|rel| load_rel(root, rel)).collect();
    let mut facts = Facts::default();
    for f in &l1_files {
        facts.collect(f);
        scanned.insert(f.path.display().to_string());
    }
    lints::lock_order::check(&l1_files, &facts, config::L1_CALL_METHODS, &mut report);

    // L2: panic-path ratchet against the checked-in baseline.
    let base = baseline::load(&root.join(config::L2_BASELINE));
    let l2_files = baseline::l2_sources(root);
    for f in &l2_files {
        scanned.insert(f.path.display().to_string());
    }
    lints::panic_paths::check(&l2_files, &base, &mut report);

    // L3: protocol exhaustiveness.
    if let Some(proto) = load_rel(root, config::L3_PROTO) {
        scanned.insert(proto.path.display().to_string());
        let mut test_files = Vec::new();
        for dir in config::L3_TEST_DIRS {
            for p in rs_files_under(&root.join(dir)) {
                let display = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
                if let Ok(f) = SourceFile::load(&p, display) {
                    scanned.insert(f.path.display().to_string());
                    test_files.push(f);
                }
            }
        }
        lints::proto::check(&proto, &test_files, &mut report);
    }

    // L4 + L5 over all first-party sources. Facts (allow-discard) are
    // collected per file so annotations live next to the code they cover.
    for dir in config::L4_L5_DIRS {
        for p in rs_files_under(&root.join(dir)) {
            let display = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            let Ok(f) = SourceFile::load(&p, display) else { continue };
            scanned.insert(f.path.display().to_string());
            let mut file_facts = Facts::default();
            file_facts.collect(&f);
            lints::unsafety::check(&f, &mut report);
            lints::discard::check(&f, &file_facts, &mut report);
        }
    }

    report.files_scanned = scanned.len();
    report
}
