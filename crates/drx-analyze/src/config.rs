//! Repo-specific analysis scopes. `drx-analyze` is a workspace tool, not a
//! general linter: the file sets and method allowlist below encode what the
//! DRX workspace cares about (see DESIGN.md §9).

use std::path::{Path, PathBuf};

/// Files whose lock acquisitions participate in the L1 lock-order check —
/// the hand-built concurrency layer of the server, pool and PFS.
pub const L1_FILES: &[&str] = &[
    "crates/drx-server/src/lock.rs",
    "crates/drx-server/src/cache.rs",
    "crates/drx-server/src/server.rs",
    "crates/drx-mp/src/mpool.rs",
    "crates/drx-pfs/src/file.rs",
    "crates/drx-pfs/src/server.rs",
    "crates/drx-pfs/src/backend.rs",
    "crates/drx-pfs/src/par.rs",
];

/// Method / function names that participate in L1 call-summary
/// propagation. Calls to any *other* name are treated as opaque: this
/// keeps ubiquitous std names (`len`, `get`, `extend`, `insert`, …) from
/// aliasing into the lock layer and fabricating edges. The list only
/// needs the names that move work between the files in [`L1_FILES`].
pub const L1_CALL_METHODS: &[&str] = &[
    // drx-server cache / lock / session layer. `stats` and `chunk_bytes`
    // are deliberately absent: both names are also pure accessors on
    // `ChunkPool` / `ArrayMeta`, and including them fabricates edges.
    "acquire",
    "wait_count",
    "locked_chunks",
    "ensure_resident",
    "read_chunks",
    "put_chunk",
    "credit",
    "flush",
    "session_stats",
    "global_stats",
    "drop_session",
    "coalesced_batches",
    "batched_chunks",
    "session_count",
    // drx-mp pool
    "prefetch",
    "put",
    "fault_in",
    "evict",
    "clear",
    // drx-pfs file / server layer
    "read_vec",
    "read_at",
    "write_at",
    "set_len",
    "read",
    "write",
    "open",
    "with_entry",
    "check_fault",
    "ensure_file",
    "remove_file",
];

/// Crates whose non-test sources are scanned by L2 (panic-path), tracked
/// against the checked-in baseline.
pub const L2_CRATES: &[&str] = &["crates/drx-server", "crates/drx-pfs", "crates/drx-msg"];

/// The protocol module for L3, and the test sources that must exercise
/// every variant.
pub const L3_PROTO: &str = "crates/drx-server/src/proto.rs";
pub const L3_TEST_DIRS: &[&str] = &["crates/drx-server/tests"];

/// Directories scanned by L4 (unsafe inventory) and L5 (discarded
/// Results): all first-party library code. `support/` shims are vendored
/// stand-ins and stay out of scope.
pub const L4_L5_DIRS: &[&str] = &[
    "crates/drx-core/src",
    "crates/drx-pfs/src",
    "crates/drx-msg/src",
    "crates/drx-mp/src",
    "crates/drx-server/src",
    "crates/drx-baselines/src",
    "src",
];

/// Default baseline location, relative to the workspace root.
pub const L2_BASELINE: &str = "crates/drx-analyze/baseline/panic_sites.txt";

/// Resolve the workspace root: an explicit `--root`, or walk up from the
/// current directory to the first directory containing `Cargo.toml` with a
/// `[workspace]` table.
pub fn find_root(explicit: Option<&Path>) -> Option<PathBuf> {
    if let Some(p) = explicit {
        return Some(p.to_path_buf());
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
