//! Findings and the check report.

use std::fmt;

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// L1: lock-order / lock-class violations.
    LockOrder,
    /// L2: `unwrap()` / `expect(` / `panic!` in non-test code beyond the
    /// baseline.
    PanicPath,
    /// L3: protocol opcode without encode / decode / roundtrip coverage.
    ProtoExhaustive,
    /// L4: `unsafe` without a `// SAFETY:` comment.
    UnsafeInventory,
    /// L5: `let _ = …` discarding a Result without `// allow-discard:`.
    DiscardedResult,
}

impl Lint {
    pub fn code(&self) -> &'static str {
        match self {
            Lint::LockOrder => "L1",
            Lint::PanicPath => "L2",
            Lint::ProtoExhaustive => "L3",
            Lint::UnsafeInventory => "L4",
            Lint::DiscardedResult => "L5",
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Lint::LockOrder => "lock-order",
            Lint::PanicPath => "panic-path",
            Lint::ProtoExhaustive => "proto-exhaustive",
            Lint::UnsafeInventory => "unsafe-inventory",
            Lint::DiscardedResult => "discarded-result",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file,
            self.line,
            self.lint.code(),
            self.lint.name(),
            self.message
        )
    }
}

/// The result of a full `check` run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Informational notes (baseline slack, skipped files).
    pub notes: Vec<String>,
    /// Files scanned, for the summary line.
    pub files_scanned: usize,
}

impl Report {
    pub fn push(&mut self, lint: Lint, file: &str, line: u32, message: String) {
        self.findings.push(Finding { lint, file: file.to_string(), line, message });
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn count(&self, lint: Lint) -> usize {
        self.findings.iter().filter(|f| f.lint == lint).count()
    }

    /// Render the human-readable report; findings sorted by file/line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut findings = self.findings.clone();
        findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        for f in &findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        let by_lint: Vec<String> = [
            Lint::LockOrder,
            Lint::PanicPath,
            Lint::ProtoExhaustive,
            Lint::UnsafeInventory,
            Lint::DiscardedResult,
        ]
        .iter()
        .map(|l| format!("{} {}", l.code(), self.count(*l)))
        .collect();
        out.push_str(&format!(
            "drx-analyze: {} file(s), {} finding(s) ({})\n",
            self.files_scanned,
            self.findings.len(),
            by_lint.join(", ")
        ));
        out
    }
}
