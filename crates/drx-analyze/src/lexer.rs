//! A hand-rolled Rust token scanner.
//!
//! The analyzer deliberately avoids `syn` and friends: the build
//! environment is offline (see `support/`), and the lints below only need
//! a faithful *token* stream — identifiers, punctuation, literals and
//! comments with line numbers — not a full syntax tree. The scanner
//! understands everything that can hide a token from a naive regex:
//! string/char/byte literals with escapes, raw strings with `#` fences,
//! nested block comments, lifetimes vs. char literals, and doc comments.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For comments this includes the `//` / `/*` sigils; for
    /// string literals the text is not preserved (lints never look inside).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A single punctuation character (`.`, `{`, `(`, `;`, `#`, …).
    Punct,
    /// String/char/byte/numeric literal (contents dropped).
    Lit,
    /// Lifetime such as `'a` (kept distinct so `'a` is never a char).
    Lifetime,
    /// Line or block comment, text preserved for fact extraction.
    Comment,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lex `src` into a token stream. Never fails: unterminated constructs are
/// closed at end of input (the lints run on code that already compiles, so
/// this only matters for fixture robustness).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_lit(line),
                'r' | 'b' if self.raw_or_byte_string(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphanumeric() || c == '_' => self.word(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    fn string_lit(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Lit, String::new(), line);
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'` prefixes. Returns
    /// true if a literal was consumed; false means the `r`/`b` starts a
    /// plain identifier (or a raw identifier `r#name`).
    fn raw_or_byte_string(&mut self, line: u32) -> bool {
        let c0 = self.peek(0);
        let (skip, rest) = match (c0, self.peek(1)) {
            (Some('b'), Some('"')) => (1, Some('"')),
            (Some('b'), Some('\'')) => {
                // Byte char literal b'x' (incl. b'\'').
                self.bump();
                self.char_body(line);
                return true;
            }
            (Some('b'), Some('r')) => (2, self.peek(2)),
            (Some('r'), c1) => (1, c1),
            _ => return false,
        };
        match rest {
            Some('"') => {
                for _ in 0..skip {
                    self.bump();
                }
                self.raw_string_body(0, line);
                true
            }
            Some('#') => {
                // Count fence hashes; `r#ident` (one hash then ident char)
                // is a raw identifier, not a string.
                let mut hashes = 0;
                while self.peek(skip + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(skip + hashes) == Some('"') {
                    for _ in 0..skip + hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes, line);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push(TokKind::Lit, String::new(), line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` followed by non-quote is a lifetime; `'a'`, `'\n'`, `'''`
        // are char literals.
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = match (c1, c2) {
            (Some('\\'), _) => false,
            (Some(c), Some('\'')) if c != '\'' => false,
            (Some(c), _) if c.is_alphabetic() || c == '_' => true,
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
        } else {
            self.char_body(line);
        }
    }

    fn char_body(&mut self, line: u32) {
        self.bump(); // opening '
        if let Some('\\') = self.bump() {
            self.bump();
        }
        // Consume to the closing quote (handles '\u{...}').
        while let Some(c) = self.peek(0) {
            self.bump();
            if c == '\'' {
                break;
            }
        }
        self.push(TokKind::Lit, String::new(), line);
    }

    fn word(&mut self, line: u32) {
        let mut text = String::new();
        // Raw identifier prefix.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = if text.starts_with(|c: char| c.is_ascii_digit()) {
            TokKind::Lit
        } else {
            TokKind::Ident
        };
        self.push(kind, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn words_and_puncts() {
        let toks = lex("let x = a.lock();");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "lock", "(", ")", ";"]);
    }

    #[test]
    fn strings_hide_tokens() {
        assert_eq!(idents(r#"f("x.lock() unwrap()")"#), ["f"]);
        assert_eq!(idents(r##"g(r#"quote " inside"#)"##), ["g"]);
        assert_eq!(idents("h(b\"bytes\")"), ["h"]);
    }

    #[test]
    fn comments_are_kept_with_text() {
        let toks = lex("a // lock-order: A -> B\nb /* block */ c");
        let comments: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Comment).map(|t| t.text.as_str()).collect();
        assert_eq!(comments, ["// lock-order: A -> B", "/* block */"]);
        assert_eq!(idents("a // x.unwrap()\nb"), ["a", "b"]);
    }

    #[test]
    fn nested_block_comment() {
        assert_eq!(idents("a /* one /* two */ still */ b"), ["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lts: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lts, ["'a", "'a"]);
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn raw_identifier_is_ident() {
        assert_eq!(idents("r#type r#match normal"), ["type", "match", "normal"]);
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
