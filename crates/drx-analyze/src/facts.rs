//! Declared facts, extracted from structured comments in the scanned
//! sources.
//!
//! Three comment forms are recognized anywhere in a file:
//!
//! * `// lock-class: <suffix> => <Class>` — classifies lock acquisitions.
//!   `<suffix>` is a dotted field-path suffix (`table`, `inner.meta`); the
//!   acquisition `self.inner.meta.lock()` is classified by the longest
//!   declared suffix that matches its receiver path.
//! * `// lock-order: <A> -> <B>` — declares that a thread holding class
//!   `A` may acquire class `B`. The union of declared and observed edges
//!   must form a DAG, and every observed edge must be declared.
//! * `// allow-discard: <reason>` — on the line of (or the line before) a
//!   `let _ = …;` statement, suppresses the L5 discarded-Result lint.

use crate::scan::SourceFile;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockClassFact {
    /// Dotted suffix, split into segments (`["inner", "meta"]`).
    pub suffix: Vec<String>,
    pub class: String,
    pub file: String,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockOrderFact {
    pub from: String,
    pub to: String,
}

#[derive(Debug, Default)]
pub struct Facts {
    pub classes: Vec<LockClassFact>,
    pub order: Vec<(LockOrderFact, String, u32)>,
    /// Lines carrying an `allow-discard` comment, per file.
    pub allow_discard: HashMap<String, Vec<u32>>,
}

impl Facts {
    /// Extract facts from one file, appending to `self`.
    pub fn collect(&mut self, f: &SourceFile) {
        let path = f.path.display().to_string();
        for (_, tok) in f.comments() {
            let text = comment_payload(&tok.text);
            if let Some(rest) = text.strip_prefix("lock-class:") {
                if let Some((suffix, class)) = rest.split_once("=>") {
                    self.classes.push(LockClassFact {
                        suffix: suffix.trim().split('.').map(|s| s.trim().to_string()).collect(),
                        class: class.trim().to_string(),
                        file: path.clone(),
                        line: tok.line,
                    });
                }
            } else if let Some(rest) = text.strip_prefix("lock-order:") {
                // One edge per comment: `A -> B`.
                if let Some((a, b)) = rest.split_once("->") {
                    self.order.push((
                        LockOrderFact { from: a.trim().to_string(), to: b.trim().to_string() },
                        path.clone(),
                        tok.line,
                    ));
                }
            } else if text.starts_with("allow-discard") {
                self.allow_discard.entry(path.clone()).or_default().push(tok.line);
            }
        }
    }

    /// Classify a dotted receiver path (last segment last). Longest
    /// matching declared suffix wins.
    pub fn classify(&self, path_segments: &[String]) -> Option<&LockClassFact> {
        self.classes
            .iter()
            .filter(|c| {
                c.suffix.len() <= path_segments.len()
                    && path_segments[path_segments.len() - c.suffix.len()..] == c.suffix[..]
            })
            .max_by_key(|c| c.suffix.len())
    }

    pub fn discard_allowed(&self, file: &str, line: u32) -> bool {
        self.allow_discard
            .get(file)
            .is_some_and(|lines| lines.iter().any(|&l| l == line || l + 1 == line))
    }
}

/// Strip comment sigils and leading doc markers, returning trimmed text.
fn comment_payload(text: &str) -> &str {
    let t = text.trim_start_matches('/').trim_start_matches('*').trim_start_matches('!').trim();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn facts_of(src: &str) -> Facts {
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        let mut facts = Facts::default();
        facts.collect(&f);
        facts
    }

    #[test]
    fn parses_class_and_order() {
        let f = facts_of(
            "// lock-class: inner.meta => PfsMeta\n\
             // lock-order: A -> B\n\
             fn x() {}",
        );
        assert_eq!(f.classes.len(), 1);
        assert_eq!(f.classes[0].suffix, ["inner", "meta"]);
        assert_eq!(f.classes[0].class, "PfsMeta");
        assert_eq!(f.order.len(), 1);
        assert_eq!(f.order[0].0, LockOrderFact { from: "A".into(), to: "B".into() });
    }

    #[test]
    fn longest_suffix_wins() {
        let f =
            facts_of("// lock-class: meta => ArrayMeta\n// lock-class: inner.meta => PfsMeta\n");
        let seg = |s: &str| s.split('.').map(str::to_string).collect::<Vec<_>>();
        assert_eq!(f.classify(&seg("array.meta")).unwrap().class, "ArrayMeta");
        assert_eq!(f.classify(&seg("self.inner.meta")).unwrap().class, "PfsMeta");
        assert!(f.classify(&seg("other")).is_none());
    }

    #[test]
    fn allow_discard_lines() {
        let f = facts_of("fn a() {\n    // allow-discard: best effort\n    let _ = go();\n}\n");
        assert!(f.discard_allowed("x.rs", 2));
        assert!(f.discard_allowed("x.rs", 3)); // line after the comment
        assert!(!f.discard_allowed("x.rs", 4));
    }
}
