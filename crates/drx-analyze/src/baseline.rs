//! The L2 panic-site baseline: accepted technical debt, checked in as
//! `<count>\t<path>` lines and only allowed to shrink.

use crate::config;
use crate::lints::panic_paths;
use crate::scan::{rs_files_under, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

/// Parse a baseline file. Missing file → empty baseline (strict mode).
pub fn load(path: &Path) -> BTreeMap<String, usize> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    parse(&text)
}

pub fn parse(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((count, path)) = line.split_once('\t') {
            if let Ok(n) = count.trim().parse::<usize>() {
                out.insert(path.trim().to_string(), n);
            }
        }
    }
    out
}

pub fn render(map: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# L2 panic-site baseline: accepted `unwrap()` / `expect(` / `panic!` debt.\n\
         # Regenerate with `cargo run -p drx-analyze -- baseline`; counts may only shrink.\n",
    );
    for (path, n) in map {
        out.push_str(&format!("{n}\t{path}\n"));
    }
    out
}

/// Scan the configured L2 crates under `root` and produce the current
/// per-file counts (files with zero sites omitted).
pub fn generate(root: &Path) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for f in l2_sources(root) {
        let n = panic_paths::scan_file(&f).len();
        if n > 0 {
            out.insert(f.path.display().to_string(), n);
        }
    }
    out
}

/// Load the non-test sources in L2 scope, with repo-relative display paths.
pub fn l2_sources(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    for krate in config::L2_CRATES {
        let dir = root.join(krate).join("src");
        for p in rs_files_under(&dir) {
            let display = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            if let Ok(f) = SourceFile::load(&p, display) {
                out.push(f);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let text = "# comment\n3\tcrates/a/src/x.rs\n1\tcrates/b/src/y.rs\n";
        let map = parse(text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["crates/a/src/x.rs"], 3);
        let again = parse(&render(&map));
        assert_eq!(map, again);
    }
}
