//! Property tests at the drx-mp layer: the Mpool-cached array is
//! behaviourally identical to the plain serial array under random operation
//! scripts, and the serial array round-trips arbitrary region writes in
//! both layouts.

use drx_core::{Layout, Region};
use drx_mp::{CachedDrxFile, DrxFile};
use drx_pfs::Pfs;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set { frac: (f64, f64), value: i64 },
    Get { frac: (f64, f64) },
    Extend { dim: usize, by: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0.0f64..1.0, 0.0f64..1.0), any::<i64>())
            .prop_map(|(frac, value)| Op::Set { frac, value }),
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|frac| Op::Get { frac }),
        (0usize..2, 1usize..4).prop_map(|(dim, by)| Op::Extend { dim, by }),
    ]
}

fn pick(bounds: &[usize], frac: (f64, f64)) -> Vec<usize> {
    vec![
        ((frac.0 * bounds[0] as f64) as usize).min(bounds[0] - 1),
        ((frac.1 * bounds[1] as f64) as usize).min(bounds[1] - 1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached and uncached arrays agree op-for-op, and the flushed file
    /// equals the uncached file byte-for-byte.
    #[test]
    fn cached_equals_uncached_under_random_scripts(
        pool_chunks in 1usize..6,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let pfs_a = Pfs::memory(2, 256).unwrap();
        let pfs_b = Pfs::memory(2, 256).unwrap();
        let plain: DrxFile<i64> = DrxFile::create(&pfs_a, "x", &[2, 3], &[5, 6]).unwrap();
        let mut plain = plain;
        let cached = DrxFile::<i64>::create(&pfs_b, "x", &[2, 3], &[5, 6]).unwrap();
        let mut cached = CachedDrxFile::new(cached, pool_chunks).unwrap();
        for op in &ops {
            match op {
                Op::Set { frac, value } => {
                    let idx = pick(plain.bounds(), *frac);
                    plain.set(&idx, *value).unwrap();
                    cached.set(&idx, *value).unwrap();
                }
                Op::Get { frac } => {
                    let idx = pick(plain.bounds(), *frac);
                    prop_assert_eq!(plain.get(&idx).unwrap(), cached.get(&idx).unwrap());
                }
                Op::Extend { dim, by } => {
                    plain.extend(*dim, *by).unwrap();
                    cached.extend(*dim, *by).unwrap();
                }
            }
        }
        // Flush and compare the complete logical contents.
        cached.flush().unwrap();
        let bounds = plain.bounds().to_vec();
        let full = Region::new(vec![0, 0], bounds).unwrap();
        let a = plain.read_region(&full, Layout::C).unwrap();
        let reopened: DrxFile<i64> = DrxFile::open(&pfs_b, "x").unwrap();
        let b = reopened.read_region(&full, Layout::C).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Serial region writes in a random layout read back identically in
    /// both layouts (relayout consistency at the file level).
    #[test]
    fn serial_region_write_round_trips_layouts(
        chunk in prop::collection::vec(1usize..4, 2),
        bounds in prop::collection::vec(2usize..8, 2),
        lo_frac in (0.0f64..1.0, 0.0f64..1.0),
        hi_frac in (0.0f64..1.0, 0.0f64..1.0),
        fortran in any::<bool>(),
        seed in any::<i64>(),
    ) {
        let pfs = Pfs::memory(2, 128).unwrap();
        let mut f: DrxFile<i64> = DrxFile::create(&pfs, "y", &chunk, &bounds).unwrap();
        let lo: Vec<usize> = bounds
            .iter()
            .zip([lo_frac.0, lo_frac.1])
            .map(|(&b, fr)| ((fr * b as f64) as usize).min(b - 1))
            .collect();
        let hi: Vec<usize> = bounds
            .iter()
            .zip([hi_frac.0, hi_frac.1])
            .zip(&lo)
            .map(|((&b, fr), &l)| (l + 1 + (fr * (b - l) as f64) as usize).min(b))
            .collect();
        let region = Region::new(lo, hi).unwrap();
        prop_assume!(!region.is_empty());
        let layout = if fortran { Layout::Fortran } else { Layout::C };
        let data: Vec<i64> =
            (0..region.volume()).map(|i| seed.wrapping_add(i as i64)).collect();
        f.write_region(&region, layout, &data).unwrap();
        prop_assert_eq!(f.read_region(&region, layout).unwrap(), data.clone());
        // Reading in the other layout is the in-memory relayout.
        let other = if fortran { Layout::C } else { Layout::Fortran };
        let got = f.read_region(&region, other).unwrap();
        let expect =
            drx_core::order::relayout(&data, &region.extents(), layout, other).unwrap();
        prop_assert_eq!(got, expect);
    }
}
