//! Contention test for `ChunkPool` statistics accounting.
//!
//! `ChunkPool` itself is `&mut self` — concurrent users share it behind a
//! mutex, exactly as `drx-server`'s `SharedChunkCache` does. This test
//! hammers one pool from many threads with a mixed hit/miss/eviction
//! workload and then checks the cumulative `PoolStats` against invariants
//! that must hold *regardless of interleaving*:
//!
//! * every chunk access is either a hit or a miss (conservation);
//! * every miss faults a frame in, every eviction throws one out, and the
//!   pool can never hold more than `capacity` frames, so
//!   `misses - evictions` is bounded by the capacity;
//! * dirty frames written back are counted once per writeback, and after a
//!   final flush the file contents reflect every write exactly.

use drx_mp::{ChunkPool, PoolStats};
use drx_pfs::Pfs;
use std::sync::{Arc, Mutex};
use std::thread;

const CB: usize = 128; // chunk bytes
const CHUNKS: usize = 24;
const CAPACITY: usize = 8; // far below CHUNKS: evictions guaranteed
const THREADS: usize = 8;
const ROUNDS: usize = 40;

fn make_pool() -> (Pfs, Arc<Mutex<ChunkPool>>) {
    let pfs = Pfs::memory(2, 1024).unwrap();
    let f = pfs.create("pool").unwrap();
    f.set_len((CHUNKS * CB) as u64).unwrap();
    for a in 0..CHUNKS {
        f.write_at((a * CB) as u64, &[a as u8; CB]).unwrap();
    }
    let pool = ChunkPool::new(f, CB, CAPACITY).unwrap();
    (pfs, Arc::new(Mutex::new(pool)))
}

#[test]
fn concurrent_mixed_workload_keeps_stats_consistent() {
    let (pfs, pool) = make_pool();
    let accesses_per_thread = ROUNDS * 3; // two reads + one write per round
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            for r in 0..ROUNDS {
                // A hot chunk (likely hit), a roving cold chunk (likely
                // miss + eviction), and a write to the thread's own chunk.
                let hot = (t % 4) as u64;
                let cold = ((t * 7 + r * 5) % CHUNKS) as u64;
                let own = ((t + 8) % CHUNKS) as u64;

                let mut buf = [0u8; CB];
                {
                    let mut p = pool.lock().unwrap();
                    p.read(hot, 0, &mut buf).unwrap();
                }
                {
                    let mut p = pool.lock().unwrap();
                    p.read(cold, 0, &mut buf).unwrap();
                    // Unwritten chunks always read back their fill pattern,
                    // no matter how often they were evicted and refaulted.
                    if cold >= 16 {
                        assert!(buf.iter().all(|&b| b == cold as u8), "chunk {cold} corrupted");
                    }
                }
                {
                    let mut p = pool.lock().unwrap();
                    p.write(own, 0, &[0xC0 | t as u8; 16]).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let mut p = pool.lock().unwrap();
    let s: PoolStats = p.stats();

    // Conservation: every access was classified exactly once.
    assert_eq!(
        s.hits + s.misses,
        (THREADS * accesses_per_thread) as u64,
        "hits {} + misses {} must equal total accesses",
        s.hits,
        s.misses
    );
    // The workload touches more distinct chunks than fit, so both hits
    // (hot set) and misses+evictions (cold sweep) must occur.
    assert!(s.hits > 0, "hot chunks should hit");
    assert!(s.misses > 0, "cold sweep should miss");
    assert!(s.evictions > 0, "capacity {CAPACITY} < working set forces evictions");
    // Frames in = frames out + frames resident; residency is capped.
    assert!(
        s.misses - s.evictions <= CAPACITY as u64,
        "misses {} - evictions {} exceeds capacity {CAPACITY}",
        s.misses,
        s.evictions
    );
    // Dirty evictions wrote back; plus the final flush.
    let before_flush = s.writebacks;
    p.flush().unwrap();
    let after = p.stats();
    assert!(after.writebacks >= before_flush);
    drop(p);

    // Every thread's own-chunk write must have survived eviction traffic.
    let f = pfs.open("pool").unwrap();
    for t in 0..THREADS {
        let own = (t + 8) % CHUNKS;
        let bytes = f.read_vec((own * CB) as u64, 16).unwrap();
        assert_eq!(bytes, vec![0xC0 | t as u8; 16], "chunk {own} lost thread {t}'s write");
    }
}

#[test]
fn concurrent_prefetch_and_reads_agree() {
    // Interleave coalesced prefetches with point reads from other threads;
    // stats must still conserve and data must stay correct.
    let (_pfs, pool) = make_pool();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            for r in 0..ROUNDS / 2 {
                let base = ((t + r) % (CHUNKS - 4)) as u64;
                if t % 2 == 0 {
                    let out = pool.lock().unwrap().prefetch(&[base, base + 1, base + 2]).unwrap();
                    assert_eq!(out.resident + out.fetched, 3);
                    assert!(out.runs <= out.fetched);
                } else {
                    let mut buf = [0u8; CB];
                    pool.lock().unwrap().read(base, 0, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == base as u8));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = pool.lock().unwrap().stats();
    assert!(s.misses > 0);
    assert!(s.misses - s.evictions <= CAPACITY as u64);
    assert_eq!(s.writebacks, 0, "a read-only workload never writes back");
}
