//! Zones: the partitioning of the principal array's chunk grid onto the
//! processes of a parallel program (paper §II-A).
//!
//! "Partitioning and distributing the array chunks onto processes is always
//! along chunk boundaries. The entire array file is partitioned into
//! disjoint rectilinear regions where each region is composed of a set of
//! adjacent connected chunks referred to as a zone. … Each processor has the
//! meta-data information of the entire principal array and can compute the
//! range of the chunk indices that define the zones of every other process."
//!
//! Two distribution schemes are provided: HPF-style `BLOCK` (rectilinear
//! zones over a process grid — the Figure 1 case) and `BLOCK_CYCLIC(k)`
//! (chunks dealt cyclically in blocks of `k`, the scheme the paper's §V
//! lists as future work and which Panda supports).

use crate::error::{MpError, Result};
use drx_core::Region;

/// How the chunk grid is distributed over processes.
///
/// ```
/// use drx_mp::DistSpec;
///
/// // The paper's Figure 1: a 5×4 chunk grid over a 2×2 process grid.
/// let dist = DistSpec::block(vec![2, 2]);
/// assert_eq!(dist.owner_of_chunk(&[0, 0], &[5, 4]), 0);
/// assert_eq!(dist.owner_of_chunk(&[4, 3], &[5, 4]), 3);
/// // Every process can compute every zone from the replicated metadata.
/// let zone = dist.zone_chunk_region(2, &[5, 4]).unwrap();
/// assert_eq!((zone.lo(), zone.hi()), (&[3, 0][..], &[5, 2][..]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistSpec {
    /// HPF `BLOCK`: the process grid `proc_grid` (one extent per dimension,
    /// `∏ proc_grid = nprocs`) splits each dimension into contiguous
    /// near-equal chunk ranges.
    Block { proc_grid: Vec<usize> },
    /// HPF `BLOCK_CYCLIC(b)`: blocks of `block[j]` chunk indices are dealt
    /// round-robin to the process grid coordinates of dimension `j`.
    BlockCyclic { proc_grid: Vec<usize>, block: Vec<usize> },
}

impl DistSpec {
    /// A `BLOCK` distribution over an explicit process grid.
    pub fn block(proc_grid: Vec<usize>) -> Self {
        DistSpec::Block { proc_grid }
    }

    /// A `BLOCK_CYCLIC` distribution.
    pub fn block_cyclic(proc_grid: Vec<usize>, block: Vec<usize>) -> Self {
        DistSpec::BlockCyclic { proc_grid, block }
    }

    /// The paper's "default load balancing algorithm": factor `nprocs` into
    /// a near-balanced `k`-dimensional process grid (the `MPI_Dims_create`
    /// algorithm — largest prime factors go to the currently smallest grid
    /// extents).
    pub fn auto(nprocs: usize, rank: usize) -> Self {
        let mut grid = vec![1usize; rank];
        let mut factors = prime_factors(nprocs);
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let (pos, _) = grid.iter().enumerate().min_by_key(|&(_, &g)| g).expect("rank >= 1");
            grid[pos] *= f;
        }
        DistSpec::Block { proc_grid: grid }
    }

    pub fn proc_grid(&self) -> &[usize] {
        match self {
            DistSpec::Block { proc_grid } | DistSpec::BlockCyclic { proc_grid, .. } => proc_grid,
        }
    }

    /// Check consistency against array rank and communicator size.
    pub fn validate(&self, rank: usize, nprocs: usize) -> Result<()> {
        let grid = self.proc_grid();
        if grid.len() != rank {
            return Err(MpError::BadDistribution(format!(
                "process grid rank {} != array rank {rank}",
                grid.len()
            )));
        }
        if grid.contains(&0) {
            return Err(MpError::BadDistribution("process grid extent of zero".into()));
        }
        let p: usize = grid.iter().product();
        if p != nprocs {
            return Err(MpError::BadDistribution(format!(
                "process grid {grid:?} covers {p} processes, communicator has {nprocs}"
            )));
        }
        if let DistSpec::BlockCyclic { block, .. } = self {
            if block.len() != rank {
                return Err(MpError::BadDistribution(format!(
                    "block rank {} != array rank {rank}",
                    block.len()
                )));
            }
            if block.contains(&0) {
                return Err(MpError::BadDistribution("cyclic block extent of zero".into()));
            }
        }
        Ok(())
    }

    /// Process-grid coordinates of a linear rank (row-major).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        let grid = self.proc_grid();
        let mut coords = vec![0usize; grid.len()];
        let mut r = rank;
        for j in (0..grid.len()).rev() {
            coords[j] = r % grid[j];
            r /= grid[j];
        }
        coords
    }

    /// Linear rank of process-grid coordinates (row-major).
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        let grid = self.proc_grid();
        coords.iter().zip(grid).fold(0, |acc, (&c, &g)| acc * g + c)
    }

    /// The rank owning a chunk index, given the current chunk-grid bounds.
    pub fn owner_of_chunk(&self, chunk: &[usize], grid_bounds: &[usize]) -> usize {
        match self {
            DistSpec::Block { proc_grid } => {
                let coords: Vec<usize> = chunk
                    .iter()
                    .zip(grid_bounds.iter().zip(proc_grid))
                    .map(|(&c, (&g, &p))| block_owner(c, g, p))
                    .collect();
                self.rank_of(&coords)
            }
            DistSpec::BlockCyclic { proc_grid, block } => {
                let coords: Vec<usize> = chunk
                    .iter()
                    .zip(block.iter().zip(proc_grid))
                    .map(|(&c, (&b, &p))| (c / b) % p)
                    .collect();
                self.rank_of(&coords)
            }
        }
    }

    /// For `BLOCK`: the rectilinear chunk-index zone of a rank (`None` for
    /// block-cyclic, whose zones are not contiguous). The region may be
    /// empty when there are more processes than chunks along a dimension.
    pub fn zone_chunk_region(&self, rank: usize, grid_bounds: &[usize]) -> Option<Region> {
        match self {
            DistSpec::Block { proc_grid } => {
                let coords = self.coords_of(rank);
                let mut lo = Vec::with_capacity(coords.len());
                let mut hi = Vec::with_capacity(coords.len());
                for ((&c, &g), &p) in coords.iter().zip(grid_bounds).zip(proc_grid) {
                    let (l, h) = block_range(c, g, p);
                    lo.push(l);
                    hi.push(h);
                }
                Region::new(lo, hi).ok()
            }
            DistSpec::BlockCyclic { .. } => None,
        }
    }

    /// All chunk indices a rank owns, in row-major chunk-index order.
    pub fn chunks_of(&self, rank: usize, grid_bounds: &[usize]) -> Vec<Vec<usize>> {
        match self {
            DistSpec::Block { .. } => self
                .zone_chunk_region(rank, grid_bounds)
                .map(|r| r.iter().collect())
                .unwrap_or_default(),
            DistSpec::BlockCyclic { proc_grid, block } => {
                let coords = self.coords_of(rank);
                // Per-dimension owned index lists.
                let lists: Vec<Vec<usize>> = (0..grid_bounds.len())
                    .map(|j| {
                        (0..grid_bounds[j])
                            .filter(|&c| (c / block[j]) % proc_grid[j] == coords[j])
                            .collect()
                    })
                    .collect();
                if lists.iter().any(|l| l.is_empty()) {
                    return Vec::new();
                }
                // Cartesian product in row-major order.
                let mut out = Vec::new();
                let mut cursor = vec![0usize; lists.len()];
                loop {
                    out.push(cursor.iter().zip(&lists).map(|(&i, l)| l[i]).collect());
                    let mut j = lists.len();
                    loop {
                        if j == 0 {
                            return out;
                        }
                        j -= 1;
                        cursor[j] += 1;
                        if cursor[j] < lists[j].len() {
                            break;
                        }
                        cursor[j] = 0;
                        if j == 0 {
                            return out;
                        }
                    }
                }
            }
        }
    }
}

/// Contiguous BLOCK range of process coordinate `p` over `g` chunk indices
/// split across `procs` processes: the first `g % procs` processes get one
/// extra chunk.
fn block_range(p: usize, g: usize, procs: usize) -> (usize, usize) {
    let base = g / procs;
    let rem = g % procs;
    let lo = p * base + p.min(rem);
    let hi = lo + base + usize::from(p < rem);
    (lo.min(g), hi.min(g))
}

/// Inverse of [`block_range`]: the process coordinate owning chunk index `c`.
fn block_owner(c: usize, g: usize, procs: usize) -> usize {
    let base = g / procs;
    let rem = g % procs;
    if c < rem * (base + 1) {
        c / (base + 1)
    } else {
        rem + (c - rem * (base + 1)) / base.max(1)
    }
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_block_zones() {
        // Figure 1: 5×4 chunk grid over a 2×2 process grid.
        let d = DistSpec::block(vec![2, 2]);
        d.validate(2, 4).unwrap();
        let grid = [5usize, 4];
        // Zones: P0 rows 0..3 cols 0..2, P1 rows 0..3 cols 2..4,
        //        P2 rows 3..5 cols 0..2, P3 rows 3..5 cols 2..4.
        assert_eq!(
            d.zone_chunk_region(0, &grid).unwrap(),
            Region::new(vec![0, 0], vec![3, 2]).unwrap()
        );
        assert_eq!(
            d.zone_chunk_region(1, &grid).unwrap(),
            Region::new(vec![0, 2], vec![3, 4]).unwrap()
        );
        assert_eq!(
            d.zone_chunk_region(2, &grid).unwrap(),
            Region::new(vec![3, 0], vec![5, 2]).unwrap()
        );
        assert_eq!(
            d.zone_chunk_region(3, &grid).unwrap(),
            Region::new(vec![3, 2], vec![5, 4]).unwrap()
        );
    }

    #[test]
    fn block_owner_matches_zone_membership() {
        let d = DistSpec::block(vec![2, 3]);
        let grid = [7usize, 8];
        for rank in 0..6 {
            let zone = d.zone_chunk_region(rank, &grid).unwrap();
            for chunk in zone.iter() {
                assert_eq!(d.owner_of_chunk(&chunk, &grid), rank, "chunk {chunk:?}");
            }
        }
    }

    #[test]
    fn zones_partition_the_grid_exactly() {
        for spec in [
            DistSpec::block(vec![2, 2]),
            DistSpec::block(vec![4, 1]),
            DistSpec::block_cyclic(vec![2, 2], vec![1, 2]),
            DistSpec::block_cyclic(vec![1, 4], vec![3, 1]),
        ] {
            let grid = [6usize, 8];
            let mut owned = std::collections::HashMap::new();
            for rank in 0..4 {
                for chunk in spec.chunks_of(rank, &grid) {
                    assert!(
                        owned.insert(chunk.clone(), rank).is_none(),
                        "chunk {chunk:?} double-owned"
                    );
                    assert_eq!(spec.owner_of_chunk(&chunk, &grid), rank);
                }
            }
            assert_eq!(owned.len(), 48, "{spec:?} did not cover the grid");
        }
    }

    #[test]
    fn more_processes_than_chunks() {
        let d = DistSpec::block(vec![4]);
        let grid = [2usize];
        assert_eq!(d.chunks_of(0, &grid), vec![vec![0]]);
        assert_eq!(d.chunks_of(1, &grid), vec![vec![1]]);
        assert!(d.chunks_of(2, &grid).is_empty());
        assert!(d.chunks_of(3, &grid).is_empty());
        assert_eq!(d.owner_of_chunk(&[1], &grid), 1);
    }

    #[test]
    fn block_cyclic_deals_blocks() {
        // 1-D, 2 procs, block 2: chunks 0,1→p0; 2,3→p1; 4,5→p0; …
        let d = DistSpec::block_cyclic(vec![2], vec![2]);
        let grid = [8usize];
        assert_eq!(d.chunks_of(0, &grid), vec![vec![0], vec![1], vec![4], vec![5]]);
        assert_eq!(d.chunks_of(1, &grid), vec![vec![2], vec![3], vec![6], vec![7]]);
        assert!(d.zone_chunk_region(0, &grid).is_none());
    }

    #[test]
    fn auto_grid_is_balanced_and_covers() {
        let d = DistSpec::auto(12, 2);
        let grid = d.proc_grid();
        assert_eq!(grid.iter().product::<usize>(), 12);
        assert_eq!(grid.len(), 2);
        // 12 = 4×3 or 3×4 — never 12×1.
        assert!(grid.iter().all(|&g| g >= 3), "unbalanced grid {grid:?}");
        let d1 = DistSpec::auto(1, 3);
        assert_eq!(d1.proc_grid(), &[1, 1, 1]);
        let d7 = DistSpec::auto(7, 2);
        assert_eq!(d7.proc_grid().iter().product::<usize>(), 7);
    }

    #[test]
    fn coords_round_trip() {
        let d = DistSpec::block(vec![2, 3, 2]);
        for rank in 0..12 {
            assert_eq!(d.rank_of(&d.coords_of(rank)), rank);
        }
    }

    #[test]
    fn validation_errors() {
        assert!(DistSpec::block(vec![2, 2]).validate(2, 5).is_err());
        assert!(DistSpec::block(vec![2]).validate(2, 2).is_err());
        assert!(DistSpec::block(vec![0, 2]).validate(2, 0).is_err());
        assert!(DistSpec::block_cyclic(vec![2], vec![0]).validate(1, 2).is_err());
        assert!(DistSpec::block_cyclic(vec![2], vec![1, 1]).validate(1, 2).is_err());
        DistSpec::block_cyclic(vec![2], vec![3]).validate(1, 2).unwrap();
    }
}
