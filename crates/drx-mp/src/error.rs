//! Unified error type for the DRX / DRX-MP library layer.

use std::fmt;

/// Errors from the library layer, wrapping the substrate errors.
#[derive(Debug)]
pub enum MpError {
    /// Mapping / metadata error from `drx-core`.
    Core(drx_core::DrxError),
    /// Parallel file system error.
    Pfs(drx_pfs::PfsError),
    /// Runtime / collective / RMA / MPI-IO error.
    Msg(drx_msg::MsgError),
    /// Element type of the opened file does not match the requested Rust
    /// type.
    DTypeMismatch { file: drx_core::DType, requested: drx_core::DType },
    /// A distribution spec is inconsistent with the communicator or array.
    BadDistribution(String),
    /// Generic invalid argument.
    Invalid(String),
}

impl fmt::Display for MpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpError::Core(e) => write!(f, "{e}"),
            MpError::Pfs(e) => write!(f, "{e}"),
            MpError::Msg(e) => write!(f, "{e}"),
            MpError::DTypeMismatch { file, requested } => write!(
                f,
                "element type mismatch: file holds {}, requested {}",
                file.name(),
                requested.name()
            ),
            MpError::BadDistribution(why) => write!(f, "bad distribution: {why}"),
            MpError::Invalid(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for MpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpError::Core(e) => Some(e),
            MpError::Pfs(e) => Some(e),
            MpError::Msg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drx_core::DrxError> for MpError {
    fn from(e: drx_core::DrxError) -> Self {
        MpError::Core(e)
    }
}

impl From<drx_pfs::PfsError> for MpError {
    fn from(e: drx_pfs::PfsError) -> Self {
        MpError::Pfs(e)
    }
}

impl From<drx_msg::MsgError> for MpError {
    fn from(e: drx_msg::MsgError) -> Self {
        MpError::Msg(e)
    }
}

pub type Result<T> = std::result::Result<T, MpError>;

impl MpError {
    /// Bridge into the runtime's error type: useful inside `run_spmd`
    /// closures, which must return `drx_msg::Result`.
    pub fn into_msg(self) -> drx_msg::MsgError {
        match self {
            MpError::Msg(m) => m,
            other => drx_msg::MsgError::Invalid(other.to_string()),
        }
    }
}

/// Free-function form of [`MpError::into_msg`] for `map_err(to_msg)`.
pub fn to_msg(e: MpError) -> drx_msg::MsgError {
    e.into_msg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays() {
        let e: MpError = drx_core::DrxError::BadRank(0).into();
        assert!(e.to_string().contains("rank"));
        let e: MpError = drx_pfs::PfsError::NoSuchFile("f".into()).into();
        assert!(e.to_string().contains("f"));
        let e: MpError = drx_msg::MsgError::Poisoned.into();
        assert!(e.to_string().contains("poisoned"));
        let e = MpError::DTypeMismatch {
            file: drx_core::DType::Float64,
            requested: drx_core::DType::Int32,
        };
        assert!(e.to_string().contains("float64"));
    }
}
