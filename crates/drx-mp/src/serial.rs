//! The serial DRX library: one process, one extendible array file pair
//! (`name.xmd` + `name.xta`) on a (parallel or POSIX-style) file system.
//!
//! "Like HDF5, DRX-MP has a serial processing counterpart library called
//! simply DRX" (paper §I). The serial library is also the reference
//! implementation the parallel paths are tested against, and the tool a
//! single writer uses to initialize a principal array before parallel
//! processing (§IV-B: "the principal array … can be initialized either from
//! a single serial process or from a parallel program").

use crate::error::{MpError, Result};
use crate::read::ChunkPlan;
use drx_core::{dtype, ArrayMeta, Element, InitialLayout, Layout, Region};
use drx_pfs::{Pfs, PfsFile};

/// File-name suffixes used by the storage scheme (paper §IV).
pub const XMD_SUFFIX: &str = ".xmd";
pub const XTA_SUFFIX: &str = ".xta";

/// A disk-resident extendible array accessed from a single process.
///
/// ```
/// use drx_mp::DrxFile;
/// use drx_pfs::Pfs;
/// use drx_core::{Layout, Region};
///
/// let pfs = Pfs::memory(2, 1024).unwrap();
/// let mut a: DrxFile<f64> = DrxFile::create(&pfs, "demo", &[2, 2], &[4, 4]).unwrap();
/// a.set(&[3, 3], 1.5).unwrap();
/// a.extend(1, 4).unwrap(); // grow dimension 1: append-only
/// assert_eq!(a.get(&[3, 3]).unwrap(), 1.5);
/// let region = Region::new(vec![2, 2], vec![4, 6]).unwrap();
/// assert_eq!(a.read_region(&region, Layout::Fortran).unwrap().len(), 8);
/// ```
pub struct DrxFile<T: Element> {
    pfs: Pfs,
    base: String,
    meta: ArrayMeta,
    xta: PfsFile,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> DrxFile<T> {
    /// Create a new array file pair. The payload is sized for the initial
    /// bounds and reads as `T::default()` until written.
    pub fn create(
        pfs: &Pfs,
        base: &str,
        chunk_shape: &[usize],
        initial_bounds: &[usize],
    ) -> Result<Self> {
        Self::create_with_layout(pfs, base, chunk_shape, initial_bounds, InitialLayout::RowMajor)
    }

    /// Create with an explicit initial chunk layout — row-major or symmetric
    /// linear shell order (paper §IV-B: "chunks laid out either in row-major
    /// order or in the symmetric linear shell order").
    pub fn create_with_layout(
        pfs: &Pfs,
        base: &str,
        chunk_shape: &[usize],
        initial_bounds: &[usize],
        layout: InitialLayout,
    ) -> Result<Self> {
        let meta = ArrayMeta::new_with_layout(T::DTYPE, chunk_shape, initial_bounds, layout)?;
        let xmd = pfs.create(&format!("{base}{XMD_SUFFIX}"))?;
        xmd.write_at(0, &meta.encode())?;
        let xta = pfs.create(&format!("{base}{XTA_SUFFIX}"))?;
        xta.set_len(meta.payload_bytes())?;
        Ok(DrxFile {
            pfs: pfs.clone(),
            base: base.to_string(),
            meta,
            xta,
            _marker: std::marker::PhantomData,
        })
    }

    /// Open an existing array file pair; the stored element type must match
    /// `T`.
    pub fn open(pfs: &Pfs, base: &str) -> Result<Self> {
        let xmd = pfs.open(&format!("{base}{XMD_SUFFIX}"))?;
        let bytes = xmd.read_vec(0, xmd.len() as usize)?;
        let meta = ArrayMeta::decode(&bytes)?;
        if meta.dtype() != T::DTYPE {
            return Err(MpError::DTypeMismatch { file: meta.dtype(), requested: T::DTYPE });
        }
        let xta = pfs.open(&format!("{base}{XTA_SUFFIX}"))?;
        Ok(DrxFile {
            pfs: pfs.clone(),
            base: base.to_string(),
            meta,
            xta,
            _marker: std::marker::PhantomData,
        })
    }

    /// Delete both files of an array.
    pub fn delete(pfs: &Pfs, base: &str) -> Result<()> {
        pfs.delete(&format!("{base}{XMD_SUFFIX}"))?;
        pfs.delete(&format!("{base}{XTA_SUFFIX}"))?;
        Ok(())
    }

    pub fn base_name(&self) -> &str {
        &self.base
    }

    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// The raw `.xta` payload file handle (used by the Mpool cache layer).
    pub fn payload_file(&self) -> &PfsFile {
        &self.xta
    }

    /// Instantaneous element bounds.
    pub fn bounds(&self) -> &[usize] {
        self.meta.element_bounds()
    }

    /// Persist the metadata (called automatically by [`DrxFile::extend`]).
    /// The `.xmd` image is fsynced: extend-commit is the durability point
    /// after which the new bounds — and every chunk address they imply —
    /// must survive a crash, or payload written into the extended region
    /// would be unaddressable on reopen.
    pub fn sync_meta(&self) -> Result<()> {
        let name = format!("{}{XMD_SUFFIX}", self.base);
        let xmd = self.pfs.open(&name)?;
        let bytes = self.meta.encode();
        xmd.write_at(0, &bytes)?;
        xmd.set_len(bytes.len() as u64)?;
        xmd.sync()?;
        Ok(())
    }

    /// Extend dimension `dim` by `by` elements: appends zeroed chunks to the
    /// payload (no reorganization — the defining property) and rewrites the
    /// metadata file.
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<()> {
        let outcome = self.meta.extend(dim, by)?;
        if outcome.new_chunk_count > 0 {
            self.xta.set_len(self.meta.payload_bytes())?;
        }
        self.sync_meta()
    }

    /// Read one element.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        let off = self.meta.element_byte_offset(index)?;
        let bytes = self.xta.read_vec(off, T::SIZE)?;
        Ok(T::read_le(&bytes))
    }

    /// Write one element.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.meta.element_byte_offset(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.xta.write_at(off, &buf)?;
        Ok(())
    }

    /// The run-coalesced chunk plan covering an element region; entries
    /// are sorted by linear address — the sequential-scan order of §II-A.
    fn plan(&self, region: &Region) -> Result<ChunkPlan> {
        self.check_region(region)?;
        let chunk_region = self.meta.chunking().chunks_covering(region)?;
        let runs = self.meta.grid().region_runs(&chunk_region)?;
        Ok(ChunkPlan::from_runs(runs, self.meta.chunk_bytes()))
    }

    fn check_region(&self, region: &Region) -> Result<()> {
        if region.rank() != self.meta.rank() {
            return Err(MpError::Core(drx_core::DrxError::RankMismatch {
                expected: self.meta.rank(),
                got: region.rank(),
            }));
        }
        for (&h, &n) in region.hi().iter().zip(self.bounds()) {
            if h > n {
                return Err(MpError::Core(drx_core::DrxError::IndexOutOfBounds {
                    index: region.hi().to_vec(),
                    bounds: self.bounds().to_vec(),
                }));
            }
        }
        Ok(())
    }

    /// Read a rectilinear element region into a dense buffer with the
    /// requested memory layout. Chunks are fetched in increasing file
    /// address order (sequential scan) and elements are scattered to their
    /// in-memory positions — the on-the-fly transposition of §II-A.
    pub fn read_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        let plan = self.plan(region)?;
        let cb = self.meta.chunk_bytes() as usize;
        let mut bytes = vec![0u8; plan.bytes()];
        // One vectored request over the merged chunk extents.
        self.xta.read_extents_into(&plan.byte_extents(), &mut bytes)?;
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let chunk_strides = self.meta.chunking().strides();
        let mut out = vec![T::default(); region.volume() as usize];
        let mut idx = Vec::new();
        for i in 0..plan.len() {
            plan.write_index_at(i, &mut idx);
            let chunk_region = self.meta.chunking().chunk_elements(&idx)?;
            let Some(valid) = chunk_region.intersect(region) else { continue };
            crate::kernels::scatter_chunk(
                &bytes[i * cb..(i + 1) * cb],
                chunk_region.lo(),
                chunk_strides,
                &mut out,
                region.lo(),
                &strides,
                &valid,
            );
        }
        Ok(out)
    }

    /// Write a dense buffer (in the given layout) into an element region.
    /// Partial chunks are read-modified-written; fully covered chunks are
    /// written directly.
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(MpError::Core(drx_core::DrxError::BufferSize {
                expected: n,
                got: data.len(),
            }));
        }
        let plan = self.plan(region)?;
        let chunk_bytes = self.meta.chunk_bytes();
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let chunk_strides = self.meta.chunking().strides();
        let mut idx = Vec::new();
        for i in 0..plan.len() {
            plan.write_index_at(i, &mut idx);
            let chunk_region = self.meta.chunking().chunk_elements(&idx)?;
            let Some(valid) = chunk_region.intersect(region) else { continue };
            let addr = plan.entries[i].0;
            let full = valid == chunk_region;
            let mut bytes = if full {
                vec![0u8; chunk_bytes as usize]
            } else {
                self.xta.read_vec(addr * chunk_bytes, chunk_bytes as usize)?
            };
            crate::kernels::gather_chunk(
                data,
                region.lo(),
                &strides,
                &mut bytes,
                chunk_region.lo(),
                chunk_strides,
                &valid,
            );
            self.xta.write_at(addr * chunk_bytes, &bytes)?;
        }
        Ok(())
    }

    /// Read the whole valid array as a dense buffer.
    pub fn read_full(&self, layout: Layout) -> Result<Vec<T>> {
        self.read_region(&self.meta.element_region(), layout)
    }

    /// Write the whole valid array from a dense buffer.
    pub fn write_full(&mut self, layout: Layout, data: &[T]) -> Result<()> {
        let region = self.meta.element_region();
        self.write_region(&region, layout, data)
    }

    /// Fill every valid element from a function of its index (initialization
    /// helper; writes chunk by chunk).
    pub fn fill_with(&mut self, mut f: impl FnMut(&[usize]) -> T) -> Result<()> {
        let region = self.meta.element_region();
        let data: Vec<T> = region.iter().map(|idx| f(&idx)).collect();
        self.write_region(&region, Layout::C, &data)
    }

    /// Read a raw chunk's bytes by linear address (used by tests and
    /// baselines comparisons).
    pub fn read_chunk_raw(&self, addr: u64) -> Result<Vec<T>> {
        let cb = self.meta.chunk_bytes();
        let bytes = self.xta.read_vec(addr * cb, cb as usize)?;
        Ok(dtype::decode_slice(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfs() -> Pfs {
        Pfs::memory(4, 256).unwrap()
    }

    fn tag(idx: &[usize]) -> i64 {
        idx.iter().fold(7i64, |a, &i| a * 31 + i as i64)
    }

    #[test]
    fn create_open_round_trip() {
        let fs = pfs();
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "arr", &[2, 3], &[4, 5]).unwrap();
            f.set(&[3, 4], 99).unwrap();
        }
        let f: DrxFile<i64> = DrxFile::open(&fs, "arr").unwrap();
        assert_eq!(f.bounds(), &[4, 5]);
        assert_eq!(f.get(&[3, 4]).unwrap(), 99);
        assert_eq!(f.get(&[0, 0]).unwrap(), 0);
        // Wrong element type is rejected.
        assert!(matches!(DrxFile::<f64>::open(&fs, "arr"), Err(MpError::DTypeMismatch { .. })));
        DrxFile::<i64>::delete(&fs, "arr").unwrap();
        assert!(DrxFile::<i64>::open(&fs, "arr").is_err());
    }

    #[test]
    fn extension_preserves_data_and_appends_only() {
        let fs = pfs();
        let mut f: DrxFile<i64> = DrxFile::create(&fs, "a", &[2, 2], &[4, 4]).unwrap();
        f.fill_with(tag).unwrap();
        let payload_before = f.meta().payload_bytes();
        f.extend(1, 4).unwrap();
        f.extend(0, 2).unwrap();
        assert!(f.meta().payload_bytes() > payload_before);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(f.get(&[i, j]).unwrap(), tag(&[i, j]));
            }
        }
        // New cells are default.
        assert_eq!(f.get(&[5, 7]).unwrap(), 0);
        // Reopen sees the extended state.
        drop(f);
        let f: DrxFile<i64> = DrxFile::open(&fs, "a").unwrap();
        assert_eq!(f.bounds(), &[6, 8]);
        assert_eq!(f.get(&[2, 3]).unwrap(), tag(&[2, 3]));
    }

    #[test]
    fn read_region_matches_in_memory_reference() {
        let fs = pfs();
        let mut f: DrxFile<i64> = DrxFile::create(&fs, "a", &[2, 3], &[7, 8]).unwrap();
        let mut reference: drx_core::ExtendibleArray<i64> =
            drx_core::ExtendibleArray::new(&[2, 3], &[7, 8]).unwrap();
        f.fill_with(tag).unwrap();
        reference.fill_with(tag).unwrap();
        for (lo, hi) in
            [(vec![0, 0], vec![7, 8]), (vec![1, 2], vec![5, 7]), (vec![6, 0], vec![7, 8])]
        {
            let region = Region::new(lo, hi).unwrap();
            for layout in [Layout::C, Layout::Fortran] {
                assert_eq!(
                    f.read_region(&region, layout).unwrap(),
                    reference.read_region(&region, layout).unwrap()
                );
            }
        }
    }

    #[test]
    fn write_region_partial_chunks_preserve_neighbours() {
        let fs = pfs();
        let mut f: DrxFile<i64> = DrxFile::create(&fs, "a", &[4, 4], &[8, 8]).unwrap();
        f.fill_with(tag).unwrap();
        // Write a region that covers parts of all four chunks.
        let region = Region::new(vec![2, 2], vec![6, 6]).unwrap();
        let data = vec![-1i64; 16];
        f.write_region(&region, Layout::C, &data).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let expect = if region.contains(&[i, j]) { -1 } else { tag(&[i, j]) };
                assert_eq!(f.get(&[i, j]).unwrap(), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn fortran_order_write_read() {
        let fs = pfs();
        let mut f: DrxFile<f64> = DrxFile::create(&fs, "a", &[2, 2], &[3, 4]).unwrap();
        let region = f.meta().element_region();
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        f.write_region(&region, Layout::Fortran, &data).unwrap();
        assert_eq!(f.read_region(&region, Layout::Fortran).unwrap(), data);
        // Element (i,j) = data[j*3 + i] in Fortran order of a 3×4 array.
        assert_eq!(f.get(&[1, 2]).unwrap(), 7.0);
        let c = f.read_region(&region, Layout::C).unwrap();
        assert_eq!(c[4 + 2], 7.0);
    }

    #[test]
    fn region_validation() {
        let fs = pfs();
        let f: DrxFile<i32> = DrxFile::create(&fs, "a", &[2, 2], &[4, 4]).unwrap();
        assert!(f.read_region(&Region::new(vec![0, 0], vec![5, 4]).unwrap(), Layout::C).is_err());
        assert!(f.read_region(&Region::new(vec![0], vec![2]).unwrap(), Layout::C).is_err());
        assert!(f.get(&[4, 0]).is_err());
    }

    #[test]
    fn buffer_size_validation() {
        let fs = pfs();
        let mut f: DrxFile<i32> = DrxFile::create(&fs, "a", &[2, 2], &[4, 4]).unwrap();
        let region = Region::new(vec![0, 0], vec![2, 2]).unwrap();
        assert!(f.write_region(&region, Layout::C, &[1, 2, 3]).is_err());
    }

    #[test]
    fn shell_order_files_read_identically_to_row_major() {
        let fs = pfs();
        let mut rm: DrxFile<i64> = DrxFile::create(&fs, "rm", &[2, 2], &[8, 8]).unwrap();
        let mut sh: DrxFile<i64> =
            DrxFile::create_with_layout(&fs, "sh", &[2, 2], &[8, 8], InitialLayout::ShellOrder)
                .unwrap();
        rm.fill_with(tag).unwrap();
        sh.fill_with(tag).unwrap();
        // Logical contents identical; physical chunk order differs.
        let full = Region::new(vec![0, 0], vec![8, 8]).unwrap();
        assert_eq!(
            rm.read_region(&full, Layout::C).unwrap(),
            sh.read_region(&full, Layout::C).unwrap()
        );
        assert_ne!(
            rm.meta().grid().address(&[1, 0]).unwrap(),
            sh.meta().grid().address(&[1, 0]).unwrap()
        );
        // Both extend without moving existing chunks; reopen preserves the
        // shell history through the codec.
        sh.extend(0, 4).unwrap();
        drop(sh);
        let sh: DrxFile<i64> = DrxFile::open(&fs, "sh").unwrap();
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(sh.get(&[i, j]).unwrap(), tag(&[i, j]), "({i},{j})");
            }
        }
    }

    #[test]
    fn complex_data_round_trips() {
        use drx_core::Complex64;
        let fs = pfs();
        let mut f: DrxFile<Complex64> = DrxFile::create(&fs, "c", &[2], &[5]).unwrap();
        f.set(&[3], Complex64::new(1.5, -2.5)).unwrap();
        assert_eq!(f.get(&[3]).unwrap(), Complex64::new(1.5, -2.5));
    }
}
