//! Parallel sub-array writes (`DRXMP_Write` / `DRXMP_Write_all`).
//!
//! Writes are chunk-granular: fully covered chunks are assembled directly
//! from the user buffer; partially covered chunks are read first
//! (read-modify-write) so neighbouring elements survive. The collective
//! variants perform both the pre-read and the write as two-phase collective
//! I/O. Concurrent writers must target disjoint regions (zones are disjoint
//! by construction), matching MPI-IO's semantics for overlapping access.

use crate::error::{MpError, Result};
use crate::handle::DrxmpHandle;
use crate::read::ChunkPlan;
use drx_core::{Element, Layout, Region};

impl<T: Element> DrxmpHandle<T> {
    /// Assemble chunk images for `region` from `data`, reading partial
    /// chunks via `fetch` first.
    fn assemble_chunks(
        &mut self,
        region: &Region,
        layout: Layout,
        data: &[T],
        collective: bool,
    ) -> Result<(ChunkPlan, Vec<u8>)> {
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(MpError::Core(drx_core::DrxError::BufferSize {
                expected: n,
                got: data.len(),
            }));
        }
        let plan = self.plan_region(region)?;
        let chunk_bytes = self.meta.chunk_bytes() as usize;
        // Which planned chunks are only partially covered by the region?
        // Entries are address-sorted, so `partial` comes out pre-sorted.
        let mut partial: Vec<(Vec<usize>, u64)> = Vec::new();
        let mut idx = Vec::new();
        for i in 0..plan.len() {
            plan.write_index_at(i, &mut idx);
            let chunk_region = self.meta.chunking().chunk_elements(&idx)?;
            let covered = chunk_region.intersect(region);
            if covered.as_ref() != Some(&chunk_region) {
                partial.push((idx.clone(), plan.entries[i].0));
            }
        }
        let partial_plan = self.plan_chunks(partial);
        if collective {
            // Guard against silent corruption: two ranks read-modify-writing
            // the *same* partial chunk race at chunk granularity (the reason
            // the paper partitions along chunk boundaries). Detect it
            // collectively and fail loudly on every rank.
            let mine: Vec<u64> = partial_plan.entries.iter().map(|&(a, _, _)| a).collect();
            let all = self.comm.allgather_vec::<u64>(&mine)?;
            let mut seen = std::collections::HashMap::new();
            for (rank, addrs) in all.iter().enumerate() {
                for &a in addrs {
                    if let Some(prev) = seen.insert(a, rank) {
                        return Err(MpError::Invalid(format!(
                            "collective write conflict: ranks {prev} and {rank} both \
                             partially cover chunk {a}; align regions to chunk boundaries"
                        )));
                    }
                }
            }
        }
        let partial_bytes = self.fetch_plan(&partial_plan, collective)?;
        // Build the chunk images.
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let chunk_strides = self.meta.chunking().strides();
        let mut bytes = vec![0u8; plan.bytes()];
        let mut pi = 0usize;
        for (i, &(addr, _, _)) in plan.entries.iter().enumerate() {
            let dst = &mut bytes[i * chunk_bytes..(i + 1) * chunk_bytes];
            if pi < partial_plan.len() && partial_plan.entries[pi].0 == addr {
                dst.copy_from_slice(&partial_bytes[pi * chunk_bytes..(pi + 1) * chunk_bytes]);
                pi += 1;
            }
            plan.write_index_at(i, &mut idx);
            let chunk_region = self.meta.chunking().chunk_elements(&idx)?;
            let Some(valid) = chunk_region.intersect(region) else { continue };
            crate::kernels::gather_chunk(
                data,
                region.lo(),
                &strides,
                dst,
                chunk_region.lo(),
                chunk_strides,
                &valid,
            );
        }
        Ok((plan, bytes))
    }

    /// Write the assembled chunk images. Collective writes go through the
    /// indexed file view and two-phase I/O; independent writes issue the
    /// merged extents directly as one vectored request.
    fn store_plan(&mut self, plan: &ChunkPlan, bytes: &[u8], collective: bool) -> Result<()> {
        if collective {
            let ft = plan.filetype()?;
            self.xta.set_view(0, ft);
            self.xta.write_all(0, bytes)?;
            self.xta.set_view(0, None);
        } else {
            self.xta.write_extents(&plan.byte_extents(), bytes)?;
        }
        Ok(())
    }

    /// Independent write of an element region from a dense buffer in the
    /// given layout (`DRXMP_Write`).
    pub fn write_region(&mut self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        let (plan, bytes) = self.assemble_chunks(region, layout, data, false)?;
        self.store_plan(&plan, &bytes, false)
    }

    /// Collective write (`DRXMP_Write_all`): every rank passes its own
    /// region and data (or `None`). The partial-chunk pre-read and the
    /// write both run as two-phase collective I/O.
    pub fn write_region_all(
        &mut self,
        region: Option<(&Region, &[T])>,
        layout: Layout,
    ) -> Result<()> {
        match region {
            Some((r, data)) => {
                let (plan, bytes) = self.assemble_chunks(r, layout, data, true)?;
                self.store_plan(&plan, &bytes, true)
            }
            None => {
                // Mirror the Some branch's collective sequence exactly:
                // conflict-check allgather, pre-read, write.
                let _ = self.comm.allgather_vec::<u64>(&[])?;
                let empty = self.plan_chunks(Vec::new());
                let _ = self.fetch_plan(&empty, true)?;
                self.store_plan(&empty, &[], true)
            }
        }
    }

    /// Collective zone write: every rank writes `data` into its own zone.
    pub fn write_my_zone(&mut self, layout: Layout, data: Option<&[T]>) -> Result<()> {
        match (self.my_zone(), data) {
            (Some(zone), Some(d)) => self.write_region_all(Some((&zone, d)), layout),
            (None, None) => self.write_region_all(None, layout),
            (Some(zone), None) => Err(MpError::Invalid(format!(
                "rank {} owns zone {:?} but passed no data",
                self.rank(),
                zone
            ))),
            (None, Some(_)) => {
                Err(MpError::Invalid(format!("rank {} owns no zone but passed data", self.rank())))
            }
        }
    }

    /// Collective: write whole chunks this rank owns (the counterpart of
    /// [`DrxmpHandle::read_my_chunks`]; any distribution). Each entry must
    /// be an owned chunk index with exactly `chunk_elems` values in
    /// row-major order.
    pub fn write_my_chunks(&mut self, chunks: &[(Vec<usize>, Vec<T>)]) -> Result<()> {
        let per_chunk = self.meta.chunking().chunk_elems() as usize;
        let me = self.rank();
        let mut plan_pairs = Vec::with_capacity(chunks.len());
        for (idx, vals) in chunks {
            if vals.len() != per_chunk {
                return Err(MpError::Core(drx_core::DrxError::BufferSize {
                    expected: per_chunk,
                    got: vals.len(),
                }));
            }
            if self.owner_of_chunk(idx) != me {
                return Err(MpError::Invalid(format!("rank {me} does not own chunk {idx:?}")));
            }
            let addr = self.meta.grid().address(idx)?;
            plan_pairs.push((idx.clone(), addr));
        }
        // Sort data along with the plan by file address.
        let mut order: Vec<usize> = (0..plan_pairs.len()).collect();
        order.sort_by_key(|&i| plan_pairs[i].1);
        let sorted: Vec<(Vec<usize>, u64)> =
            order.iter().map(|&i| std::mem::take(&mut plan_pairs[i])).collect();
        let mut bytes = Vec::with_capacity(chunks.len() * self.meta.chunk_bytes() as usize);
        for &i in &order {
            bytes.extend_from_slice(&drx_core::dtype::encode_slice(&chunks[i].1));
        }
        let plan = self.plan_chunks(sorted);
        self.store_plan(&plan, &bytes, true)
    }

    /// Collective read-modify-write over this rank's zone: every rank reads
    /// its owned chunks, applies `f(element index, value) -> value` to each
    /// valid element, and writes the chunks back — the GA-toolkit-style
    /// "apply over the distributed array" pattern, at chunk granularity so
    /// it works for any distribution.
    pub fn update_my_zone(&mut self, mut f: impl FnMut(&[usize], T) -> T) -> Result<()> {
        let mut chunks = self.read_my_chunks()?;
        let chunking = self.meta.chunking().clone();
        let bounds = self.meta.element_bounds().to_vec();
        for (idx, vals) in &mut chunks {
            if let Some(valid) = chunking.chunk_valid_elements(idx, &bounds)? {
                let chunk_region = chunking.chunk_elements(idx)?;
                for e in valid.iter() {
                    let within: Vec<usize> =
                        e.iter().zip(chunk_region.lo()).map(|(&a, &l)| a - l).collect();
                    let off = chunking.within_offset(&within) as usize;
                    vals[off] = f(&e, vals[off]);
                }
            }
        }
        self.write_my_chunks(&chunks)
    }

    /// Write a single element directly (independent).
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.meta.element_byte_offset(index)?;
        if self.xta.has_view() {
            self.xta.set_view(0, None);
        }
        let vals = [value];
        if let Some(view) = T::as_le_bytes(&vals) {
            self.xta.write_at(off, view)?;
        } else {
            let mut buf = Vec::with_capacity(T::SIZE);
            vals[0].write_le(&mut buf);
            self.xta.write_at(off, &buf)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::to_msg;
    use crate::serial::DrxFile;
    use crate::zones::DistSpec;
    use drx_msg::run_spmd;
    use drx_pfs::Pfs;

    fn pfs() -> Pfs {
        Pfs::memory(4, 256).unwrap()
    }

    fn tag(idx: &[usize]) -> i64 {
        idx.iter().fold(3i64, |a, &i| a * 37 + i as i64)
    }

    #[test]
    fn zone_write_then_serial_read_back() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<i64> = DrxmpHandle::create(
                comm,
                &fs,
                "a",
                &[2, 3],
                &[10, 12],
                DistSpec::block(vec![2, 2]),
            )
            .map_err(to_msg)?;
            let zone = h.my_zone().expect("all ranks own zones here");
            let data: Vec<i64> = zone.iter().map(|i| tag(&i)).collect();
            h.write_my_zone(Layout::C, Some(&data)).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        // Serial verification.
        let f: DrxFile<i64> = DrxFile::open(&fs, "a").unwrap();
        for idx in f.meta().element_region().iter() {
            assert_eq!(f.get(&idx).unwrap(), tag(&idx), "at {idx:?}");
        }
    }

    #[test]
    fn collective_read_returns_zone_contents() {
        let fs = pfs();
        // Seed serially.
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "a", &[2, 3], &[10, 12]).unwrap();
            f.fill_with(tag).unwrap();
        }
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "a", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
            for layout in [Layout::C, Layout::Fortran] {
                let (zone, data) = h.read_my_zone(layout).map_err(to_msg)?.expect("zone");
                let extents = zone.extents();
                let strides = layout.strides(&extents);
                for idx in zone.iter() {
                    let rel: Vec<usize> = idx.iter().zip(zone.lo()).map(|(&a, &l)| a - l).collect();
                    let pos = drx_core::index::offset_with_strides(&rel, &strides) as usize;
                    assert_eq!(data[pos], tag(&idx), "layout {layout:?} at {idx:?}");
                }
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn independent_and_collective_reads_agree() {
        let fs = pfs();
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "a", &[3, 2], &[9, 8]).unwrap();
            f.fill_with(tag).unwrap();
        }
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "a", DistSpec::block(vec![2, 1])).map_err(to_msg)?;
            let region = Region::new(vec![1, 1], vec![8, 7]).unwrap();
            let ind = h.read_region(&region, Layout::C).map_err(to_msg)?;
            let coll = h.read_region_all(Some(&region), Layout::C).map_err(to_msg)?;
            assert_eq!(ind, coll);
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn partial_chunk_writes_preserve_neighbours_in_parallel() {
        let fs = pfs();
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "a", &[4, 4], &[8, 8]).unwrap();
            f.fill_with(tag).unwrap();
        }
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "a", DistSpec::block(vec![2, 1])).map_err(to_msg)?;
            // Rank 0 writes rows 1..3, rank 1 writes rows 5..7 (both partial
            // chunks, disjoint).
            let region = if comm.rank() == 0 {
                Region::new(vec![1, 1], vec![3, 7]).unwrap()
            } else {
                Region::new(vec![5, 1], vec![7, 7]).unwrap()
            };
            let data = vec![-9i64; region.volume() as usize];
            h.write_region_all(Some((&region, &data)), Layout::C).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        let f: DrxFile<i64> = DrxFile::open(&fs, "a").unwrap();
        let wrote = |i: usize, j: usize| {
            ((1..3).contains(&i) || (5..7).contains(&i)) && (1..7).contains(&j)
        };
        for i in 0..8 {
            for j in 0..8 {
                let expect = if wrote(i, j) { -9 } else { tag(&[i, j]) };
                assert_eq!(f.get(&[i, j]).unwrap(), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn collective_write_conflict_on_shared_partial_chunk_is_detected() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<i64> = DrxmpHandle::create(
                comm,
                &fs,
                "cf",
                &[8, 8],
                &[16, 8],
                DistSpec::block(vec![2, 1]),
            )
            .map_err(to_msg)?;
            // Rows 0..12 (rank 0) and 12..16 (rank 1): both partially cover
            // the chunk row 8..16 — a chunk-granular RMW race.
            let region = if comm.rank() == 0 {
                Region::new(vec![0, 0], vec![12, 8]).unwrap()
            } else {
                Region::new(vec![12, 0], vec![16, 8]).unwrap()
            };
            let data = vec![1i64; region.volume() as usize];
            let err = h
                .write_region_all(Some((&region, &data)), Layout::C)
                .expect_err("conflict must be detected");
            assert!(err.to_string().contains("write conflict"), "got: {err}");
            // Chunk-aligned regions go through fine afterwards.
            let region = if comm.rank() == 0 {
                Region::new(vec![0, 0], vec![8, 8]).unwrap()
            } else {
                Region::new(vec![8, 0], vec![16, 8]).unwrap()
            };
            let data = vec![2i64; region.volume() as usize];
            h.write_region_all(Some((&region, &data)), Layout::C).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn block_cyclic_chunk_io_round_trips() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<i64> = DrxmpHandle::create(
                comm,
                &fs,
                "bc",
                &[2, 2],
                &[8, 12],
                DistSpec::block_cyclic(vec![2, 2], vec![1, 2]),
            )
            .map_err(to_msg)?;
            // Each rank fills its owned chunks with chunk-tagged values.
            let owned = h.zone_chunks(comm.rank()).map_err(to_msg)?;
            let per_chunk = h.meta().chunking().chunk_elems() as usize;
            let payload: Vec<(Vec<usize>, Vec<i64>)> = owned
                .iter()
                .map(|(idx, addr)| (idx.clone(), vec![*addr as i64; per_chunk]))
                .collect();
            h.write_my_chunks(&payload).map_err(to_msg)?;
            // Read back collectively and verify.
            let back = h.read_my_chunks().map_err(to_msg)?;
            assert_eq!(back.len(), owned.len());
            for ((idx, vals), (oidx, addr)) in back.iter().zip(&owned) {
                assert_eq!(idx, oidx);
                assert!(vals.iter().all(|&v| v == *addr as i64));
            }
            // Writing a chunk we don't own is rejected.
            let foreign = owned.first().map(|(idx, _)| idx.clone());
            if let Some(mut fidx) = foreign {
                // Find some chunk owned by another rank.
                let total_region = h.meta().grid().full_region();
                for cand in total_region.iter() {
                    if h.owner_of_chunk(&cand) != comm.rank() {
                        fidx = cand;
                        break;
                    }
                }
                if h.owner_of_chunk(&fidx) != comm.rank() {
                    assert!(h.write_my_chunks(&[(fidx, vec![0; per_chunk])]).is_err());
                }
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        // Serial check: every chunk holds its own address as value.
        let f: DrxFile<i64> = DrxFile::open(&fs, "bc").unwrap();
        for addr in 0..f.meta().total_chunks() {
            let vals = f.read_chunk_raw(addr).unwrap();
            assert!(vals.iter().all(|&v| v == addr as i64), "chunk {addr}");
        }
    }

    #[test]
    fn update_my_zone_applies_everywhere_once() {
        let fs = pfs();
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "u", &[3, 3], &[10, 10]).unwrap();
            f.fill_with(tag).unwrap();
        }
        for dist in [DistSpec::block(vec![2, 2]), DistSpec::block_cyclic(vec![2, 2], vec![1, 1])] {
            // Reset contents between distributions.
            {
                let mut f: DrxFile<i64> = DrxFile::open(&fs, "u").unwrap();
                f.fill_with(tag).unwrap();
            }
            let fs2 = fs.clone();
            run_spmd(4, move |comm| {
                let mut h: DrxmpHandle<i64> =
                    DrxmpHandle::open(comm, &fs2, "u", dist.clone()).map_err(to_msg)?;
                h.update_my_zone(|idx, v| v * 2 + idx[0] as i64).map_err(to_msg)?;
                h.close().map_err(to_msg)?;
                Ok(())
            })
            .unwrap();
            let f: DrxFile<i64> = DrxFile::open(&fs, "u").unwrap();
            for idx in f.meta().element_region().iter() {
                assert_eq!(
                    f.get(&idx).unwrap(),
                    tag(&idx) * 2 + idx[0] as i64,
                    "at {idx:?} under {:?}",
                    "dist"
                );
            }
        }
    }

    #[test]
    fn get_set_single_elements_in_parallel() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<f64> =
                DrxmpHandle::create(comm, &fs, "e", &[2, 2], &[4, 4], DistSpec::block(vec![2, 1]))
                    .map_err(to_msg)?;
            // Each rank writes one element in its own zone.
            let idx = if comm.rank() == 0 { [0, 0] } else { [3, 3] };
            h.set(&idx, comm.rank() as f64 + 0.5).map_err(to_msg)?;
            comm.barrier()?;
            // Cross-read.
            let peer_idx = if comm.rank() == 0 { [3, 3] } else { [0, 0] };
            let v = h.get(&peer_idx).map_err(to_msg)?;
            assert_eq!(v, (1 - comm.rank()) as f64 + 0.5);
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn parallel_extension_then_write_into_new_region() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<i64> = DrxmpHandle::create(
                comm,
                &fs,
                "grow",
                &[2, 3],
                &[4, 6],
                DistSpec::block(vec![2, 2]),
            )
            .map_err(to_msg)?;
            let zone = h.my_zone().expect("zone");
            let data: Vec<i64> = zone.iter().map(|i| tag(&i)).collect();
            h.write_my_zone(Layout::C, Some(&data)).map_err(to_msg)?;
            // Grow dimension 0 (time-like) and write the new region from
            // rank 0 only.
            h.extend(0, 4).map_err(to_msg)?;
            assert_eq!(h.bounds(), &[8, 6]);
            let new_region = Region::new(vec![4, 0], vec![8, 6]).unwrap();
            if comm.rank() == 0 {
                let nd: Vec<i64> = new_region.iter().map(|i| tag(&i) + 1).collect();
                h.write_region_all(Some((&new_region, &nd)), Layout::C).map_err(to_msg)?;
            } else {
                h.write_region_all(None, Layout::C).map_err(to_msg)?;
            }
            // Old zone data must be intact (collective re-read).
            let (z2, back) = h.read_my_zone(Layout::C).map_err(to_msg)?.expect("zone");
            for (pos, idx) in z2.iter().enumerate() {
                let expect = if idx[0] < 4 { tag(&idx) } else { tag(&idx) + 1 };
                assert_eq!(back[pos], expect, "at {idx:?}");
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }
}
