//! Paper-style API veneer (§IV-C).
//!
//! The paper specifies a C interface; this module provides functions with
//! the same names, shapes and call discipline, as thin wrappers over
//! [`DrxmpHandle`]. A Rust application would normally use the methods
//! directly — this veneer exists so code written against the paper's
//! prototypes ports line by line:
//!
//! | paper | here |
//! |---|---|
//! | `DRXMP_Init(&hdl, kdim, initsize, chkshape, dtype, comm)` | [`drxmp_init`] |
//! | `DRXMP_Open(&hdl, filename, mode)` | [`drxmp_open`] |
//! | `DRXMP_Close(hdl)` | [`drxmp_close`] |
//! | `DRXMP_Terminate()` | [`DrxmpContext::terminate`] |
//! | `DRXMP_Read(hdl, memhdl, &stat)` | [`drxmp_read`] |
//! | `DRXMP_Read_all(hdl, memhdl, &stat)` | [`drxmp_read_all`] |
//! | `DRXMP_Write(hdl, memhdl, &stat)` | [`drxmp_write`] |
//! | `DRXMP_Write_all(hdl, memhdl, &stat)` | [`drxmp_write_all`] |
//!
//! The "memory handle" (`DRXMDMemHdl`) becomes [`MemHandle`]: a region of
//! the principal array plus the requested in-memory layout order and the
//! element buffer.

use crate::error::Result;
use crate::handle::DrxmpHandle;
use crate::zones::DistSpec;
use drx_core::{Element, Layout, Region};
use drx_msg::Comm;
use drx_pfs::Pfs;

/// The paper's `DRXMPStatus`: what an I/O call transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrxmpStatus {
    /// Elements moved between file and memory.
    pub elements: u64,
    /// Chunks touched on disk.
    pub chunks: u64,
}

/// The paper's `DRXMDMemHdl`: a memory-resident sub-array description —
/// base buffer, covered region, and conventional layout order.
#[derive(Debug)]
pub struct MemHandle<T> {
    pub region: Region,
    pub layout: Layout,
    pub buffer: Vec<T>,
}

impl<T: Element> MemHandle<T> {
    /// Allocate a zeroed memory handle covering `region` in `layout` order.
    pub fn alloc(region: Region, layout: Layout) -> Self {
        let n = region.volume() as usize;
        MemHandle { region, layout, buffer: vec![T::default(); n] }
    }

    /// Wrap an existing buffer (must match the region volume).
    pub fn from_buffer(region: Region, layout: Layout, buffer: Vec<T>) -> Result<Self> {
        if buffer.len() as u64 != region.volume() {
            return Err(crate::error::MpError::Core(drx_core::DrxError::BufferSize {
                expected: region.volume() as usize,
                got: buffer.len(),
            }));
        }
        Ok(MemHandle { region, layout, buffer })
    }
}

/// `DRXMP_Init`: collective creation of a principal array file.
pub fn drxmp_init<T: Element>(
    comm: &Comm,
    pfs: &Pfs,
    filename: &str,
    chkshape: &[usize],
    initsize: &[usize],
    dist: DistSpec,
) -> Result<DrxmpHandle<T>> {
    DrxmpHandle::create(comm, pfs, filename, chkshape, initsize, dist)
}

/// `DRXMP_Open`: collective open of an existing principal array file.
pub fn drxmp_open<T: Element>(
    comm: &Comm,
    pfs: &Pfs,
    filename: &str,
    dist: DistSpec,
) -> Result<DrxmpHandle<T>> {
    DrxmpHandle::open(comm, pfs, filename, dist)
}

/// `DRXMP_Close`.
pub fn drxmp_close<T: Element>(hdl: DrxmpHandle<T>) -> Result<()> {
    hdl.close()
}

fn status_for<T: Element>(hdl: &DrxmpHandle<T>, region: &Region) -> Result<DrxmpStatus> {
    let chunks = hdl.meta().chunking().chunks_covering(region)?.volume();
    Ok(DrxmpStatus { elements: region.volume(), chunks })
}

/// `DRXMP_Read`: independent read of the memory handle's region.
pub fn drxmp_read<T: Element>(
    hdl: &mut DrxmpHandle<T>,
    mem: &mut MemHandle<T>,
) -> Result<DrxmpStatus> {
    mem.buffer = hdl.read_region(&mem.region, mem.layout)?;
    status_for(hdl, &mem.region)
}

/// `DRXMP_Read_all`: collective read (every rank participates; pass `None`
/// for ranks without a request).
pub fn drxmp_read_all<T: Element>(
    hdl: &mut DrxmpHandle<T>,
    mem: Option<&mut MemHandle<T>>,
) -> Result<DrxmpStatus> {
    match mem {
        Some(m) => {
            m.buffer = hdl.read_region_all(Some(&m.region), m.layout)?;
            status_for(hdl, &m.region)
        }
        None => {
            hdl.read_region_all(None, Layout::C)?;
            Ok(DrxmpStatus::default())
        }
    }
}

/// `DRXMP_Write`: independent write of the memory handle's region.
pub fn drxmp_write<T: Element>(
    hdl: &mut DrxmpHandle<T>,
    mem: &MemHandle<T>,
) -> Result<DrxmpStatus> {
    hdl.write_region(&mem.region, mem.layout, &mem.buffer)?;
    status_for(hdl, &mem.region)
}

/// `DRXMP_Write_all`: collective write.
pub fn drxmp_write_all<T: Element>(
    hdl: &mut DrxmpHandle<T>,
    mem: Option<&MemHandle<T>>,
) -> Result<DrxmpStatus> {
    match mem {
        Some(m) => {
            hdl.write_region_all(Some((&m.region, &m.buffer)), m.layout)?;
            status_for(hdl, &m.region)
        }
        None => {
            hdl.write_region_all(None, Layout::C)?;
            Ok(DrxmpStatus::default())
        }
    }
}

/// The paper's `DRXMP_Terminate`: a context tracking open handles so one
/// call closes everything ("closes all opened extendible arrays and frees
/// the DRX-MP allocated structures").
pub struct DrxmpContext<T: Element> {
    open: Vec<DrxmpHandle<T>>,
}

impl<T: Element> Default for DrxmpContext<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Element> DrxmpContext<T> {
    pub fn new() -> Self {
        DrxmpContext { open: Vec::new() }
    }

    /// Track a handle; returns a stable slot index.
    pub fn adopt(&mut self, hdl: DrxmpHandle<T>) -> usize {
        self.open.push(hdl);
        self.open.len() - 1
    }

    pub fn get_mut(&mut self, slot: usize) -> Option<&mut DrxmpHandle<T>> {
        self.open.get_mut(slot)
    }

    /// `DRXMP_Terminate`: collective close of every tracked handle.
    pub fn terminate(self) -> Result<()> {
        for hdl in self.open {
            hdl.close()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::to_msg;
    use drx_msg::run_spmd;

    #[test]
    fn paper_call_sequence_round_trips() {
        let pfs = Pfs::memory(2, 256).unwrap();
        run_spmd(2, |comm| {
            let mut ctx: DrxmpContext<f64> = DrxmpContext::new();
            let hdl = drxmp_init::<f64>(
                comm,
                &pfs,
                "papi",
                &[2, 2],
                &[6, 6],
                DistSpec::block(vec![2, 1]),
            )
            .map_err(to_msg)?;
            let slot = ctx.adopt(hdl);
            let hdl = ctx.get_mut(slot).unwrap();
            // Collective write of each rank's zone through the veneer.
            let zone = hdl.my_zone().expect("zone");
            let data: Vec<f64> = zone.iter().map(|i| (i[0] * 6 + i[1]) as f64).collect();
            let mem = MemHandle::from_buffer(zone.clone(), Layout::C, data).map_err(to_msg)?;
            let st = drxmp_write_all(hdl, Some(&mem)).map_err(to_msg)?;
            assert_eq!(st.elements, zone.volume());
            assert!(st.chunks > 0);
            // Independent read back in FORTRAN order.
            let mut rd = MemHandle::<f64>::alloc(zone.clone(), Layout::Fortran);
            let st = drxmp_read(hdl, &mut rd).map_err(to_msg)?;
            assert_eq!(st.elements, zone.volume());
            let strides = Layout::Fortran.strides(&zone.extents());
            for (pos, idx) in zone.iter().enumerate() {
                let _ = pos;
                let rel: Vec<usize> = idx.iter().zip(zone.lo()).map(|(&a, &l)| a - l).collect();
                let off = drx_core::index::offset_with_strides(&rel, &strides) as usize;
                assert_eq!(rd.buffer[off], (idx[0] * 6 + idx[1]) as f64);
            }
            // Collective read with one empty participant.
            if comm.rank() == 0 {
                let full = Region::new(vec![0, 0], vec![6, 6]).unwrap();
                let mut all = MemHandle::<f64>::alloc(full, Layout::C);
                drxmp_read_all(hdl, Some(&mut all)).map_err(to_msg)?;
                assert_eq!(all.buffer[35], 35.0);
            } else {
                drxmp_read_all::<f64>(hdl, None).map_err(to_msg)?;
            }
            ctx.terminate().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn mem_handle_validates_buffer_size() {
        let region = Region::new(vec![0, 0], vec![2, 2]).unwrap();
        assert!(MemHandle::from_buffer(region.clone(), Layout::C, vec![1.0f64; 3]).is_err());
        let m = MemHandle::<f64>::alloc(region, Layout::C);
        assert_eq!(m.buffer.len(), 4);
    }
}
