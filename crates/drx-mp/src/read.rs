//! Parallel sub-array reads (paper §IV-B, `DRXMP_Read` / `DRXMP_Read_all`).
//!
//! A read of an element region is planned as the set of chunks covering the
//! region. Planning is run-coalesced: [`ExtendibleShape::region_runs`]
//! decomposes the chunk region into arithmetic-progression address runs (one
//! `F*` owner lookup per run instead of per chunk), and [`ChunkPlan`] keeps
//! the runs plus a flat address-sorted entry list. Independent reads issue
//! the merged byte extents directly as one vectored request; collective
//! reads build an indexed file view over the chunk addresses — exactly the
//! paper's code listing (`MPI_Type_indexed` over a contiguous chunk type,
//! then `MPI_File_read_all`) — and go through two-phase I/O. Elements are
//! then scattered from chunk buffers to their in-memory positions with the
//! [`crate::kernels`] copy kernels in the requested layout order (C or
//! FORTRAN): the on-the-fly transposition that removes the need for
//! out-of-core transposes.
//!
//! [`ExtendibleShape::region_runs`]: drx_core::ExtendibleShape::region_runs

use crate::error::Result;
use crate::handle::DrxmpHandle;
use crate::kernels;
use drx_core::plan::ChunkRun;
use drx_core::{Element, Layout, Region};
use drx_msg::Datatype;

/// A planned chunk access: the run decomposition of the chunk set plus one
/// entry per chunk in file-address order, ready to become a file view or a
/// vectored extent list.
pub(crate) struct ChunkPlan {
    /// Run decomposition, in row-major chunk-index order (runs from
    /// different rows may interleave in address space).
    pub runs: Vec<ChunkRun>,
    /// `(address, run, step)` per planned chunk, sorted by address. Entry
    /// `i` owns byte slot `i` of the plan's transfer buffer.
    pub entries: Vec<(u64, u32, u32)>,
    pub chunk_bytes: u64,
}

impl ChunkPlan {
    /// Plan from a run decomposition (region reads/writes). Entries are
    /// sorted by address; `F*` is a bijection, so addresses are strictly
    /// increasing afterwards.
    pub fn from_runs(runs: Vec<ChunkRun>, chunk_bytes: u64) -> ChunkPlan {
        let entries = drx_core::sorted_run_entries(&runs);
        ChunkPlan { runs, entries, chunk_bytes }
    }

    /// Plan from an explicit `(chunk index, address)` list that is already
    /// sorted by address (zone chunk lists are). Each chunk becomes a
    /// length-1 run, so no re-sort is needed.
    pub fn from_pairs(pairs: Vec<(Vec<usize>, u64)>, chunk_bytes: u64) -> ChunkPlan {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].1 < w[1].1),
            "chunk lists must be pre-sorted by strictly increasing address"
        );
        let mut runs = Vec::with_capacity(pairs.len());
        let mut entries = Vec::with_capacity(pairs.len());
        for (i, (start, addr)) in pairs.into_iter().enumerate() {
            entries.push((addr, i as u32, 0u32));
            runs.push(ChunkRun { start, addr, len: 1, stride: 1 });
        }
        ChunkPlan { runs, entries, chunk_bytes }
    }

    /// Number of planned chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total bytes the plan transfers.
    pub fn bytes(&self) -> usize {
        self.entries.len() * self.chunk_bytes as usize
    }

    /// Write the chunk index of entry `i` into `scratch` (no allocation
    /// once `scratch` has capacity).
    pub fn write_index_at(&self, i: usize, scratch: &mut Vec<usize>) {
        let (_, run, step) = self.entries[i];
        self.runs[run as usize].write_index_at(step as usize, scratch);
    }

    /// The indexed filetype over the planned chunk addresses (the paper's
    /// `filetype`), with adjacent chunks merged into one block.
    pub fn filetype(&self) -> Result<Option<Datatype>> {
        if self.entries.is_empty() {
            return Ok(None);
        }
        let base = Datatype::contiguous(self.chunk_bytes);
        let mut lens: Vec<usize> = Vec::new();
        let mut displs: Vec<usize> = Vec::new();
        for &(addr, _, _) in &self.entries {
            match (lens.last_mut(), displs.last()) {
                (Some(l), Some(&d)) if d + *l == addr as usize => *l += 1,
                _ => {
                    lens.push(1);
                    displs.push(addr as usize);
                }
            }
        }
        Ok(Some(Datatype::indexed(&lens, &displs, &base)?))
    }

    /// The plan's file byte ranges `(offset, len)` in increasing offset
    /// order, adjacent chunks merged — the vectored request the
    /// independent fast path issues directly.
    pub fn byte_extents(&self) -> Vec<(u64, u64)> {
        let cb = self.chunk_bytes;
        let mut out: Vec<(u64, u64)> = Vec::new();
        for &(addr, _, _) in &self.entries {
            match out.last_mut() {
                Some((off, len)) if *off + *len == addr * cb => *len += cb,
                _ => out.push((addr * cb, cb)),
            }
        }
        out
    }

    /// Consume the plan into `(chunk index, address)` pairs in entry
    /// (address) order. Length-1 runs give up their index vector without
    /// cloning — the common case for zone plans.
    pub fn into_index_addr_pairs(mut self) -> Vec<(Vec<usize>, u64)> {
        self.entries
            .iter()
            .map(|&(addr, run, step)| {
                let r = &mut self.runs[run as usize];
                let idx = if r.len == 1 {
                    std::mem::take(&mut r.start)
                } else {
                    r.index_at(step as usize)
                };
                (idx, addr)
            })
            .collect()
    }
}

impl<T: Element> DrxmpHandle<T> {
    /// Plan the chunks covering an element region (run-coalesced,
    /// address-sorted entries).
    pub(crate) fn plan_region(&self, region: &Region) -> Result<ChunkPlan> {
        self.check_region(region)?;
        let chunk_region = self.meta.chunking().chunks_covering(region)?;
        let runs = self.meta.grid().region_runs(&chunk_region)?;
        Ok(ChunkPlan::from_runs(runs, self.meta.chunk_bytes()))
    }

    /// Plan an explicit address-sorted chunk list (zone reads).
    pub(crate) fn plan_chunks(&self, chunks: Vec<(Vec<usize>, u64)>) -> ChunkPlan {
        ChunkPlan::from_pairs(chunks, self.meta.chunk_bytes())
    }

    /// Scatter raw chunk bytes into a dense element buffer for `region` in
    /// `layout` order.
    pub(crate) fn scatter_chunks(
        &self,
        plan: &ChunkPlan,
        bytes: &[u8],
        region: &Region,
        layout: Layout,
    ) -> Result<Vec<T>> {
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let chunk_strides = self.meta.chunking().strides();
        let cb = plan.chunk_bytes as usize;
        let mut out = vec![T::default(); region.volume() as usize];
        let mut idx = Vec::new();
        for i in 0..plan.len() {
            plan.write_index_at(i, &mut idx);
            let chunk_region = self.meta.chunking().chunk_elements(&idx)?;
            let Some(valid) = chunk_region.intersect(region) else { continue };
            kernels::scatter_chunk(
                &bytes[i * cb..(i + 1) * cb],
                chunk_region.lo(),
                chunk_strides,
                &mut out,
                region.lo(),
                &strides,
                &valid,
            );
        }
        Ok(out)
    }

    /// Execute a plan's raw reads. `collective` uses two-phase `read_all`
    /// through an indexed file view; independent reads issue the merged
    /// extents directly as one vectored request (no view churn).
    pub(crate) fn fetch_plan(&mut self, plan: &ChunkPlan, collective: bool) -> Result<Vec<u8>> {
        let mut bytes = vec![0u8; plan.bytes()];
        if collective {
            let ft = plan.filetype()?;
            self.xta.set_view(0, ft);
            self.xta.read_all(0, &mut bytes)?;
            self.xta.set_view(0, None);
        } else {
            self.xta.read_extents(&plan.byte_extents(), &mut bytes)?;
        }
        Ok(bytes)
    }

    /// Independent read of an arbitrary element region into the requested
    /// memory layout (`DRXMP_Read`).
    pub fn read_region(&mut self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        let plan = self.plan_region(region)?;
        let bytes = self.fetch_plan(&plan, false)?;
        self.scatter_chunks(&plan, &bytes, region, layout)
    }

    /// Collective read (`DRXMP_Read_all`): every rank passes its own region
    /// (possibly empty — pass `None`), and the aggregate request is serviced
    /// with two-phase I/O.
    pub fn read_region_all(&mut self, region: Option<&Region>, layout: Layout) -> Result<Vec<T>> {
        match region {
            Some(r) => {
                let plan = self.plan_region(r)?;
                let bytes = self.fetch_plan(&plan, true)?;
                self.scatter_chunks(&plan, &bytes, r, layout)
            }
            None => {
                let plan = self.plan_chunks(Vec::new());
                let _ = self.fetch_plan(&plan, true)?;
                Ok(Vec::new())
            }
        }
    }

    /// Collective zone read: every rank reads its own zone (clipped to the
    /// valid bounds) and gets `(zone region, data)`. Ranks with empty zones
    /// participate and receive `None`.
    pub fn read_my_zone(&mut self, layout: Layout) -> Result<Option<(Region, Vec<T>)>> {
        match self.my_zone() {
            Some(zone) => {
                let data = self.read_region_all(Some(&zone), layout)?;
                Ok(Some((zone, data)))
            }
            None => {
                self.read_region_all(None, layout)?;
                Ok(None)
            }
        }
    }

    /// Collective: read every chunk this rank owns under the distribution —
    /// works for **any** [`crate::DistSpec`], including `BLOCK_CYCLIC`
    /// whose zones are not rectilinear regions. Returns `(chunk index,
    /// chunk elements in row-major order)` pairs sorted by file address.
    pub fn read_my_chunks(&mut self) -> Result<Vec<(Vec<usize>, Vec<T>)>> {
        let pairs = self.zone_chunks(self.rank())?;
        let plan = self.plan_chunks(pairs);
        let bytes = self.fetch_plan(&plan, true)?;
        let cb = self.meta.chunk_bytes() as usize;
        plan.into_index_addr_pairs()
            .into_iter()
            .enumerate()
            .map(|(i, (idx, _))| {
                let vals = drx_core::dtype::decode_slice::<T>(&bytes[i * cb..(i + 1) * cb])?;
                Ok((idx, vals))
            })
            .collect()
    }

    /// Read a single element directly from the file (independent; the
    /// paper's "accessed either directly from the file or via a remote
    /// memory access").
    pub fn get(&mut self, index: &[usize]) -> Result<T> {
        let off = self.meta.element_byte_offset(index)?;
        // Largest built-in element is Complex64 at 16 bytes: a stack
        // buffer avoids a heap allocation per element access.
        let mut buf = [0u8; 16];
        debug_assert!(T::SIZE <= buf.len());
        if self.xta.has_view() {
            self.xta.set_view(0, None);
        }
        self.xta.read_at(off, &mut buf[..T::SIZE])?;
        Ok(T::read_le(&buf[..T::SIZE]))
    }
}
