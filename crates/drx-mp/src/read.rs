//! Parallel sub-array reads (paper §IV-B, `DRXMP_Read` / `DRXMP_Read_all`).
//!
//! A read of an element region is planned as the set of chunks covering the
//! region, sorted by linear chunk address. Independent reads issue the
//! chunk extents directly; collective reads build an indexed file view over
//! the chunk addresses — exactly the paper's code listing
//! (`MPI_Type_indexed` over a contiguous chunk type, then
//! `MPI_File_read_all`) — and go through two-phase I/O. Elements are then
//! scattered from chunk buffers to their in-memory positions using the
//! requested layout order (C or FORTRAN): the on-the-fly transposition that
//! removes the need for out-of-core transposes.

use crate::error::Result;
use crate::handle::DrxmpHandle;
use drx_core::{Element, Layout, Region};
use drx_msg::Datatype;

/// A planned chunk access: chunk indices + linear addresses sorted by
/// address, ready to become a file view.
pub(crate) struct ChunkPlan {
    /// `(chunk index, linear address)` sorted by address.
    pub chunks: Vec<(Vec<usize>, u64)>,
    pub chunk_bytes: u64,
}

impl ChunkPlan {
    /// The indexed filetype over the planned chunk addresses (the paper's
    /// `filetype`).
    pub fn filetype(&self) -> Result<Option<Datatype>> {
        if self.chunks.is_empty() {
            return Ok(None);
        }
        let base = Datatype::contiguous(self.chunk_bytes);
        let displs: Vec<usize> = self.chunks.iter().map(|&(_, a)| a as usize).collect();
        let lens = vec![1usize; displs.len()];
        Ok(Some(Datatype::indexed(&lens, &displs, &base)?))
    }

    /// Total bytes the plan transfers.
    pub fn bytes(&self) -> usize {
        self.chunks.len() * self.chunk_bytes as usize
    }
}

impl<T: Element> DrxmpHandle<T> {
    /// Plan the chunks covering an element region (address-sorted).
    pub(crate) fn plan_region(&self, region: &Region) -> Result<ChunkPlan> {
        self.check_region(region)?;
        let chunk_region = self.meta.chunking().chunks_covering(region)?;
        let mut chunks = self.meta.grid().region_addresses(&chunk_region)?;
        chunks.sort_by_key(|&(_, a)| a);
        Ok(ChunkPlan { chunks, chunk_bytes: self.meta.chunk_bytes() })
    }

    /// Plan an explicit chunk list (zone reads).
    pub(crate) fn plan_chunks(&self, chunks: Vec<(Vec<usize>, u64)>) -> ChunkPlan {
        ChunkPlan { chunks, chunk_bytes: self.meta.chunk_bytes() }
    }

    /// Scatter raw chunk bytes into a dense element buffer for `region` in
    /// `layout` order.
    pub(crate) fn scatter_chunks(
        &self,
        plan: &ChunkPlan,
        bytes: &[u8],
        region: &Region,
        layout: Layout,
    ) -> Result<Vec<T>> {
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        for (i, (chunk_idx, _)) in plan.chunks.iter().enumerate() {
            let chunk_region = self.meta.chunking().chunk_elements(chunk_idx)?;
            let Some(valid) = chunk_region.intersect(region) else { continue };
            let base = i * plan.chunk_bytes as usize;
            drx_core::index::for_each_offset_pair(
                &valid,
                chunk_region.lo(),
                self.meta.chunking().strides(),
                region.lo(),
                &strides,
                |src, dst| {
                    let src = base + src as usize * T::SIZE;
                    out[dst as usize] = T::read_le(&bytes[src..src + T::SIZE]);
                },
            );
        }
        Ok(out)
    }

    /// Execute a plan's raw reads. `collective` uses two-phase
    /// `read_all`; otherwise each chunk extent is an independent request.
    pub(crate) fn fetch_plan(&mut self, plan: &ChunkPlan, collective: bool) -> Result<Vec<u8>> {
        let mut bytes = vec![0u8; plan.bytes()];
        let ft = plan.filetype()?;
        self.xta.set_view(0, ft);
        if collective {
            self.xta.read_all(0, &mut bytes)?;
        } else {
            self.xta.read_at(0, &mut bytes)?;
        }
        self.xta.set_view(0, None);
        Ok(bytes)
    }

    /// Independent read of an arbitrary element region into the requested
    /// memory layout (`DRXMP_Read`).
    pub fn read_region(&mut self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        let plan = self.plan_region(region)?;
        let bytes = self.fetch_plan(&plan, false)?;
        self.scatter_chunks(&plan, &bytes, region, layout)
    }

    /// Collective read (`DRXMP_Read_all`): every rank passes its own region
    /// (possibly empty — pass `None`), and the aggregate request is serviced
    /// with two-phase I/O.
    pub fn read_region_all(&mut self, region: Option<&Region>, layout: Layout) -> Result<Vec<T>> {
        match region {
            Some(r) => {
                let plan = self.plan_region(r)?;
                let bytes = self.fetch_plan(&plan, true)?;
                self.scatter_chunks(&plan, &bytes, r, layout)
            }
            None => {
                let plan = self.plan_chunks(Vec::new());
                let _ = self.fetch_plan(&plan, true)?;
                Ok(Vec::new())
            }
        }
    }

    /// Collective zone read: every rank reads its own zone (clipped to the
    /// valid bounds) and gets `(zone region, data)`. Ranks with empty zones
    /// participate and receive `None`.
    pub fn read_my_zone(&mut self, layout: Layout) -> Result<Option<(Region, Vec<T>)>> {
        match self.my_zone() {
            Some(zone) => {
                let data = self.read_region_all(Some(&zone), layout)?;
                Ok(Some((zone, data)))
            }
            None => {
                self.read_region_all(None, layout)?;
                Ok(None)
            }
        }
    }

    /// Collective: read every chunk this rank owns under the distribution —
    /// works for **any** [`crate::DistSpec`], including `BLOCK_CYCLIC`
    /// whose zones are not rectilinear regions. Returns `(chunk index,
    /// chunk elements in row-major order)` pairs sorted by file address.
    pub fn read_my_chunks(&mut self) -> Result<Vec<(Vec<usize>, Vec<T>)>> {
        let pairs = self.zone_chunks(self.rank())?;
        let plan = self.plan_chunks(pairs);
        let bytes = self.fetch_plan(&plan, true)?;
        let cb = self.meta.chunk_bytes() as usize;
        plan.chunks
            .iter()
            .enumerate()
            .map(|(i, (idx, _))| {
                let vals = drx_core::dtype::decode_slice::<T>(&bytes[i * cb..(i + 1) * cb])?;
                Ok((idx.clone(), vals))
            })
            .collect()
    }

    /// Read a single element directly from the file (independent; the
    /// paper's "accessed either directly from the file or via a remote
    /// memory access").
    pub fn get(&mut self, index: &[usize]) -> Result<T> {
        let off = self.meta.element_byte_offset(index)?;
        let mut buf = vec![0u8; T::SIZE];
        self.xta.set_view(0, None);
        self.xta.read_at(off, &mut buf)?;
        Ok(T::read_le(&buf))
    }
}
