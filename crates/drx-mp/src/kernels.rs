//! Scatter/gather copy kernels between chunk byte images and dense element
//! buffers — the in-core half of the fast-path access pipeline.
//!
//! Moving a planned chunk's elements into (or out of) the user's buffer is
//! a strided copy. Three kernels cover the cases:
//!
//! * **memcpy rows** — when the innermost dimension is contiguous on *both*
//!   sides (row-major chunk image, C-order buffer) and the element type
//!   exposes a little-endian byte view, whole rows move with one
//!   `copy_from_slice` each instead of one decode per element.
//! * **blocked transpose** — when the two sides disagree on their
//!   fastest-varying dimension (C-order chunks into a FORTRAN-order buffer:
//!   the paper's on-the-fly transposition), the copy is tiled over the two
//!   fast dimensions so both access streams stay cache-resident.
//! * **generic** — per-element strided walk; the fallback for rank-1
//!   transposes-to-self and non-viewable targets (big-endian hosts).
//!
//! Global counters record which kernel served each call so benches and the
//! CI smoke stage can assert the fast path is actually taken.

use drx_core::index::{for_each_offset_pair, for_each_row_pair};
use drx_core::{Element, Region};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tile edge (elements) of the blocked transpose. 32×32 tiles of ≤16-byte
/// elements stay well within L1 for both streams.
const TILE: usize = 32;

static MEMCPY_CALLS: AtomicU64 = AtomicU64::new(0);
static MEMCPY_ROWS: AtomicU64 = AtomicU64::new(0);
static MEMCPY_BYTES: AtomicU64 = AtomicU64::new(0);
static TILED_ELEMS: AtomicU64 = AtomicU64::new(0);
static GENERIC_ELEMS: AtomicU64 = AtomicU64::new(0);

/// Cumulative kernel-dispatch counters (process-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Calls served by the memcpy row kernel.
    pub memcpy_calls: u64,
    /// Contiguous rows moved by the memcpy kernel.
    pub memcpy_rows: u64,
    /// Bytes moved by the memcpy kernel.
    pub memcpy_bytes: u64,
    /// Elements moved by the blocked transpose kernel.
    pub tiled_elems: u64,
    /// Elements moved by the generic per-element kernel.
    pub generic_elems: u64,
}

impl KernelStats {
    /// Component-wise difference `self - earlier`; attributes the kernel
    /// work of one operation out of the cumulative totals.
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            memcpy_calls: self.memcpy_calls - earlier.memcpy_calls,
            memcpy_rows: self.memcpy_rows - earlier.memcpy_rows,
            memcpy_bytes: self.memcpy_bytes - earlier.memcpy_bytes,
            tiled_elems: self.tiled_elems - earlier.tiled_elems,
            generic_elems: self.generic_elems - earlier.generic_elems,
        }
    }
}

/// Snapshot of the process-wide kernel counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        memcpy_calls: MEMCPY_CALLS.load(Ordering::Relaxed),
        memcpy_rows: MEMCPY_ROWS.load(Ordering::Relaxed),
        memcpy_bytes: MEMCPY_BYTES.load(Ordering::Relaxed),
        tiled_elems: TILED_ELEMS.load(Ordering::Relaxed),
        generic_elems: GENERIC_ELEMS.load(Ordering::Relaxed),
    }
}

/// Index of the fastest-varying dimension (minimum stride).
fn fastest_dim(strides: &[u64]) -> usize {
    let mut best = strides.len() - 1;
    for (j, &s) in strides.iter().enumerate() {
        if s < strides[best] {
            best = j;
        }
    }
    best
}

/// Advance `idx` as an odometer over `region`, skipping dims `d0`/`d1`.
/// Returns `false` once every combination has been visited.
fn advance_outer(idx: &mut [usize], region: &Region, d0: usize, d1: usize) -> bool {
    let mut j = idx.len();
    while j > 0 {
        j -= 1;
        if j == d0 || j == d1 {
            continue;
        }
        idx[j] += 1;
        if idx[j] < region.hi()[j] {
            return true;
        }
        idx[j] = region.lo()[j];
    }
    false
}

/// Visit `(offset_a, offset_b)` for every index of `region`, in an order
/// blocked into [`TILE`]×[`TILE`] tiles over dimensions `d0` (outer tile
/// loop) and `d1` (inner): the cache-blocked schedule of an in-core
/// transpose. Offsets are element offsets relative to `origin_*` under
/// `strides_*`, exactly as in
/// [`for_each_offset_pair`](drx_core::index::for_each_offset_pair).
#[allow(clippy::too_many_arguments)] // mirrors for_each_offset_pair's shape + the two tile dims
fn for_each_offset_pair_tiled(
    region: &Region,
    origin_a: &[usize],
    strides_a: &[u64],
    origin_b: &[usize],
    strides_b: &[u64],
    d0: usize,
    d1: usize,
    mut f: impl FnMut(u64, u64),
) {
    debug_assert!(d0 != d1);
    let k = region.rank();
    let lo = region.lo();
    let hi = region.hi();
    let mut idx = lo.to_vec();
    loop {
        // Base offsets of the current outer plane with d0/d1 at their lows.
        let mut base_a = 0u64;
        let mut base_b = 0u64;
        for j in 0..k {
            let i = if j == d0 || j == d1 { lo[j] } else { idx[j] } as u64;
            base_a += (i - origin_a[j] as u64) * strides_a[j];
            base_b += (i - origin_b[j] as u64) * strides_b[j];
        }
        let mut t0 = lo[d0];
        while t0 < hi[d0] {
            let e0 = (t0 + TILE).min(hi[d0]);
            let mut t1 = lo[d1];
            while t1 < hi[d1] {
                let e1 = (t1 + TILE).min(hi[d1]);
                for i0 in t0..e0 {
                    let row_a = base_a + (i0 - lo[d0]) as u64 * strides_a[d0];
                    let row_b = base_b + (i0 - lo[d0]) as u64 * strides_b[d0];
                    for i1 in t1..e1 {
                        f(
                            row_a + (i1 - lo[d1]) as u64 * strides_a[d1],
                            row_b + (i1 - lo[d1]) as u64 * strides_b[d1],
                        );
                    }
                }
                t1 = e1;
            }
            t0 = e0;
        }
        if !advance_outer(&mut idx, region, d0, d1) {
            return;
        }
    }
}

/// Scatter the elements of `valid` from a chunk byte image into a dense
/// element buffer.
///
/// * `chunk` — one chunk's raw bytes (little-endian elements, row-major
///   within the chunk);
/// * `chunk_lo`/`chunk_strides` — the chunk's element region low corner and
///   within-chunk element strides;
/// * `out`/`out_lo`/`out_strides` — the destination buffer holding a region
///   whose low corner is `out_lo`, in the order `out_strides` describes.
pub fn scatter_chunk<T: Element>(
    chunk: &[u8],
    chunk_lo: &[usize],
    chunk_strides: &[u64],
    out: &mut [T],
    out_lo: &[usize],
    out_strides: &[u64],
    valid: &Region,
) {
    if valid.is_empty() {
        return;
    }
    let k = valid.rank();
    if chunk_strides[k - 1] == 1 && out_strides[k - 1] == 1 {
        if let Some(view) = T::as_le_bytes_mut(out) {
            let mut rows = 0u64;
            let mut bytes = 0u64;
            for_each_row_pair(
                valid,
                chunk_lo,
                chunk_strides,
                out_lo,
                out_strides,
                |src, dst, n| {
                    let sb = src as usize * T::SIZE;
                    let db = dst as usize * T::SIZE;
                    let nb = n * T::SIZE;
                    view[db..db + nb].copy_from_slice(&chunk[sb..sb + nb]);
                    rows += 1;
                    bytes += nb as u64;
                },
            );
            MEMCPY_CALLS.fetch_add(1, Ordering::Relaxed);
            MEMCPY_ROWS.fetch_add(rows, Ordering::Relaxed);
            MEMCPY_BYTES.fetch_add(bytes, Ordering::Relaxed);
            return;
        }
    }
    let d0 = fastest_dim(out_strides);
    let d1 = fastest_dim(chunk_strides);
    if k >= 2 && d0 != d1 {
        let mut n = 0u64;
        for_each_offset_pair_tiled(
            valid,
            chunk_lo,
            chunk_strides,
            out_lo,
            out_strides,
            d0,
            d1,
            |src, dst| {
                let sb = src as usize * T::SIZE;
                out[dst as usize] = T::read_le(&chunk[sb..sb + T::SIZE]);
                n += 1;
            },
        );
        TILED_ELEMS.fetch_add(n, Ordering::Relaxed);
        return;
    }
    let mut n = 0u64;
    for_each_offset_pair(valid, chunk_lo, chunk_strides, out_lo, out_strides, |src, dst| {
        let sb = src as usize * T::SIZE;
        out[dst as usize] = T::read_le(&chunk[sb..sb + T::SIZE]);
        n += 1;
    });
    GENERIC_ELEMS.fetch_add(n, Ordering::Relaxed);
}

/// Gather the elements of `valid` from a dense element buffer into a chunk
/// byte image — the write-side mirror of [`scatter_chunk`].
pub fn gather_chunk<T: Element>(
    data: &[T],
    data_lo: &[usize],
    data_strides: &[u64],
    chunk: &mut [u8],
    chunk_lo: &[usize],
    chunk_strides: &[u64],
    valid: &Region,
) {
    if valid.is_empty() {
        return;
    }
    let k = valid.rank();
    if chunk_strides[k - 1] == 1 && data_strides[k - 1] == 1 {
        if let Some(view) = T::as_le_bytes(data) {
            let mut rows = 0u64;
            let mut bytes = 0u64;
            for_each_row_pair(
                valid,
                data_lo,
                data_strides,
                chunk_lo,
                chunk_strides,
                |src, dst, n| {
                    let sb = src as usize * T::SIZE;
                    let db = dst as usize * T::SIZE;
                    let nb = n * T::SIZE;
                    chunk[db..db + nb].copy_from_slice(&view[sb..sb + nb]);
                    rows += 1;
                    bytes += nb as u64;
                },
            );
            MEMCPY_CALLS.fetch_add(1, Ordering::Relaxed);
            MEMCPY_ROWS.fetch_add(rows, Ordering::Relaxed);
            MEMCPY_BYTES.fetch_add(bytes, Ordering::Relaxed);
            return;
        }
    }
    let d0 = fastest_dim(chunk_strides);
    let d1 = fastest_dim(data_strides);
    let mut tmp = Vec::with_capacity(T::SIZE);
    if k >= 2 && d0 != d1 {
        let mut n = 0u64;
        for_each_offset_pair_tiled(
            valid,
            data_lo,
            data_strides,
            chunk_lo,
            chunk_strides,
            d0,
            d1,
            |src, dst| {
                let db = dst as usize * T::SIZE;
                tmp.clear();
                data[src as usize].write_le(&mut tmp);
                chunk[db..db + T::SIZE].copy_from_slice(&tmp);
                n += 1;
            },
        );
        TILED_ELEMS.fetch_add(n, Ordering::Relaxed);
        return;
    }
    let mut n = 0u64;
    for_each_offset_pair(valid, data_lo, data_strides, chunk_lo, chunk_strides, |src, dst| {
        let db = dst as usize * T::SIZE;
        tmp.clear();
        data[src as usize].write_le(&mut tmp);
        chunk[db..db + T::SIZE].copy_from_slice(&tmp);
        n += 1;
    });
    GENERIC_ELEMS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use drx_core::{Complex64, Layout};

    /// Per-element reference scatter: the pre-kernel code path.
    fn scatter_reference<T: Element>(
        chunk: &[u8],
        chunk_lo: &[usize],
        chunk_strides: &[u64],
        out: &mut [T],
        out_lo: &[usize],
        out_strides: &[u64],
        valid: &Region,
    ) {
        for_each_offset_pair(valid, chunk_lo, chunk_strides, out_lo, out_strides, |src, dst| {
            let sb = src as usize * T::SIZE;
            out[dst as usize] = T::read_le(&chunk[sb..sb + T::SIZE]);
        });
    }

    fn gather_reference<T: Element>(
        data: &[T],
        data_lo: &[usize],
        data_strides: &[u64],
        chunk: &mut [u8],
        chunk_lo: &[usize],
        chunk_strides: &[u64],
        valid: &Region,
    ) {
        let mut tmp = Vec::with_capacity(T::SIZE);
        for_each_offset_pair(valid, data_lo, data_strides, chunk_lo, chunk_strides, |src, dst| {
            let db = dst as usize * T::SIZE;
            tmp.clear();
            data[src as usize].write_le(&mut tmp);
            chunk[db..db + T::SIZE].copy_from_slice(&tmp);
        });
    }

    fn row_major(shape: &[usize]) -> Vec<u64> {
        Layout::C.strides(shape)
    }

    /// Exercise every (chunk shape, region, layout) combination against the
    /// reference, including asymmetric 1×N / N×1 chunks and partial
    /// boundary intersections.
    fn check_case<T: Element + std::fmt::Debug>(
        chunk_shape: &[usize],
        chunk_origin: &[usize],
        region: &Region,
        layout: Layout,
        mk: impl Fn(u64) -> T,
    ) {
        let chunk_elems: usize = chunk_shape.iter().product();
        let chunk_hi: Vec<usize> =
            chunk_origin.iter().zip(chunk_shape).map(|(&o, &s)| o + s).collect();
        let chunk_region = Region::new(chunk_origin.to_vec(), chunk_hi).unwrap();
        let Some(valid) = chunk_region.intersect(region) else { return };
        let chunk_strides = row_major(chunk_shape);
        let out_strides = layout.strides(&region.extents());
        // A chunk image with distinct element payloads.
        let vals: Vec<T> = (0..chunk_elems as u64).map(&mk).collect();
        let chunk_bytes = drx_core::dtype::encode_slice(&vals);
        let n = region.volume() as usize;

        let mut out_fast = vec![T::default(); n];
        scatter_chunk(
            &chunk_bytes,
            chunk_region.lo(),
            &chunk_strides,
            &mut out_fast,
            region.lo(),
            &out_strides,
            &valid,
        );
        let mut out_ref = vec![T::default(); n];
        scatter_reference(
            &chunk_bytes,
            chunk_region.lo(),
            &chunk_strides,
            &mut out_ref,
            region.lo(),
            &out_strides,
            &valid,
        );
        assert_eq!(out_fast, out_ref, "scatter {chunk_shape:?} {layout:?} valid {valid:?}");

        // Gather back: both kernels must produce byte-identical images.
        let mut img_fast = vec![0u8; chunk_bytes.len()];
        gather_chunk(
            &out_ref,
            region.lo(),
            &out_strides,
            &mut img_fast,
            chunk_region.lo(),
            &chunk_strides,
            &valid,
        );
        let mut img_ref = vec![0u8; chunk_bytes.len()];
        gather_reference(
            &out_ref,
            region.lo(),
            &out_strides,
            &mut img_ref,
            chunk_region.lo(),
            &chunk_strides,
            &valid,
        );
        assert_eq!(img_fast, img_ref, "gather {chunk_shape:?} {layout:?} valid {valid:?}");
        // Round trip: re-scattering the gathered image reproduces the data.
        let mut out_back = vec![T::default(); n];
        scatter_chunk(
            &img_fast,
            chunk_region.lo(),
            &chunk_strides,
            &mut out_back,
            region.lo(),
            &out_strides,
            &valid,
        );
        assert_eq!(out_back, out_ref, "round trip {chunk_shape:?} {layout:?}");
    }

    #[test]
    fn kernels_match_reference_on_asymmetric_chunks() {
        let region = Region::new(vec![1, 2], vec![7, 9]).unwrap();
        for layout in [Layout::C, Layout::Fortran] {
            for shape in [[1usize, 8], [8, 1], [2, 3], [4, 4], [3, 7]] {
                for origin in [[0usize, 0], [0, 7], [6, 0], [3, 4]] {
                    check_case::<i64>(&shape, &origin, &region, layout, |v| v as i64 * 3 - 5);
                    check_case::<f32>(&shape, &origin, &region, layout, |v| v as f32 * 0.5);
                }
            }
        }
    }

    #[test]
    fn kernels_match_reference_in_3d_and_rank_1() {
        let region = Region::new(vec![0, 1, 0], vec![5, 6, 7]).unwrap();
        for layout in [Layout::C, Layout::Fortran] {
            check_case::<f64>(&[2, 2, 3], &[2, 2, 3], &region, layout, |v| v as f64 + 0.25);
            check_case::<Complex64>(&[1, 4, 2], &[4, 0, 2], &region, layout, |v| {
                Complex64::new(v as f64, -(v as f64))
            });
        }
        let r1 = Region::new(vec![3], vec![11]).unwrap();
        check_case::<i32>(&[4], &[0], &r1, Layout::C, |v| v as i32);
        check_case::<i32>(&[4], &[8], &r1, Layout::C, |v| v as i32);
    }

    #[test]
    fn large_transposes_match_reference() {
        // Big enough to cross several 32-element tiles in both dims.
        let region = Region::new(vec![0, 0], vec![70, 90]).unwrap();
        check_case::<i64>(&[70, 90], &[0, 0], &region, Layout::Fortran, |v| v as i64);
        check_case::<f32>(&[64, 128], &[0, 0], &region, Layout::Fortran, |v| v as f32);
    }

    #[test]
    fn memcpy_fast_path_is_taken_for_same_order_copies() {
        let before = kernel_stats();
        let region = Region::new(vec![0, 0], vec![8, 8]).unwrap();
        check_case::<i64>(&[4, 8], &[0, 0], &region, Layout::C, |v| v as i64);
        let d = kernel_stats().delta_since(&before);
        assert!(d.memcpy_calls > 0, "C-order copy must use the memcpy kernel: {d:?}");
        assert!(d.memcpy_bytes > 0);
    }

    #[test]
    fn tiled_path_is_taken_for_transposes() {
        let before = kernel_stats();
        let region = Region::new(vec![0, 0], vec![40, 40]).unwrap();
        let chunk_strides = row_major(&[40, 40]);
        let out_strides = Layout::Fortran.strides(&[40, 40]);
        let vals: Vec<i64> = (0..1600).collect();
        let bytes = drx_core::dtype::encode_slice(&vals);
        let mut out = vec![0i64; 1600];
        scatter_chunk(&bytes, &[0, 0], &chunk_strides, &mut out, &[0, 0], &out_strides, &region);
        let d = kernel_stats().delta_since(&before);
        assert_eq!(d.tiled_elems, 1600, "transpose must use the tiled kernel: {d:?}");
        assert_eq!(d.memcpy_calls, 0);
    }
}
