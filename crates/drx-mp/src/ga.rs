//! Global-Array-style shared access to the distributed principal array
//! (paper §II-A).
//!
//! "To access an element from any process, the process first determines
//! which zone the element lies \[in\] and consequently which process rank owns
//! the zone. The element can then be accessed either as a local array
//! element or as a remote array element. The remote memory access methods
//! and the MPI-2 windowing features can now be applied for processing the
//! array as if each process has access to the entire principal array. This
//! model of programming is exactly the shared memory programming model of
//! the Global-Array toolkit."
//!
//! [`GaView`] loads each rank's chunks into memory (collective read),
//! exposes them through an RMA window, and routes `get`/`put`/`accumulate`
//! by ownership. `sync_to_file` writes everything back collectively.
//!
//! The window is **chunk-granular**: each rank's buffer is the
//! concatenation of its owned chunks in increasing file-address order
//! (row-major within a chunk). This makes the GA layer work for *any*
//! distribution — including `BLOCK_CYCLIC(k)`, the generalization the
//! paper's §V lists as future work — because element location only needs
//! the replicated metadata (owner = distribution of the chunk index;
//! buffer slot = position of the chunk in the owner's address-sorted list).

use crate::error::{MpError, Result};
use crate::handle::DrxmpHandle;
use crate::zones::DistSpec;
use drx_core::{dtype, ArrayMeta, Element, Layout, Region};
use drx_msg::Window;

/// An in-memory, RMA-accessible view of the whole principal array,
/// distributed chunk-wise by the handle's distribution.
pub struct GaView<T: Element> {
    window: Window,
    /// Replicated metadata snapshot (chunk shape, grid, bounds).
    meta: ArrayMeta,
    /// The distribution in force.
    dist: DistSpec,
    /// Address-sorted chunk lists per rank (replicated, deterministic).
    chunk_addrs: Vec<Vec<u64>>,
    /// This rank's chunks (indices + addresses), address-sorted.
    my_chunks: Vec<(Vec<usize>, u64)>,
    /// Zone element region per rank for BLOCK distributions (`None` for
    /// cyclic zones or empty ranks) — a convenience table, not used for
    /// element location.
    zones: Vec<Option<Region>>,
    my_rank: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Element> GaView<T> {
    /// Collective: read every rank's chunks into memory (two-phase I/O) and
    /// expose them through an RMA window. Works for `BLOCK` and
    /// `BLOCK_CYCLIC` distributions alike.
    pub fn load(handle: &mut DrxmpHandle<T>) -> Result<GaView<T>> {
        let comm = handle.comm().clone();
        let zones: Vec<Option<Region>> =
            (0..comm.size()).map(|r| handle.zone_element_region(r)).collect();
        let chunk_addrs: Vec<Vec<u64>> = (0..comm.size())
            .map(|r| Ok(handle.zone_chunks(r)?.into_iter().map(|(_, a)| a).collect()))
            .collect::<Result<_>>()?;
        let my_chunks = handle.zone_chunks(comm.rank())?;
        // Collective chunk read; concatenate in address order.
        let loaded = handle.read_my_chunks()?;
        let mut local = Vec::with_capacity(loaded.len() * handle.meta().chunk_bytes() as usize);
        for (_, vals) in &loaded {
            local.extend_from_slice(&dtype::encode_slice(vals));
        }
        let window = Window::create(&comm, local)?;
        Ok(GaView {
            window,
            meta: handle.meta().clone(),
            dist: handle.dist().clone(),
            chunk_addrs,
            my_chunks,
            zones,
            my_rank: comm.rank(),
            _marker: std::marker::PhantomData,
        })
    }

    /// The BLOCK zone table (region per rank; `None` for cyclic zones).
    pub fn zones(&self) -> &[Option<Region>] {
        &self.zones
    }

    /// The rank owning an element, with its byte offset in that rank's
    /// chunk-concatenated window buffer.
    fn locate(&self, index: &[usize]) -> Result<(usize, u64)> {
        for (&i, &n) in index.iter().zip(self.meta.element_bounds()) {
            if i >= n {
                return Err(MpError::Core(drx_core::DrxError::IndexOutOfBounds {
                    index: index.to_vec(),
                    bounds: self.meta.element_bounds().to_vec(),
                }));
            }
        }
        let (chunk, within) = self.meta.chunking().split(index)?;
        let addr = self.meta.grid().address(&chunk)?;
        let owner = self.dist.owner_of_chunk(&chunk, self.meta.grid().bounds());
        let slot = self.chunk_addrs[owner]
            .binary_search(&addr)
            .map_err(|_| MpError::Invalid(format!("chunk {chunk:?} missing from owner {owner}")))?;
        let off = slot as u64 * self.meta.chunk_bytes()
            + self.meta.chunking().within_offset(&within) * T::SIZE as u64;
        Ok((owner, off))
    }

    /// The rank owning an element.
    pub fn owner(&self, index: &[usize]) -> Result<usize> {
        Ok(self.locate(index)?.0)
    }

    /// Whether this process owns the element locally.
    pub fn is_local(&self, index: &[usize]) -> Result<bool> {
        Ok(self.owner(index)? == self.my_rank)
    }

    /// Read one element, local or remote (`GA_Get` / `MPI_Get`).
    pub fn get(&self, index: &[usize]) -> Result<T> {
        let (rank, off) = self.locate(index)?;
        let mut buf = vec![0u8; T::SIZE];
        self.window.get(rank, off, &mut buf)?;
        Ok(T::read_le(&buf))
    }

    /// Write one element, local or remote (`GA_Put` / `MPI_Put`).
    pub fn put(&self, index: &[usize], value: T) -> Result<()> {
        let (rank, off) = self.locate(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.window.put(rank, off, &buf)?;
        Ok(())
    }

    /// Atomic add into one element (`GA_Acc` / `MPI_Accumulate`).
    pub fn accumulate(&self, index: &[usize], value: T) -> Result<()> {
        let (rank, off) = self.locate(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.window.rmw_bytes(rank, off, &buf, |old, new| {
            let a = T::read_le(old);
            let b = T::read_le(new);
            let mut out = Vec::with_capacity(T::SIZE);
            a.acc(b).write_le(&mut out);
            out
        })?;
        Ok(())
    }

    /// Read a rectilinear region spanning any number of zones (gathers
    /// remote pieces element-wise; for bulk transfers prefer the collective
    /// file reads).
    pub fn get_region(&self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        for idx in region.iter() {
            let rel: Vec<usize> = idx.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
            let pos = drx_core::index::offset_with_strides(&rel, &strides) as usize;
            out[pos] = self.get(&idx)?;
        }
        Ok(out)
    }

    /// Write a rectilinear region spanning any number of zones
    /// (`GA_Put` over a patch).
    pub fn put_region(&self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(MpError::Core(drx_core::DrxError::BufferSize {
                expected: n,
                got: data.len(),
            }));
        }
        let extents = region.extents();
        let strides = layout.strides(&extents);
        for idx in region.iter() {
            let rel: Vec<usize> = idx.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
            let pos = drx_core::index::offset_with_strides(&rel, &strides) as usize;
            self.put(&idx, data[pos])?;
        }
        Ok(())
    }

    /// Atomic element-wise add of a patch into the distributed array
    /// (`GA_Acc` over a patch).
    pub fn accumulate_region(&self, region: &Region, layout: Layout, data: &[T]) -> Result<()> {
        let n = region.volume() as usize;
        if data.len() != n {
            return Err(MpError::Core(drx_core::DrxError::BufferSize {
                expected: n,
                got: data.len(),
            }));
        }
        let extents = region.extents();
        let strides = layout.strides(&extents);
        for idx in region.iter() {
            let rel: Vec<usize> = idx.iter().zip(region.lo()).map(|(&a, &l)| a - l).collect();
            let pos = drx_core::index::offset_with_strides(&rel, &strides) as usize;
            self.accumulate(&idx, data[pos])?;
        }
        Ok(())
    }

    /// Epoch separator (`MPI_Win_fence` / `GA_Sync`).
    pub fn fence(&self) -> Result<()> {
        self.window.fence()?;
        Ok(())
    }

    /// Collective: write every zone back to the array file.
    pub fn sync_to_file(&self, handle: &mut DrxmpHandle<T>) -> Result<()> {
        self.fence()?;
        let all: Vec<T> = self.window.with_local(|bytes| dtype::decode_slice::<T>(bytes))??;
        let per_chunk = self.meta.chunking().chunk_elems() as usize;
        let chunks: Vec<(Vec<usize>, Vec<T>)> = self
            .my_chunks
            .iter()
            .enumerate()
            .map(|(i, (idx, _))| (idx.clone(), all[i * per_chunk..(i + 1) * per_chunk].to_vec()))
            .collect();
        handle.write_my_chunks(&chunks)?;
        self.fence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::to_msg;
    use crate::serial::DrxFile;
    use crate::zones::DistSpec;
    use drx_msg::run_spmd;
    use drx_pfs::Pfs;

    fn pfs() -> Pfs {
        Pfs::memory(4, 256).unwrap()
    }

    #[test]
    fn ga_get_put_accumulate_across_zones() {
        let fs = pfs();
        {
            let mut f: DrxFile<f64> = DrxFile::create(&fs, "g", &[2, 2], &[8, 8]).unwrap();
            f.fill_with(|i| (i[0] * 8 + i[1]) as f64).unwrap();
        }
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<f64> =
                DrxmpHandle::open(comm, &fs, "g", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
            let ga = GaView::load(&mut h).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            // Every rank reads elements from every zone.
            for idx in [[0usize, 0], [0, 7], [7, 0], [7, 7], [3, 4]] {
                assert_eq!(ga.get(&idx).map_err(to_msg)?, (idx[0] * 8 + idx[1]) as f64);
            }
            // Close the read epoch before anyone mutates.
            ga.fence().map_err(to_msg)?;
            // Rank 0 puts into rank 3's zone; everyone accumulates into (0,0).
            if comm.rank() == 0 {
                ga.put(&[7, 7], -1.0).map_err(to_msg)?;
            }
            ga.accumulate(&[0, 0], 1.0).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            assert_eq!(ga.get(&[7, 7]).map_err(to_msg)?, -1.0);
            assert_eq!(ga.get(&[0, 0]).map_err(to_msg)?, 4.0); // 0 + 4×1
                                                               // Ownership is consistent with the handle's answer.
            assert_eq!(
                ga.owner(&[7, 7]).map_err(to_msg)?,
                h.owner_of_element(&[7, 7]).map_err(to_msg)?
            );
            ga.sync_to_file(&mut h).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        // The puts persisted.
        let f: DrxFile<f64> = DrxFile::open(&fs, "g").unwrap();
        assert_eq!(f.get(&[7, 7]).unwrap(), -1.0);
        assert_eq!(f.get(&[0, 0]).unwrap(), 4.0);
        assert_eq!(f.get(&[3, 4]).unwrap(), 28.0); // untouched
    }

    #[test]
    fn ga_region_read_spans_zones() {
        let fs = pfs();
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "r", &[2, 2], &[6, 6]).unwrap();
            f.fill_with(|i| (i[0] * 6 + i[1]) as i64).unwrap();
        }
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "r", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
            let ga = GaView::load(&mut h).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            // A region crossing all four zones.
            let region = Region::new(vec![1, 1], vec![5, 5]).unwrap();
            let data = ga.get_region(&region, Layout::Fortran).map_err(to_msg)?;
            // Spot check in Fortran order: element (2,3) at rel (1,2) →
            // offset 1 + 2*4 = 9.
            assert_eq!(data[9], 2 * 6 + 3);
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn ga_region_put_and_accumulate() {
        let fs = pfs();
        {
            let _f: DrxFile<f64> = DrxFile::create(&fs, "pr", &[2, 2], &[8, 8]).unwrap();
        }
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<f64> =
                DrxmpHandle::open(comm, &fs, "pr", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
            let ga = GaView::load(&mut h).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            // Rank 0 puts a patch that crosses all four zones.
            let region = Region::new(vec![2, 2], vec![6, 6]).unwrap();
            if comm.rank() == 0 {
                let data: Vec<f64> = region.iter().map(|i| (i[0] * 10 + i[1]) as f64).collect();
                ga.put_region(&region, Layout::C, &data).map_err(to_msg)?;
            }
            ga.fence().map_err(to_msg)?;
            // Everyone accumulates +1 over a sub-patch.
            let acc_region = Region::new(vec![3, 3], vec![5, 5]).unwrap();
            ga.accumulate_region(&acc_region, Layout::Fortran, &[1.0; 4]).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            assert_eq!(ga.get(&[2, 2]).map_err(to_msg)?, 22.0);
            assert_eq!(ga.get(&[4, 4]).map_err(to_msg)?, 44.0 + 4.0);
            assert_eq!(ga.get(&[3, 4]).map_err(to_msg)?, 34.0 + 4.0);
            ga.sync_to_file(&mut h).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        let f: DrxFile<f64> = DrxFile::open(&fs, "pr").unwrap();
        assert_eq!(f.get(&[4, 4]).unwrap(), 48.0);
        assert_eq!(f.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn ga_works_with_block_cyclic_distribution() {
        // The paper's §V future-work item: GA over BLOCK_CYCLIC zones.
        let fs = pfs();
        {
            let mut f: DrxFile<i64> = DrxFile::create(&fs, "c", &[2], &[16]).unwrap();
            f.fill_with(|i| i[0] as i64).unwrap();
        }
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "c", DistSpec::block_cyclic(vec![2], vec![2]))
                    .map_err(to_msg)?;
            let ga = GaView::load(&mut h).map_err(to_msg)?;
            ga.fence().map_err(to_msg)?;
            // Cyclic zones expose no rectilinear region…
            assert!(ga.zones().iter().all(|z| z.is_none()));
            // …but every element is reachable, local or remote, with the
            // right ownership: 2-element chunks dealt in blocks of two
            // chunk indices → elements 0..4 on P0, 4..8 on P1, 8..12 on P0…
            for i in 0..16usize {
                assert_eq!(ga.get(&[i]).map_err(to_msg)?, i as i64);
                let expect_owner = (i / 4) % 2;
                assert_eq!(ga.owner(&[i]).map_err(to_msg)?, expect_owner, "element {i}");
            }
            // Close the read epoch before anyone mutates.
            ga.fence().map_err(to_msg)?;
            // Mutate across zones and persist.
            if comm.rank() == 1 {
                ga.put(&[0], -1).map_err(to_msg)?; // remote for rank 1
            }
            ga.accumulate(&[7], 100).map_err(to_msg)?; // both ranks
            ga.fence().map_err(to_msg)?;
            ga.sync_to_file(&mut h).map_err(to_msg)?;
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
        let f: DrxFile<i64> = DrxFile::open(&fs, "c").unwrap();
        assert_eq!(f.get(&[0]).unwrap(), -1);
        assert_eq!(f.get(&[7]).unwrap(), 7 + 200);
        assert_eq!(f.get(&[5]).unwrap(), 5);
    }

    #[test]
    fn ga_out_of_bounds_is_rejected() {
        let fs = pfs();
        {
            let _f: DrxFile<i64> = DrxFile::create(&fs, "ob", &[2, 2], &[4, 4]).unwrap();
        }
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<i64> =
                DrxmpHandle::open(comm, &fs, "ob", DistSpec::block(vec![2, 1])).map_err(to_msg)?;
            let ga = GaView::load(&mut h).map_err(to_msg)?;
            assert!(ga.get(&[4, 0]).is_err());
            assert!(ga.put(&[0, 4], 1).is_err());
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }
}
