//! The DRX-MP handle: collective lifecycle of a parallel extendible array
//! file (paper §IV-C: `DRXMP_Init`, `DRXMP_Open`, `DRXMP_Close`,
//! `DRXMP_Terminate`).
//!
//! Every process holds a replica of the array metadata ("When a file is
//! opened, the content of the meta-data file is replicated in all
//! participating processes", §IV-A), a distribution spec describing the
//! zone decomposition, and an MPI-IO-style file handle on the `.xta`
//! payload.

use crate::error::{MpError, Result};
use crate::serial::{XMD_SUFFIX, XTA_SUFFIX};
use crate::zones::DistSpec;
use drx_core::{ArrayMeta, Element, Region};
use drx_msg::{Comm, MsgFile};
use drx_pfs::Pfs;

/// A process's handle on a parallel disk-resident extendible array —
/// the `DRXMDHdl` of the paper's C API.
pub struct DrxmpHandle<T: Element> {
    pub(crate) comm: Comm,
    pub(crate) pfs: Pfs,
    pub(crate) base: String,
    pub(crate) meta: ArrayMeta,
    pub(crate) xta: MsgFile,
    pub(crate) dist: DistSpec,
    pub(crate) _marker: std::marker::PhantomData<T>,
}

impl<T: Element> DrxmpHandle<T> {
    /// Collective create (`DRXMP_Init`): every rank passes identical
    /// parameters; rank 0 materializes the file pair.
    pub fn create(
        comm: &Comm,
        pfs: &Pfs,
        base: &str,
        chunk_shape: &[usize],
        initial_bounds: &[usize],
        dist: DistSpec,
    ) -> Result<Self> {
        let meta = ArrayMeta::new(T::DTYPE, chunk_shape, initial_bounds)?;
        dist.validate(meta.rank(), comm.size())?;
        if comm.rank() == 0 {
            let xmd = pfs.create(&format!("{base}{XMD_SUFFIX}"))?;
            xmd.write_at(0, &meta.encode())?;
            let xta = pfs.create(&format!("{base}{XTA_SUFFIX}"))?;
            xta.set_len(meta.payload_bytes())?;
        }
        comm.barrier()?;
        let xta = MsgFile::open(comm, pfs, &format!("{base}{XTA_SUFFIX}"), false)?;
        Ok(DrxmpHandle {
            comm: comm.clone(),
            pfs: pfs.clone(),
            base: base.to_string(),
            meta,
            xta,
            dist,
            _marker: std::marker::PhantomData,
        })
    }

    /// Collective open (`DRXMP_Open`): rank 0 reads the metadata file and
    /// broadcasts it; every rank decodes its own replica.
    pub fn open(comm: &Comm, pfs: &Pfs, base: &str, dist: DistSpec) -> Result<Self> {
        let bytes = if comm.rank() == 0 {
            let xmd = pfs.open(&format!("{base}{XMD_SUFFIX}"))?;
            let b = xmd.read_vec(0, xmd.len() as usize)?;
            comm.bcast_bytes(0, Some(b))?
        } else {
            comm.bcast_bytes(0, None)?
        };
        let meta = ArrayMeta::decode(&bytes)?;
        if meta.dtype() != T::DTYPE {
            // Collective consistency: every rank fails identically.
            return Err(MpError::DTypeMismatch { file: meta.dtype(), requested: T::DTYPE });
        }
        dist.validate(meta.rank(), comm.size())?;
        let xta = MsgFile::open(comm, pfs, &format!("{base}{XTA_SUFFIX}"), false)?;
        Ok(DrxmpHandle {
            comm: comm.clone(),
            pfs: pfs.clone(),
            base: base.to_string(),
            meta,
            xta,
            dist,
            _marker: std::marker::PhantomData,
        })
    }

    /// Collective close (`DRXMP_Close`): persists metadata from rank 0 and
    /// synchronizes.
    pub fn close(self) -> Result<()> {
        self.sync_meta()?;
        self.comm.barrier()?;
        Ok(())
    }

    /// The communicator this handle operates on.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Replicated metadata.
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// Instantaneous element bounds.
    pub fn bounds(&self) -> &[usize] {
        self.meta.element_bounds()
    }

    /// The distribution spec in force.
    pub fn dist(&self) -> &DistSpec {
        &self.dist
    }

    /// Persist the metadata replica of rank 0 (non-collective; use `close`
    /// or `extend` for the collective forms).
    pub fn sync_meta(&self) -> Result<()> {
        if self.comm.rank() == 0 {
            let name = format!("{}{XMD_SUFFIX}", self.base);
            let xmd = self.pfs.open(&name)?;
            let bytes = self.meta.encode();
            xmd.write_at(0, &bytes)?;
            xmd.set_len(bytes.len() as u64)?;
        }
        Ok(())
    }

    /// Collective extension of dimension `dim` by `by` elements
    /// (paper §IV-B). Every rank updates its metadata replica
    /// deterministically; the payload grows by appended (logically zeroed)
    /// chunks; no existing chunk moves.
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<()> {
        let outcome = self.meta.extend(dim, by)?;
        if outcome.new_chunk_count > 0 {
            self.xta.set_size(self.meta.payload_bytes())?; // collective
        } else {
            self.comm.barrier()?;
        }
        self.sync_meta()?;
        self.comm.barrier()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Ownership queries (every rank can answer them locally — the point of
    // metadata replication, §II-A).
    // ------------------------------------------------------------------

    /// The rank owning the chunk containing an element.
    pub fn owner_of_element(&self, element: &[usize]) -> Result<usize> {
        let (chunk, _) = self.meta.chunking().split(element)?;
        Ok(self.dist.owner_of_chunk(&chunk, self.meta.grid().bounds()))
    }

    /// The rank owning a chunk index.
    pub fn owner_of_chunk(&self, chunk: &[usize]) -> usize {
        self.dist.owner_of_chunk(chunk, self.meta.grid().bounds())
    }

    /// Chunk indices (with linear addresses) of a rank's zone, sorted by
    /// address.
    pub fn zone_chunks(&self, rank: usize) -> Result<Vec<(Vec<usize>, u64)>> {
        let chunks = self.dist.chunks_of(rank, self.meta.grid().bounds());
        let mut pairs = Vec::with_capacity(chunks.len());
        for c in chunks {
            let addr = self.meta.grid().address(&c)?;
            pairs.push((c, addr));
        }
        pairs.sort_by_key(|&(_, a)| a);
        Ok(pairs)
    }

    /// The element region of a rank's zone clipped to the valid bounds
    /// (`None` for block-cyclic distributions or empty zones).
    pub fn zone_element_region(&self, rank: usize) -> Option<Region> {
        let chunk_region = self.dist.zone_chunk_region(rank, self.meta.grid().bounds())?;
        if chunk_region.is_empty() {
            return None;
        }
        let cs = self.meta.chunking().shape();
        let lo: Vec<usize> = chunk_region.lo().iter().zip(cs).map(|(&c, &s)| c * s).collect();
        let hi: Vec<usize> = chunk_region
            .hi()
            .iter()
            .zip(cs.iter().zip(self.meta.element_bounds()))
            .map(|(&c, (&s, &n))| (c * s).min(n))
            .collect();
        let region = Region::new(lo, hi).ok()?;
        if region.is_empty() {
            None
        } else {
            Some(region)
        }
    }

    /// This process's zone element region.
    pub fn my_zone(&self) -> Option<Region> {
        self.zone_element_region(self.comm.rank())
    }

    /// Validate that a region lies within the current element bounds.
    pub(crate) fn check_region(&self, region: &Region) -> Result<()> {
        if region.rank() != self.meta.rank() {
            return Err(MpError::Core(drx_core::DrxError::RankMismatch {
                expected: self.meta.rank(),
                got: region.rank(),
            }));
        }
        for (&h, &n) in region.hi().iter().zip(self.bounds()) {
            if h > n {
                return Err(MpError::Core(drx_core::DrxError::IndexOutOfBounds {
                    index: region.hi().to_vec(),
                    bounds: self.bounds().to_vec(),
                }));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::to_msg;
    use drx_msg::run_spmd;

    fn pfs() -> Pfs {
        Pfs::memory(4, 256).unwrap()
    }

    #[test]
    fn create_then_open_replicates_meta() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let h: DrxmpHandle<f64> = DrxmpHandle::create(
                comm,
                &fs,
                "arr",
                &[2, 3],
                &[10, 12],
                DistSpec::block(vec![2, 2]),
            )
            .map_err(to_msg)?;
            assert_eq!(h.bounds(), &[10, 12]);
            assert_eq!(h.meta().grid().bounds(), &[5, 4]);
            h.close().map_err(to_msg)?;
            // Reopen on every rank; the replica must match.
            let h: DrxmpHandle<f64> =
                DrxmpHandle::open(comm, &fs, "arr", DistSpec::block(vec![2, 2])).map_err(to_msg)?;
            assert_eq!(h.meta().total_chunks(), 20);
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn figure1_zone_maps() {
        // The paper's Figure 1 / code listing: the 5×4 chunk grid of
        // A[10][12] (2×3 chunks, grown as in the figure) distributed 2×2
        // gives globalMap P0={0..5}, P1={6,7,8,12,13,14}, P2={9,10,16,17},
        // P3={11,15,18,19}.
        let fs = pfs();
        run_spmd(4, |comm| {
            let mut h: DrxmpHandle<f64> = DrxmpHandle::create(
                comm,
                &fs,
                "fig1",
                &[2, 3],
                &[2, 3],
                DistSpec::block(vec![2, 2]),
            )
            .map_err(to_msg)?;
            // Reproduce the figure's growth history in element units:
            // +1 chunk column, +2 chunk rows (the figure's two uninterrupted
            // extensions), +1 column, +1 row, +1 column, +1 row.
            for (dim, by) in [(1, 3), (0, 4), (1, 3), (0, 2), (1, 3), (0, 2)] {
                h.extend(dim, by).map_err(to_msg)?;
            }
            assert_eq!(h.bounds(), &[10, 12]);
            assert_eq!(h.meta().grid().bounds(), &[5, 4]);
            let expected: [&[u64]; 4] =
                [&[0, 1, 2, 3, 4, 5], &[6, 7, 8, 12, 13, 14], &[9, 10, 16, 17], &[11, 15, 18, 19]];
            for (rank, want) in expected.iter().enumerate() {
                let addrs: Vec<u64> =
                    h.zone_chunks(rank).map_err(to_msg)?.into_iter().map(|(_, a)| a).collect();
                assert_eq!(&addrs, want, "zone of P{rank}");
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn ownership_is_consistent_across_ranks() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let h: DrxmpHandle<i32> = DrxmpHandle::create(
                comm,
                &fs,
                "own",
                &[2, 2],
                &[8, 8],
                DistSpec::block(vec![2, 2]),
            )
            .map_err(to_msg)?;
            // Every element's owner, computed locally, must agree globally.
            let mut owners = Vec::new();
            for i in (0..8).step_by(3) {
                for j in (0..8).step_by(3) {
                    owners.push(h.owner_of_element(&[i, j]).map_err(to_msg)? as u64);
                }
            }
            let all = comm.allgather_vec::<u64>(&owners)?;
            for other in &all {
                assert_eq!(other, &owners, "ownership disagreement");
            }
            // My zone contains exactly the elements I own.
            if let Some(zone) = h.my_zone() {
                for idx in zone.iter() {
                    assert_eq!(h.owner_of_element(&idx).map_err(to_msg)?, comm.rank());
                }
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn extend_keeps_replicas_identical() {
        let fs = pfs();
        run_spmd(2, |comm| {
            let mut h: DrxmpHandle<f64> =
                DrxmpHandle::create(comm, &fs, "x", &[2, 2], &[4, 4], DistSpec::block(vec![2, 1]))
                    .map_err(to_msg)?;
            h.extend(1, 4).map_err(to_msg)?;
            h.extend(0, 1).map_err(to_msg)?;
            // Compare encoded metadata across ranks.
            let mine = h.meta().encode();
            let all = comm.allgather_bytes(mine.clone())?;
            for other in &all {
                assert_eq!(other, &mine, "metadata replica divergence");
            }
            assert_eq!(h.xta.len(), h.meta().payload_bytes());
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn zone_element_regions_partition_valid_elements() {
        let fs = pfs();
        run_spmd(4, |comm| {
            let h: DrxmpHandle<i32> = DrxmpHandle::create(
                comm,
                &fs,
                "zones",
                &[2, 3],
                &[10, 10], // bound not chunk-aligned in dim 1
                DistSpec::block(vec![2, 2]),
            )
            .map_err(to_msg)?;
            if comm.rank() == 0 {
                let mut count = 0u64;
                for r in 0..4 {
                    if let Some(z) = h.zone_element_region(r) {
                        count += z.volume();
                        for idx in z.iter() {
                            assert_eq!(h.owner_of_element(&idx).map_err(to_msg)?, r);
                        }
                    }
                }
                assert_eq!(count, 100, "zones must cover all valid elements");
            }
            h.close().map_err(to_msg)?;
            Ok(())
        })
        .unwrap();
    }
}
