//! # drx-mp — Parallel access of out-of-core dense extendible arrays
//!
//! A Rust reproduction of the **DRX / DRX-MP** libraries of Otoo & Rotem,
//! *"Parallel Access of Out-Of-Core Dense Extendible Arrays"* (IEEE CLUSTER
//! 2007): disk-resident dense arrays stored as fixed-shape chunks addressed
//! by the extendible mapping function `F*`, extendible along **any**
//! dimension without reorganization, partitioned into zones and accessed by
//! the ranks of an SPMD program with independent or two-phase collective
//! I/O over a striped parallel file system.
//!
//! * [`DrxFile`] — the serial DRX library (one process, `.xmd` + `.xta`
//!   file pair).
//! * [`DrxmpHandle`] — the parallel DRX-MP handle: collective
//!   create/open/close/extend, zone queries, `read_region[_all]`,
//!   `write_region[_all]`, zone reads/writes.
//! * [`DistSpec`] — HPF-style `BLOCK` and `BLOCK_CYCLIC(k)` distributions.
//! * [`GaView`] — Global-Array-style `get`/`put`/`accumulate` on the
//!   distributed array through RMA windows.
//!
//! Paper-API correspondence: `DRXMP_Init` → [`DrxmpHandle::create`],
//! `DRXMP_Open` → [`DrxmpHandle::open`], `DRXMP_Close` →
//! [`DrxmpHandle::close`], `DRXMP_Read` → [`DrxmpHandle::read_region`],
//! `DRXMP_Read_all` → [`DrxmpHandle::read_region_all`] /
//! [`DrxmpHandle::read_my_zone`].

pub mod api;
pub mod error;
pub mod ga;
pub mod handle;
pub mod kernels;
pub mod mpool;
pub mod read;
pub mod serial;
pub mod write;
pub mod zones;

pub use api::{
    drxmp_close, drxmp_init, drxmp_open, drxmp_read, drxmp_read_all, drxmp_write, drxmp_write_all,
    DrxmpContext, DrxmpStatus, MemHandle,
};
pub use error::{MpError, Result};
pub use ga::GaView;
pub use handle::DrxmpHandle;
pub use kernels::{gather_chunk, kernel_stats, scatter_chunk, KernelStats};
pub use mpool::{CachedDrxFile, ChunkPool, PoolStats, PrefetchOutcome};
pub use serial::{DrxFile, XMD_SUFFIX, XTA_SUFFIX};
pub use zones::DistSpec;
