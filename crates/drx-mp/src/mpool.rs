//! Chunk buffer pool — the stand-in for the BerkeleyDB **Mpool** subsystem
//! the serial DRX library uses for I/O caching (paper §I: "memory resident
//! extendible arrays with I/O caching using the BerkeleyDB Mpool
//! sub-system").
//!
//! [`ChunkPool`] caches fixed-size chunks of a [`PfsFile`] with LRU
//! replacement, dirty tracking and write-back, and exposes hit/miss/eviction
//! statistics. [`CachedDrxFile`] layers it under the serial array API so
//! element accesses with locality stop paying one PFS round trip each.

use crate::error::{MpError, Result};
use crate::serial::DrxFile;
use drx_core::{Element, Layout, Region};
use drx_pfs::PfsFile;
use std::collections::HashMap;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

impl PoolStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Component-wise difference `self - earlier`; used to attribute the
    /// work of one pool operation (or one session) out of cumulative totals.
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            writebacks: self.writebacks - earlier.writebacks,
        }
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }
}

/// Result of a [`ChunkPool::prefetch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// Chunks that were already resident (no I/O).
    pub resident: usize,
    /// Chunks fetched from the file by this call.
    pub fetched: usize,
    /// Number of coalesced `read_vec` calls issued for the fetched chunks
    /// (each covers a run of consecutive chunk addresses).
    pub runs: usize,
}

struct Frame {
    data: Vec<u8>,
    dirty: bool,
    /// LRU clock value of the most recent touch.
    last_used: u64,
}

/// An LRU pool of fixed-size chunks over a PFS file.
///
/// ```
/// use drx_mp::ChunkPool;
/// use drx_pfs::Pfs;
///
/// let pfs = Pfs::memory(1, 1024).unwrap();
/// let f = pfs.create("data").unwrap();
/// f.set_len(256).unwrap();
/// let mut pool = ChunkPool::new(f, 64, 2).unwrap();
/// pool.write(0, 0, &[9; 8]).unwrap();   // dirty, cached
/// let mut buf = [0u8; 8];
/// pool.read(0, 0, &mut buf).unwrap();   // hit
/// assert_eq!(buf, [9; 8]);
/// assert_eq!(pool.stats().hits, 1);
/// pool.flush().unwrap();                // write-back
/// ```
pub struct ChunkPool {
    file: PfsFile,
    chunk_bytes: usize,
    capacity: usize,
    frames: HashMap<u64, Frame>,
    clock: u64,
    stats: PoolStats,
}

impl ChunkPool {
    /// Create a pool holding up to `capacity` chunks of `chunk_bytes` each.
    pub fn new(file: PfsFile, chunk_bytes: usize, capacity: usize) -> Result<Self> {
        if chunk_bytes == 0 || capacity == 0 {
            return Err(MpError::Invalid("chunk size and capacity must be positive".into()));
        }
        Ok(ChunkPool {
            file,
            chunk_bytes,
            capacity,
            frames: HashMap::with_capacity(capacity),
            clock: 0,
            stats: PoolStats::default(),
        })
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Whether chunk `addr` is resident (does not touch LRU state or stats).
    pub fn contains(&self, addr: u64) -> bool {
        self.frames.contains_key(&addr)
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    fn touch(&mut self, addr: u64) {
        self.clock += 1;
        if let Some(f) = self.frames.get_mut(&addr) {
            f.last_used = self.clock;
        }
    }

    /// Ensure chunk `addr` is resident; fault it in (and evict the LRU
    /// victim, writing back if dirty) as needed.
    fn fault_in(&mut self, addr: u64) -> Result<()> {
        if self.frames.contains_key(&addr) {
            self.stats.hits += 1;
            self.touch(addr);
            return Ok(());
        }
        if self.frames.len() >= self.capacity {
            // Evict the least recently used frame.
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&a, _)| a)
                .expect("pool is non-empty");
            self.evict(victim)?;
        }
        let off = addr * self.chunk_bytes as u64;
        let data = self.file.read_vec(off, self.chunk_bytes)?;
        // The miss is recorded only once the fetch succeeded: a faulted
        // read leaves the counters describing work that actually happened.
        self.stats.misses += 1;
        self.clock += 1;
        self.frames.insert(addr, Frame { data, dirty: false, last_used: self.clock });
        Ok(())
    }

    fn evict(&mut self, addr: u64) -> Result<()> {
        // Trace hook for the drx-sched schedule explorer (no-op otherwise).
        #[cfg(drx_sched)]
        drx_sched::probe("mpool:evict");
        // Write back *before* removing the frame: if the write-back fails
        // (transient PFS fault, down stripe server) the dirty data must
        // stay in the pool so a later flush or retried eviction can still
        // persist it. Remove-first silently lost the chunk on error.
        let Some(frame) = self.frames.get(&addr) else { return Ok(()) };
        if frame.dirty {
            self.file.write_at(addr * self.chunk_bytes as u64, &frame.data)?;
            self.stats.writebacks += 1;
        }
        self.frames.remove(&addr);
        self.stats.evictions += 1;
        Ok(())
    }

    /// Read bytes `range` of chunk `addr` through the cache.
    pub fn read(&mut self, addr: u64, offset: usize, buf: &mut [u8]) -> Result<()> {
        if offset + buf.len() > self.chunk_bytes {
            return Err(MpError::Invalid(format!(
                "read [{offset}, +{}) exceeds chunk size {}",
                buf.len(),
                self.chunk_bytes
            )));
        }
        self.fault_in(addr)?;
        let frame = self.frames.get(&addr).expect("just faulted in");
        buf.copy_from_slice(&frame.data[offset..offset + buf.len()]);
        Ok(())
    }

    /// Write bytes into chunk `addr` through the cache (write-back: the
    /// chunk is marked dirty, flushed on eviction or `flush`).
    pub fn write(&mut self, addr: u64, offset: usize, data: &[u8]) -> Result<()> {
        if offset + data.len() > self.chunk_bytes {
            return Err(MpError::Invalid(format!(
                "write [{offset}, +{}) exceeds chunk size {}",
                data.len(),
                self.chunk_bytes
            )));
        }
        self.fault_in(addr)?;
        let frame = self.frames.get_mut(&addr).expect("just faulted in");
        frame.data[offset..offset + data.len()].copy_from_slice(data);
        frame.dirty = true;
        Ok(())
    }

    /// Overwrite chunk `addr` with a full chunk of data without faulting it
    /// in first — the read-modify-write a plain [`ChunkPool::write`] would
    /// pay is skipped because every byte is being replaced.
    ///
    /// Counts as a hit when the chunk is resident and a miss otherwise (the
    /// miss costs no I/O: the frame is installed directly, dirty).
    pub fn put(&mut self, addr: u64, data: &[u8]) -> Result<()> {
        if data.len() != self.chunk_bytes {
            return Err(MpError::Invalid(format!(
                "put of {} bytes into chunks of {}",
                data.len(),
                self.chunk_bytes
            )));
        }
        if let Some(frame) = self.frames.get_mut(&addr) {
            frame.data.copy_from_slice(data);
            frame.dirty = true;
            self.stats.hits += 1;
            self.touch(addr);
            return Ok(());
        }
        self.stats.misses += 1;
        if self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&a, _)| a)
                .expect("pool is non-empty");
            self.evict(victim)?;
        }
        self.clock += 1;
        self.frames.insert(addr, Frame { data: data.to_vec(), dirty: true, last_used: self.clock });
        Ok(())
    }

    /// Fault in a batch of chunks, coalescing runs of *consecutive* missing
    /// chunk addresses into single file extents and fetching all of them
    /// with one vectored request. This is what turns N per-chunk PFS round
    /// trips into one large request per run (and lets the PFS worker pool
    /// service distinct runs in parallel).
    ///
    /// Accounting: each truly-fetched chunk counts one miss; chunks already
    /// resident are left untouched (no hit is recorded — the later
    /// [`ChunkPool::read`] of each chunk records its own hit). Runs longer
    /// than the pool capacity are split so a prefetch can never evict its
    /// own batch.
    pub fn prefetch(&mut self, addrs: &[u64]) -> Result<PrefetchOutcome> {
        // Trace hook for the drx-sched schedule explorer (no-op otherwise).
        #[cfg(drx_sched)]
        drx_sched::probe("mpool:prefetch");
        let mut missing: Vec<u64> =
            addrs.iter().copied().filter(|a| !self.frames.contains_key(a)).collect();
        missing.sort_unstable();
        missing.dedup();
        let mut out = PrefetchOutcome {
            resident: addrs.len() - missing.len(),
            fetched: missing.len(),
            runs: 0,
        };
        if missing.is_empty() {
            return Ok(out);
        }
        // Extents over runs of consecutive addresses, capped at the pool
        // capacity.
        let mut extents: Vec<(u64, u64)> = Vec::new();
        let mut i = 0;
        while i < missing.len() {
            let mut j = i + 1;
            while j < missing.len() && missing[j] == missing[j - 1] + 1 && j - i < self.capacity {
                j += 1;
            }
            extents.push((
                missing[i] * self.chunk_bytes as u64,
                (j - i) as u64 * self.chunk_bytes as u64,
            ));
            i = j;
        }
        out.runs = extents.len();
        let mut bytes = vec![0u8; missing.len() * self.chunk_bytes];
        self.file.read_extents_into(&extents, &mut bytes)?;
        self.stats.misses += missing.len() as u64;
        for (k, &addr) in missing.iter().enumerate() {
            if self.frames.len() >= self.capacity {
                let victim = self
                    .frames
                    .iter()
                    .min_by_key(|(_, f)| f.last_used)
                    .map(|(&a, _)| a)
                    .expect("pool is non-empty");
                self.evict(victim)?;
            }
            self.clock += 1;
            let data = bytes[k * self.chunk_bytes..(k + 1) * self.chunk_bytes].to_vec();
            self.frames.insert(addr, Frame { data, dirty: false, last_used: self.clock });
        }
        Ok(out)
    }

    /// Write all dirty frames back to the file (keeps them resident).
    pub fn flush(&mut self) -> Result<()> {
        // Deterministic order for reproducible I/O patterns.
        let mut dirty: Vec<u64> =
            self.frames.iter().filter(|(_, f)| f.dirty).map(|(&a, _)| a).collect();
        dirty.sort_unstable();
        for addr in dirty {
            let frame = self.frames.get_mut(&addr).expect("listed");
            self.file.write_at(addr * self.chunk_bytes as u64, &frame.data)?;
            frame.dirty = false;
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Flush and drop every frame.
    pub fn clear(&mut self) -> Result<()> {
        self.flush()?;
        self.frames.clear();
        Ok(())
    }
}

/// A serial DRX array with an Mpool chunk cache between the API and the
/// file. Same semantics as [`DrxFile`]; element accesses hit the pool.
///
/// Dirty chunks are written back on eviction, [`CachedDrxFile::flush`], or
/// drop (best effort — call `flush` to observe errors).
pub struct CachedDrxFile<T: Element> {
    inner: DrxFile<T>,
    pool: ChunkPool,
}

impl<T: Element> CachedDrxFile<T> {
    /// Wrap an open array with a pool of `capacity_chunks` chunks.
    pub fn new(inner: DrxFile<T>, capacity_chunks: usize) -> Result<Self> {
        let chunk_bytes = inner.meta().chunk_bytes() as usize;
        let pool = ChunkPool::new(inner.payload_file().clone(), chunk_bytes, capacity_chunks)?;
        Ok(CachedDrxFile { inner, pool })
    }

    pub fn meta(&self) -> &drx_core::ArrayMeta {
        self.inner.meta()
    }

    pub fn bounds(&self) -> &[usize] {
        self.inner.bounds()
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    pub fn reset_pool_stats(&mut self) {
        self.pool.reset_stats()
    }

    /// Read one element through the cache.
    pub fn get(&mut self, index: &[usize]) -> Result<T> {
        let (addr, within) = self.inner.meta().locate_element(index)?;
        let mut buf = vec![0u8; T::SIZE];
        self.pool.read(addr, within as usize * T::SIZE, &mut buf)?;
        Ok(T::read_le(&buf))
    }

    /// Write one element through the cache (write-back).
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let (addr, within) = self.inner.meta().locate_element(index)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        value.write_le(&mut buf);
        self.pool.write(addr, within as usize * T::SIZE, &buf)
    }

    /// Extend a dimension: flushes the pool first (the payload may be
    /// resized), then extends the underlying array.
    pub fn extend(&mut self, dim: usize, by: usize) -> Result<()> {
        self.pool.flush()?;
        self.inner.extend(dim, by)
    }

    /// Read a region through the cache, chunk at a time (run-coalesced
    /// planning, kernel scatter straight from the cached chunk image).
    pub fn read_region(&mut self, region: &Region, layout: Layout) -> Result<Vec<T>> {
        let chunking = self.inner.meta().chunking().clone();
        let chunk_region = chunking.chunks_covering(region)?;
        let runs = self.inner.meta().grid().region_runs(&chunk_region)?;
        let extents = region.extents();
        let strides = layout.strides(&extents);
        let mut out = vec![T::default(); region.volume() as usize];
        let cb = self.inner.meta().chunk_bytes() as usize;
        let mut bytes = vec![0u8; cb];
        let mut idx = Vec::new();
        for run in &runs {
            for t in 0..run.len {
                run.write_index_at(t, &mut idx);
                self.pool.read(run.addr_at(t), 0, &mut bytes)?;
                let chunk_elems = chunking.chunk_elements(&idx)?;
                let Some(valid) = chunk_elems.intersect(region) else { continue };
                crate::kernels::scatter_chunk(
                    &bytes,
                    chunk_elems.lo(),
                    chunking.strides(),
                    &mut out,
                    region.lo(),
                    &strides,
                    &valid,
                );
            }
        }
        Ok(out)
    }

    /// Write back all dirty chunks and sync metadata.
    pub fn flush(&mut self) -> Result<()> {
        self.pool.flush()?;
        self.inner.sync_meta()
    }

    /// Flush and unwrap the underlying file.
    pub fn into_inner(mut self) -> Result<DrxFile<T>> {
        self.pool.clear()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drx_pfs::Pfs;

    fn pfs() -> Pfs {
        Pfs::memory(2, 256).unwrap()
    }

    #[test]
    fn pool_read_write_and_hit_tracking() {
        let fs = pfs();
        let f = fs.create("p").unwrap();
        f.set_len(1024).unwrap();
        let mut pool = ChunkPool::new(f, 64, 4).unwrap();
        let mut buf = [0u8; 8];
        pool.read(0, 0, &mut buf).unwrap(); // miss
        pool.read(0, 8, &mut buf).unwrap(); // hit
        pool.write(0, 0, &[1; 8]).unwrap(); // hit
        assert_eq!(pool.stats(), PoolStats { hits: 2, misses: 1, evictions: 0, writebacks: 0 });
        pool.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
    }

    #[test]
    fn lru_eviction_writes_back_dirty_frames() {
        let fs = pfs();
        let f = fs.create("p").unwrap();
        f.set_len(64 * 8).unwrap();
        let mut pool = ChunkPool::new(f.clone(), 64, 2).unwrap();
        pool.write(0, 0, &[7; 4]).unwrap(); // dirty chunk 0
        let mut buf = [0u8; 4];
        pool.read(1, 0, &mut buf).unwrap();
        pool.read(2, 0, &mut buf).unwrap(); // evicts chunk 0 (LRU)
        let st = pool.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.writebacks, 1);
        // The write-back is visible through the raw file.
        assert_eq!(f.read_vec(0, 4).unwrap(), vec![7; 4]);
        // Chunk 0 faults back in with its data intact.
        pool.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [7; 4]);
    }

    #[test]
    fn flush_is_deterministic_and_clears_dirty() {
        let fs = pfs();
        let f = fs.create("p").unwrap();
        f.set_len(64 * 4).unwrap();
        let mut pool = ChunkPool::new(f.clone(), 64, 4).unwrap();
        pool.write(3, 0, &[3]).unwrap();
        pool.write(1, 0, &[1]).unwrap();
        fs.reset_stats();
        pool.flush().unwrap();
        assert_eq!(pool.stats().writebacks, 2);
        // Second flush writes nothing.
        pool.flush().unwrap();
        assert_eq!(pool.stats().writebacks, 2);
        assert_eq!(f.read_vec(64, 1).unwrap(), vec![1]);
        assert_eq!(f.read_vec(192, 1).unwrap(), vec![3]);
    }

    #[test]
    fn out_of_range_chunk_access_is_rejected() {
        let fs = pfs();
        let f = fs.create("p").unwrap();
        f.set_len(128).unwrap();
        let mut pool = ChunkPool::new(f, 64, 2).unwrap();
        let mut buf = [0u8; 65];
        assert!(pool.read(0, 0, &mut buf).is_err());
        assert!(pool.write(0, 60, &[0; 8]).is_err());
        assert!(ChunkPool::new(fs.create("q").unwrap(), 0, 2).is_err());
    }

    #[test]
    fn failed_eviction_writeback_keeps_the_dirty_frame() {
        let fs = pfs();
        let f = fs.create("p").unwrap();
        f.set_len(64 * 8).unwrap();
        let mut pool = ChunkPool::new(f.clone(), 64, 2).unwrap();
        pool.write(0, 0, &[7; 4]).unwrap(); // dirty chunk 0
        let mut buf = [0u8; 4];
        pool.read(1, 0, &mut buf).unwrap();
        // Fail the next request on server 0 (where chunk 0 lives).
        fs.inject_fault(0, 0).unwrap();
        // Faulting in chunk 2 tries to evict chunk 0 (LRU, dirty); the
        // write-back fails, and the dirty frame must survive.
        assert!(pool.read(2, 0, &mut buf).is_err());
        pool.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [7; 4], "dirty data lost by failed eviction");
        // Once the fault clears, flush persists it.
        pool.flush().unwrap();
        assert_eq!(f.read_vec(0, 4).unwrap(), vec![7; 4]);
    }

    #[test]
    fn failed_fetch_counts_no_miss() {
        let fs = pfs();
        let f = fs.create("p").unwrap();
        f.set_len(64 * 4).unwrap();
        let mut pool = ChunkPool::new(f, 64, 4).unwrap();
        fs.inject_fault(0, 0).unwrap();
        let mut buf = [0u8; 4];
        assert!(pool.read(0, 0, &mut buf).is_err());
        assert_eq!(pool.stats().misses, 0, "failed fetch must not count as a miss");
        pool.read(0, 0, &mut buf).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn cached_file_matches_uncached_semantics() {
        let fs = pfs();
        let inner: DrxFile<i64> = DrxFile::create(&fs, "c", &[2, 3], &[8, 9]).unwrap();
        let mut cached = CachedDrxFile::new(inner, 4).unwrap();
        for idx in Region::new(vec![0, 0], vec![8, 9]).unwrap().iter() {
            cached.set(&idx, (idx[0] * 9 + idx[1]) as i64).unwrap();
        }
        cached.extend(1, 3).unwrap(); // flushes, then grows
        for i in 0..8 {
            for j in 0..9 {
                assert_eq!(cached.get(&[i, j]).unwrap(), (i * 9 + j) as i64);
            }
            assert_eq!(cached.get(&[i, 11]).unwrap(), 0);
        }
        let region = Region::new(vec![2, 2], vec![6, 8]).unwrap();
        let via_cache = cached.read_region(&region, Layout::Fortran).unwrap();
        // Flush, then compare against the plain path.
        let plain = cached.into_inner().unwrap();
        assert_eq!(plain.read_region(&region, Layout::Fortran).unwrap(), via_cache);
        // Everything persisted to the file.
        drop(plain);
        let reread: DrxFile<i64> = DrxFile::open(&fs, "c").unwrap();
        assert_eq!(reread.get(&[7, 8]).unwrap(), (7 * 9 + 8) as i64);
    }

    #[test]
    fn locality_turns_pfs_traffic_into_hits() {
        let fs = pfs();
        let mut inner: DrxFile<f64> = DrxFile::create(&fs, "c", &[4, 4], &[16, 16]).unwrap();
        inner.fill_with(|i| (i[0] + i[1]) as f64).unwrap();
        let mut cached = CachedDrxFile::new(inner, 8).unwrap();
        // Walk one chunk's elements repeatedly: 1 miss, many hits.
        cached.reset_pool_stats();
        fs.reset_stats();
        for _ in 0..10 {
            for i in 0..4 {
                for j in 0..4 {
                    cached.get(&[i, j]).unwrap();
                }
            }
        }
        let st = cached.pool_stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits, 159);
        assert!(st.hit_rate() > 0.99);
        // Only one chunk-sized PFS read happened for all 160 accesses.
        assert_eq!(fs.stats().total_requests(), 1);
        assert_eq!(fs.stats().total_bytes(), 4 * 4 * 8);
    }
}
